"""Per-entry state machines: saturating counters and sticky bits.

Section 2.1 notes that a 1-bit saturating counter or a sticky bit is
"enough" for collision prediction; larger counters (the classic 2-bit
bimodal cell) add hysteresis.  These small classes are the table cells
of every predictor in the package.
"""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit up/down saturating counter with a configurable threshold.

    The counter predicts *true* when its value is at or above the
    threshold (default: the midpoint, the usual weakly-taken boundary).
    """

    __slots__ = ("bits", "value", "_max", "_threshold")

    def __init__(self, bits: int = 2, initial: int = 0,
                 threshold: int | None = None) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.bits = bits
        self._max = (1 << bits) - 1
        if not 0 <= initial <= self._max:
            raise ValueError("initial value out of range")
        self.value = initial
        self._threshold = (self._max + 1) // 2 if threshold is None else threshold
        if not 0 < self._threshold <= self._max:
            raise ValueError("threshold out of range")

    @property
    def prediction(self) -> bool:
        return self.value >= self._threshold

    @property
    def confidence(self) -> float:
        """Distance from the decision boundary, normalised to [0, 1]."""
        if self.prediction:
            span = self._max - self._threshold
            return 1.0 if span == 0 else (self.value - self._threshold) / span
        span = self._threshold - 1
        return 1.0 if span == 0 else (self._threshold - 1 - self.value) / span

    @property
    def is_saturated(self) -> bool:
        return self.value in (0, self._max)

    def train(self, outcome: bool) -> None:
        if outcome:
            if self.value < self._max:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def reset(self, value: int = 0) -> None:
        if not 0 <= value <= self._max:
            raise ValueError("reset value out of range")
        self.value = value

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self.bits}, value={self.value})"


class StickyBit:
    """A set-once bit: after its first ``True`` outcome it stays set.

    This is the paper's safest collision predictor — "after its first
    collision, the load is always predicted as colliding".  It can only
    be cleared wholesale (cyclic clearing, section 2.1 / [Chry98]).
    """

    __slots__ = ("value",)

    def __init__(self, value: bool = False) -> None:
        self.value = value

    @property
    def prediction(self) -> bool:
        return self.value

    @property
    def confidence(self) -> float:
        return 1.0 if self.value else 0.0

    def train(self, outcome: bool) -> None:
        if outcome:
            self.value = True

    def reset(self) -> None:
        self.value = False

    def __repr__(self) -> str:
        return f"StickyBit({self.value})"
