"""Enhanced gskew predictor (Michaud, Seznec & Uhlig).

Three counter banks indexed by three different skewing functions of the
(pc, global history) pair; the prediction is the majority of the banks.
The skewing property ensures two addresses that alias in one bank rarely
alias in the others, trading conflict aliasing for capacity.

The paper's hybrid hit-miss predictor uses a gskew whose "hash functions
operate on a history of 20 loads" with three 1K-entry tables; bank
predictors A and C use a 17-bit-history gskew with 1K-entry tables.
"""

from __future__ import annotations

from typing import List

from repro.common import bits
from repro.fastpath.backend import resolve_backend
from repro.predictors.base import BinaryPredictor, Prediction
from repro.predictors.counters import SaturatingCounter


class GSkewPredictor(BinaryPredictor):
    """Three skewed counter banks with majority vote and partial update.

    ``backend`` selects the replay fast path (``repro.fastpath``); the
    scalar ``predict``/``update`` API is identical on both backends.
    """

    N_BANKS = 3

    def __init__(self, history_bits: int = 20, bank_entries: int = 1024,
                 counter_bits: int = 2, backend: str | None = None) -> None:
        self.backend = resolve_backend(backend)
        self.history_bits = history_bits
        self.bank_entries = bank_entries
        bits.ilog2(bank_entries)
        self.counter_bits = counter_bits
        self._history = 0
        self._banks: List[List[SaturatingCounter]] = [
            [SaturatingCounter(counter_bits) for _ in range(bank_entries)]
            for _ in range(self.N_BANKS)
        ]

    def _cells(self, pc: int) -> List[SaturatingCounter]:
        return [
            self._banks[b][bits.skew_index(pc, self._history, b,
                                           self.bank_entries)]
            for b in range(self.N_BANKS)
        ]

    def predict(self, pc: int) -> Prediction:
        votes = [cell.prediction for cell in self._cells(pc)]
        ayes = sum(votes)
        outcome = ayes >= 2
        # Confidence rises with agreement: unanimous = 1.0, 2-1 split = 0.5.
        confidence = 1.0 if ayes in (0, self.N_BANKS) else 0.5
        return Prediction(outcome=outcome, confidence=confidence)

    def update(self, pc: int, outcome: bool) -> None:
        # Partial update (the e-gskew policy): on a correct prediction only
        # the agreeing banks are reinforced; on a misprediction all banks
        # are retrained toward the actual outcome.
        cells = self._cells(pc)
        predicted = sum(c.prediction for c in cells) >= 2
        for cell in cells:
            if predicted == outcome and cell.prediction != outcome:
                continue  # leave the dissenting bank alone
            cell.train(outcome)
        self._history = bits.shift_history(self._history, outcome,
                                           self.history_bits)

    def reset(self) -> None:
        self._history = 0
        for bank in self._banks:
            for cell in bank:
                cell.reset()

    @property
    def storage_bits(self) -> int:
        return (self.N_BANKS * self.bank_entries * self.counter_bits
                + self.history_bits)

    def __repr__(self) -> str:
        return (f"GSkewPredictor(history={self.history_bits}, "
                f"bank_entries={self.bank_entries})")
