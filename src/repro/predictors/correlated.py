"""Correlated load-address predictor (Bekerman et al., ISCA 1999).

The paper's strongest bank predictor is "the address predictor results
as appear in [Beke99]" — a *correlated* predictor: beyond per-load
strides, it keys the next delta on the recent *delta history*, so it
captures alternating and repeating non-constant patterns (A,B,A,B or
A,A,B) that defeat a plain stride table.

Structure here (a faithful simplification of the two-level scheme):

* **L1 (per-load) table** — last address plus a register of the last
  ``history_length`` deltas.
* **L2 (pattern) table** — indexed by a hash of (pc, delta history),
  holds the predicted next delta with a confidence counter.
* A plain stride entry serves as fallback while the pattern table is
  cold, so the predictor strictly dominates :class:`StrideAddressPredictor`
  on stride streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import bits
from repro.predictors.counters import SaturatingCounter


@dataclass
class _L1Entry:
    tag: int
    last_address: int
    deltas: Tuple[int, ...] = ()
    # Fallback stride state.
    stride: int = 0
    stride_confidence: SaturatingCounter = field(
        default_factory=lambda: SaturatingCounter(2))


@dataclass
class _PatternEntry:
    delta: int
    confidence: SaturatingCounter = field(
        default_factory=lambda: SaturatingCounter(2))


class CorrelatedAddressPredictor:
    """Two-level delta-correlated address prediction."""

    def __init__(self, l1_entries: int = 1024, pattern_entries: int = 4096,
                 history_length: int = 2, predict_threshold: int = 2,
                 tag_bits: int = 16) -> None:
        bits.ilog2(l1_entries)
        bits.ilog2(pattern_entries)
        if history_length < 1:
            raise ValueError("history_length must be positive")
        self.l1_entries = l1_entries
        self.pattern_entries = pattern_entries
        self.history_length = history_length
        self.predict_threshold = predict_threshold
        self.tag_bits = tag_bits
        self._l1: Dict[int, _L1Entry] = {}
        self._patterns: Dict[int, _PatternEntry] = {}

    # -- indexing ---------------------------------------------------------

    def _l1_slot(self, pc: int) -> Tuple[int, int]:
        return (bits.pc_index(pc, self.l1_entries),
                bits.fold(pc >> 2, self.tag_bits))

    def _pattern_index(self, pc: int, deltas: Tuple[int, ...]) -> int:
        mixed = bits.fold(pc >> 2, 20)
        for d in deltas:
            mixed = (mixed * 31 + (d & 0xFFFFF)) & 0xFFFFFFFF
        return bits.fold(mixed, bits.ilog2(self.pattern_entries))

    def _entry(self, pc: int) -> Optional[_L1Entry]:
        index, tag = self._l1_slot(pc)
        entry = self._l1.get(index)
        if entry is None or entry.tag != tag:
            return None
        return entry

    # -- prediction ---------------------------------------------------------

    def predict(self, pc: int) -> Optional[int]:
        """Predicted next effective address, or ``None``."""
        entry = self._entry(pc)
        if entry is None:
            return None
        # Pattern path: does the current delta context have a confident
        # next-delta entry?
        if len(entry.deltas) == self.history_length:
            pattern = self._patterns.get(
                self._pattern_index(pc, entry.deltas))
            if (pattern is not None
                    and pattern.confidence.value >= self.predict_threshold):
                return entry.last_address + pattern.delta
        # Stride fallback.
        if entry.stride_confidence.value >= self.predict_threshold:
            return entry.last_address + entry.stride
        return None

    def confidence(self, pc: int) -> float:
        entry = self._entry(pc)
        if entry is None:
            return 0.0
        if len(entry.deltas) == self.history_length:
            pattern = self._patterns.get(
                self._pattern_index(pc, entry.deltas))
            if (pattern is not None
                    and pattern.confidence.value >= self.predict_threshold):
                return pattern.confidence.confidence
        if entry.stride_confidence.value >= self.predict_threshold:
            return entry.stride_confidence.confidence
        return 0.0

    # -- training ---------------------------------------------------------

    def update(self, pc: int, address: int) -> None:
        index, tag = self._l1_slot(pc)
        entry = self._l1.get(index)
        if entry is None or entry.tag != tag:
            self._l1[index] = _L1Entry(tag=tag, last_address=address)
            return
        delta = address - entry.last_address

        # Train the pattern table on the context that preceded this delta.
        if len(entry.deltas) == self.history_length:
            slot = self._pattern_index(pc, entry.deltas)
            pattern = self._patterns.get(slot)
            if pattern is None:
                self._patterns[slot] = _PatternEntry(delta=delta)
            elif pattern.delta == delta:
                pattern.confidence.train(True)
            else:
                pattern.confidence.train(False)
                if pattern.confidence.value == 0:
                    pattern.delta = delta

        # Train the stride fallback.
        if delta == entry.stride:
            entry.stride_confidence.train(True)
        else:
            entry.stride_confidence.train(False)
            if entry.stride_confidence.value == 0:
                entry.stride = delta

        # Advance the context.
        entry.deltas = (entry.deltas + (delta,))[-self.history_length:]
        entry.last_address = address

    def reset(self) -> None:
        self._l1.clear()
        self._patterns.clear()

    @property
    def storage_bits(self) -> int:
        l1_bits = self.l1_entries * (self.tag_bits + 32
                                     + self.history_length * 16 + 16 + 2)
        l2_bits = self.pattern_entries * (16 + 2)
        return l1_bits + l2_bits

    def __repr__(self) -> str:
        return (f"CorrelatedAddressPredictor(l1={self.l1_entries}, "
                f"patterns={self.pattern_entries}, "
                f"history={self.history_length})")
