"""Predictor combination policies of sections 2.2 and 2.3.

The hybrid hit-miss predictor takes a "simple majority vote" between a
local predictor, a gshare and a gskew.  For bank prediction the paper
evaluates four policies: plain majority, weighted sum with a threshold,
high-confidence-only filtering, and confidence-weighted voting.  All
four are implemented here over the common predictor protocol.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.fastpath.backend import resolve_backend
from repro.predictors.base import BinaryPredictor, Prediction, NO_PREDICTION


class MajorityChooser(BinaryPredictor):
    """Simple majority vote between an odd number of components.

    The prediction's confidence reflects the vote margin, so downstream
    policies (e.g. duplicate-to-all-banks on low confidence) can react.

    ``backend`` selects the replay fast path (``repro.fastpath``); the
    scalar ``predict``/``update`` API is identical on both backends.
    """

    def __init__(self, components: Sequence[BinaryPredictor],
                 backend: str | None = None) -> None:
        if len(components) % 2 == 0:
            raise ValueError("majority vote needs an odd component count")
        self.backend = resolve_backend(backend)
        self.components: List[BinaryPredictor] = list(components)

    def predict(self, pc: int) -> Prediction:
        votes = [c.predict(pc) for c in self.components]
        ayes = sum(1 for v in votes if v.outcome)
        n = len(votes)
        outcome = ayes * 2 > n
        margin = abs(2 * ayes - n) / n  # 1.0 unanimous, ~0 split
        return Prediction(outcome=outcome, confidence=margin)

    def update(self, pc: int, outcome: bool) -> None:
        for c in self.components:
            c.update(pc, outcome)

    def reset(self) -> None:
        for c in self.components:
            c.reset()

    @property
    def storage_bits(self) -> int:
        return sum(c.storage_bits for c in self.components)


class WeightedChooser(BinaryPredictor):
    """Weighted vote with an abstain threshold.

    Each component casts ``+weight`` for a positive and ``-weight`` for a
    negative prediction (optionally scaled by its own confidence).  A
    prediction is produced only when ``|sum| >= threshold``; otherwise the
    chooser abstains (``valid=False``), which section 2.3 maps onto
    "duplicate the load to all banks".
    """

    def __init__(self, components: Sequence[BinaryPredictor],
                 weights: Sequence[float] | None = None,
                 threshold: float = 0.0,
                 confidence_scaled: bool = False,
                 backend: str | None = None) -> None:
        self.backend = resolve_backend(backend)
        self.components = list(components)
        if weights is None:
            weights = [1.0] * len(self.components)
        if len(weights) != len(self.components):
            raise ValueError("one weight per component required")
        self.weights = list(weights)
        self.threshold = threshold
        self.confidence_scaled = confidence_scaled

    def predict(self, pc: int) -> Prediction:
        total = 0.0
        scale = 0.0
        for component, weight in zip(self.components, self.weights):
            p = component.predict(pc)
            w = weight * (p.confidence if self.confidence_scaled else 1.0)
            total += w if p.outcome else -w
            scale += abs(weight)
        if abs(total) < self.threshold or scale == 0.0:
            return NO_PREDICTION
        return Prediction(outcome=total > 0, confidence=abs(total) / scale)

    def update(self, pc: int, outcome: bool) -> None:
        for c in self.components:
            c.update(pc, outcome)

    def reset(self) -> None:
        for c in self.components:
            c.reset()

    @property
    def storage_bits(self) -> int:
        return sum(c.storage_bits for c in self.components)


class ConfidenceFilter(BinaryPredictor):
    """Pass through a component's prediction only above a confidence floor.

    Implements the "only those predictions with a high confidence were
    taken into account" policy; low-confidence queries abstain.
    """

    def __init__(self, component: BinaryPredictor,
                 min_confidence: float = 0.5) -> None:
        self.component = component
        self.min_confidence = min_confidence

    def predict(self, pc: int) -> Prediction:
        p = self.component.predict(pc)
        if not p.valid or p.confidence < self.min_confidence:
            return NO_PREDICTION
        return p

    def update(self, pc: int, outcome: bool) -> None:
        self.component.update(pc, outcome)

    def reset(self) -> None:
        self.component.reset()

    @property
    def storage_bits(self) -> int:
        return self.component.storage_bits


def vote_breakdown(components: Sequence[BinaryPredictor],
                   pc: int) -> Tuple[int, int]:
    """(ayes, nays) across components — a debugging/report helper."""
    ayes = nays = 0
    for c in components:
        if c.predict(pc).outcome:
            ayes += 1
        else:
            nays += 1
    return ayes, nays
