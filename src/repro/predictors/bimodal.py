"""Bimodal predictor: a PC-indexed table of saturating counters."""

from __future__ import annotations

from typing import List

from repro.common import bits
from repro.fastpath.backend import resolve_backend
from repro.predictors.base import BinaryPredictor, Prediction
from repro.predictors.counters import SaturatingCounter


class BimodalPredictor(BinaryPredictor):
    """The classic tagless, direct-mapped counter table.

    Used standalone (predictor component "bimodal" of section 2.3's
    predictor B) and as the second level of the two-level predictors.

    ``backend`` selects the replay fast path (``repro.fastpath``); the
    scalar ``predict``/``update`` API is identical on both backends.
    """

    def __init__(self, n_entries: int = 2048, counter_bits: int = 2,
                 backend: str | None = None) -> None:
        bits.ilog2(n_entries)  # validate power of two
        self.n_entries = n_entries
        self.counter_bits = counter_bits
        self.backend = resolve_backend(backend)
        self._table: List[SaturatingCounter] = [
            SaturatingCounter(counter_bits) for _ in range(n_entries)
        ]

    def _index(self, pc: int) -> int:
        return bits.pc_index(pc, self.n_entries)

    def predict(self, pc: int) -> Prediction:
        cell = self._table[self._index(pc)]
        return Prediction(outcome=cell.prediction, confidence=cell.confidence)

    def update(self, pc: int, outcome: bool) -> None:
        self._table[self._index(pc)].train(outcome)

    def reset(self) -> None:
        for cell in self._table:
            cell.reset()

    @property
    def storage_bits(self) -> int:
        return self.n_entries * self.counter_bits

    def __repr__(self) -> str:
        return f"BimodalPredictor(entries={self.n_entries}, bits={self.counter_bits})"
