"""Gshare predictor (McFarling).

Used as a component of the hybrid hit-miss predictor (history length 11,
section 2.2) and of bank predictors A, B and C (section 4.3).  The global
history records the stream of outcomes of *all* predicted loads, which is
what the paper means by "history length of 11 loads".
"""

from __future__ import annotations

from typing import List

from repro.common import bits
from repro.fastpath.backend import resolve_backend
from repro.predictors.base import BinaryPredictor, Prediction
from repro.predictors.counters import SaturatingCounter


class GSharePredictor(BinaryPredictor):
    """PC xor global-history indexed counter table.

    ``backend`` selects the replay fast path (``repro.fastpath``); the
    scalar ``predict``/``update`` API is identical on both backends.
    """

    def __init__(self, history_bits: int = 11, n_entries: int | None = None,
                 counter_bits: int = 2, backend: str | None = None) -> None:
        self.backend = resolve_backend(backend)
        self.history_bits = history_bits
        self.n_entries = (1 << history_bits) if n_entries is None else n_entries
        bits.ilog2(self.n_entries)
        self.counter_bits = counter_bits
        self._history = 0
        self._table: List[SaturatingCounter] = [
            SaturatingCounter(counter_bits) for _ in range(self.n_entries)
        ]

    def _index(self, pc: int) -> int:
        return bits.gshare_index(pc, self._history, self.n_entries)

    def predict(self, pc: int) -> Prediction:
        cell = self._table[self._index(pc)]
        return Prediction(outcome=cell.prediction, confidence=cell.confidence)

    def update(self, pc: int, outcome: bool) -> None:
        self._table[self._index(pc)].train(outcome)
        self._history = bits.shift_history(self._history, outcome,
                                           self.history_bits)

    def reset(self) -> None:
        self._history = 0
        for cell in self._table:
            cell.reset()

    @property
    def storage_bits(self) -> int:
        return self.n_entries * self.counter_bits + self.history_bits

    def __repr__(self) -> str:
        return (f"GSharePredictor(history={self.history_bits}, "
                f"entries={self.n_entries})")
