"""Analytic models of the four memory pipelines of Figure 4.

The paper compares, for a two-ported memory subsystem:

* a **truly multi-ported** cache — no conflicts, shortest latency,
  highest cost;
* a **conventional multi-banked** cache — a decision stage and crossbar
  add latency; bank conflicts stall or re-execute;
* a **dual-scheduled** multi-banked cache — a second-level scheduler
  after address generation removes conflicts but adds latency;
* the proposed **sliced** multi-banked pipeline — each pipe hard-wired
  to one bank, same latency as the ideal pipe, but needs a bank
  predictor; a bank misprediction forces re-execution unless the load
  was duplicated to all pipes.

These models capture the latency/penalty structure the section 4.3
metric builds on, and let benchmarks compare organisations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PipelineKind(enum.Enum):
    """The four memory-pipeline organisations of Figure 4."""

    TRULY_MULTIPORTED = "truly-multiported"
    CONVENTIONAL_BANKED = "conventional-banked"
    DUAL_SCHEDULED = "dual-scheduled"
    SLICED_BANKED = "sliced-banked"


@dataclass(frozen=True)
class MemoryPipelineModel:
    """Latency and penalty profile of one pipeline organisation.

    Attributes
    ----------
    kind:
        Which organisation this is.
    extra_latency:
        Cycles added to every load relative to the ideal pipe (crossbar
        setup / decision stage / second scheduler).
    conflict_penalty:
        Cycles lost when two same-cycle accesses collide on a bank
        (zero where the organisation removes conflicts).
    mispredict_penalty:
        Cycles lost when a bank prediction is wrong (sliced pipe only —
        the load is flushed and re-executed once the bank is known).
    needs_bank_predictor:
        Whether the organisation cannot operate without a predictor.
    """

    kind: PipelineKind
    extra_latency: int
    conflict_penalty: int
    mispredict_penalty: int
    needs_bank_predictor: bool

    def load_latency(self, base_latency: int) -> int:
        """Conflict-free load latency under this organisation."""
        return base_latency + self.extra_latency

    def expected_load_time(self, base_latency: int, conflict_rate: float,
                           mispredict_rate: float = 0.0) -> float:
        """Average load latency given conflict/misprediction rates."""
        if not 0.0 <= conflict_rate <= 1.0:
            raise ValueError("conflict_rate must be a probability")
        if not 0.0 <= mispredict_rate <= 1.0:
            raise ValueError("mispredict_rate must be a probability")
        time = float(self.load_latency(base_latency))
        time += conflict_rate * self.conflict_penalty
        time += mispredict_rate * self.mispredict_penalty
        return time


#: No conflicts, no added latency — the reference design.
TRULY_MULTIPORTED = MemoryPipelineModel(
    kind=PipelineKind.TRULY_MULTIPORTED,
    extra_latency=0, conflict_penalty=0, mispredict_penalty=0,
    needs_bank_predictor=False)

#: Crossbar + decision stage add latency; conflicts re-execute.
CONVENTIONAL_BANKED = MemoryPipelineModel(
    kind=PipelineKind.CONVENTIONAL_BANKED,
    extra_latency=2, conflict_penalty=3, mispredict_penalty=0,
    needs_bank_predictor=False)

#: The second-level scheduler removes conflicts but lengthens every load.
DUAL_SCHEDULED = MemoryPipelineModel(
    kind=PipelineKind.DUAL_SCHEDULED,
    extra_latency=2, conflict_penalty=0, mispredict_penalty=0,
    needs_bank_predictor=False)

#: Ideal latency, but a wrong bank prediction costs a re-execution.
SLICED_BANKED = MemoryPipelineModel(
    kind=PipelineKind.SLICED_BANKED,
    extra_latency=0, conflict_penalty=0, mispredict_penalty=4,
    needs_bank_predictor=True)


ALL_PIPELINES = (TRULY_MULTIPORTED, CONVENTIONAL_BANKED, DUAL_SCHEDULED,
                 SLICED_BANKED)
