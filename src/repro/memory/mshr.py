"""Outstanding-miss queue (MSHR) and serviced-load buffer.

Section 2.2's timing refinement: "If a load misses the cache and a later
load tries to access the same cache line before that line has arrived it
will also miss the cache (dynamic miss).  On the other hand, if the
second load is executed after enough time has passed ... it will most
likely be a hit.  Most processors already have a structure that tracks
dynamic misses (outstanding miss queue) and a small buffer for tracking
serviced loads is a simple addition."

Both structures are keyed by cache line and bounded, evicting oldest
entries first.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class OutstandingMissQueue:
    """Lines currently being fetched, each with its arrival cycle."""

    def __init__(self, n_entries: int = 8) -> None:
        if n_entries < 1:
            raise ValueError("MSHR needs at least one entry")
        self.n_entries = n_entries
        self._pending: "OrderedDict[int, int]" = OrderedDict()

    def insert(self, line: int, ready_cycle: int) -> None:
        """Record that ``line`` will arrive at ``ready_cycle``.

        A second miss to an in-flight line merges (keeps the earlier
        arrival); a full queue drops its oldest entry — the model's
        equivalent of stalling the miss pipeline.
        """
        if line in self._pending:
            self._pending[line] = min(self._pending[line], ready_cycle)
            return
        while len(self._pending) >= self.n_entries:
            self._pending.popitem(last=False)
        self._pending[line] = ready_cycle

    def expire(self, now: int) -> None:
        """Drop entries whose lines have arrived by cycle ``now``."""
        arrived = [line for line, ready in self._pending.items()
                   if ready <= now]
        for line in arrived:
            del self._pending[line]

    def pending_until(self, line: int, now: int) -> Optional[int]:
        """Arrival cycle of ``line`` if still in flight at ``now``."""
        ready = self._pending.get(line)
        if ready is None or ready <= now:
            return None
        return ready

    def __contains__(self, line: int) -> bool:
        return line in self._pending

    def __len__(self) -> int:
        return len(self._pending)

    def clear(self) -> None:
        self._pending.clear()


class ServicedLoadBuffer:
    """Recently serviced (arrived) lines, with their arrival cycle.

    Used as the positive half of the timing hint: a load to a line that
    just arrived is very likely a hit regardless of what the pattern
    tables say.
    """

    def __init__(self, n_entries: int = 16, retention_cycles: int = 256) -> None:
        if n_entries < 1:
            raise ValueError("buffer needs at least one entry")
        self.n_entries = n_entries
        self.retention_cycles = retention_cycles
        self._serviced: "OrderedDict[int, int]" = OrderedDict()

    def insert(self, line: int, arrival_cycle: int) -> None:
        if line in self._serviced:
            del self._serviced[line]
        while len(self._serviced) >= self.n_entries:
            self._serviced.popitem(last=False)
        self._serviced[line] = arrival_cycle

    def recently_serviced(self, line: int, now: int) -> bool:
        arrival = self._serviced.get(line)
        if arrival is None:
            return False
        return now - arrival <= self.retention_cycles

    def __len__(self) -> int:
        return len(self._serviced)

    def clear(self) -> None:
        self._serviced.clear()
