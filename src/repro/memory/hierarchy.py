"""Two-level memory hierarchy with dynamic load latencies.

This is the structure the hit-miss predictor reasons about: a load's
latency depends on which level the data resides in (section 2.2).  The
hierarchy also feeds the MSHR so the timing-enhanced predictor can see
in-flight lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import MemoryConfig
from repro.common.stats import StatGroup
from repro.memory.cache import Cache
from repro.memory.mshr import OutstandingMissQueue, ServicedLoadBuffer


@dataclass(frozen=True)
class LoadOutcome:
    """Result of sending one load down the hierarchy.

    Attributes
    ----------
    l1_hit / l2_hit:
        Residence at each level.  ``l2_hit`` is meaningful only when the
        L1 missed.
    latency:
        Total data latency in cycles, from cache access start to data.
    line:
        The cache-line index of the access (for MSHR bookkeeping).
    dynamic_miss:
        True when the L1 miss was to a line already in flight — the
        "dynamic miss" case of section 2.2; latency is the residual wait.
    """

    l1_hit: bool
    l2_hit: bool
    latency: int
    line: int
    dynamic_miss: bool = False

    @property
    def miss(self) -> bool:
        return not self.l1_hit


class MemoryHierarchy:
    """L1 data cache + unified L2 + memory, with an outstanding-miss queue."""

    def __init__(self, config: Optional[MemoryConfig] = None,
                 stats: Optional[StatGroup] = None) -> None:
        self.config = config if config is not None else MemoryConfig()
        group = stats if stats is not None else StatGroup("memory")
        self.stats = group
        self.l1d = Cache(self.config.l1d, "l1d", group.child("l1d"))
        self.l2 = Cache(self.config.l2, "l2", group.child("l2"))
        self.mshr = OutstandingMissQueue(self.config.mshr_entries)
        self.serviced = ServicedLoadBuffer()
        self._loads = group.counter("loads")
        self._l1_misses = group.counter("l1_misses")
        self._l2_misses = group.counter("l2_misses")
        self._dynamic_misses = group.counter("dynamic_misses")
        #: Optional :class:`repro.obs.events.EventBus`; when attached,
        #: every L1 miss is emitted with the level that served it.
        self.obs = None

    def load(self, address: int, now: int = 0) -> LoadOutcome:
        """Execute a load at cycle ``now`` and return its outcome."""
        self._loads.add()
        self.mshr.expire(now)
        line = address // self.config.l1d.line_bytes

        pending = self.mshr.pending_until(line, now)
        if pending is not None:
            # The line is already being fetched: a dynamic miss.  The load
            # waits for the in-flight fill rather than starting a new one.
            self._dynamic_misses.add()
            self._l1_misses.add()
            if self.obs is not None:
                self.obs.emit("miss", now, pc=0, level="inflight",
                              line=line, latency=pending - now)
            # Keep L1 state consistent: the fill will install the line, so
            # model the install now (subsequent post-arrival loads hit).
            self.l1d.access(address)
            return LoadOutcome(l1_hit=False, l2_hit=True,
                               latency=pending - now, line=line,
                               dynamic_miss=True)

        l1 = self.l1d.access(address)
        if l1.hit:
            return LoadOutcome(l1_hit=True, l2_hit=True,
                               latency=self.config.l1_latency, line=line)

        self._l1_misses.add()
        l2 = self.l2.access(address)
        if l2.hit:
            latency = self.config.l2_latency
        else:
            self._l2_misses.add()
            latency = self.config.memory_latency
        if self.obs is not None:
            self.obs.emit("miss", now, pc=0,
                          level="l2" if l2.hit else "mem",
                          line=line, latency=latency)
        self.mshr.insert(line, now + latency)
        self.serviced.insert(line, now + latency)
        return LoadOutcome(l1_hit=False, l2_hit=l2.hit, latency=latency,
                           line=line)

    def store(self, address: int, now: int = 0) -> None:
        """Stores install their line in both levels (write-allocate)."""
        l1 = self.l1d.access(address)
        if not l1.hit:
            self.l2.access(address)

    def would_hit_l1(self, address: int, now: int = 0) -> bool:
        """Non-destructive L1 residence probe (oracle/HMP verification).

        A line still being filled counts as a miss (the dynamic-miss
        case): its data is not yet available even though the tag array
        already owns it in this model.
        """
        line = address // self.config.l1d.line_bytes
        if self.mshr.pending_until(line, now) is not None:
            return False
        return self.l1d.probe(address)

    @property
    def l1_miss_rate(self) -> float:
        loads = self._loads.value
        return self._l1_misses.value / loads if loads else 0.0

    def reset(self) -> None:
        self.l1d.flush()
        self.l2.flush()
        self.mshr.clear()
        self.serviced.clear()
