"""Memory-system substrate.

Implements the section 3.1 hierarchy (16K L1D / 256K unified L2, 4-way,
64-byte lines), a multi-banked L1 with conflict accounting, the
outstanding-miss queue (MSHR) used by the timing-enhanced hit-miss
predictor, and analytic models of the four memory pipelines compared in
Figure 4.
"""

from repro.memory.cache import Cache, AccessResult
from repro.memory.hierarchy import MemoryHierarchy, LoadOutcome
from repro.memory.banked import BankedCache, BankScheduler
from repro.memory.mshr import OutstandingMissQueue, ServicedLoadBuffer
from repro.memory.prefetch import StridePrefetcher, PrefetchStats
from repro.memory.pipelines import (
    PipelineKind,
    MemoryPipelineModel,
    TRULY_MULTIPORTED,
    CONVENTIONAL_BANKED,
    DUAL_SCHEDULED,
    SLICED_BANKED,
)

__all__ = [
    "Cache",
    "AccessResult",
    "MemoryHierarchy",
    "LoadOutcome",
    "BankedCache",
    "BankScheduler",
    "OutstandingMissQueue",
    "ServicedLoadBuffer",
    "StridePrefetcher",
    "PrefetchStats",
    "PipelineKind",
    "MemoryPipelineModel",
    "TRULY_MULTIPORTED",
    "CONVENTIONAL_BANKED",
    "DUAL_SCHEDULED",
    "SLICED_BANKED",
]
