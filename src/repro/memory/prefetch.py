"""Hardware data prefetching (the [Pinte96] "Tango" connection).

The paper's §2.2 closes with: "If the load address is predicted
correctly we can of course fetch the data ahead of time and not use it
for hit-miss prediction only" — and cites the authors' own Tango
prefetcher when discussing cache tag-port pressure.  This module
supplies that substrate so the interaction can be studied:

* :class:`StridePrefetcher` — a per-PC stride detector (reusing the
  address-predictor machinery) that, on each demand load, issues
  next-line prefetches ``degree`` strides ahead into the hierarchy.
* :class:`PrefetchStats` — issued / useful accounting (a prefetch is
  *useful* when a later demand access hits a line the prefetcher
  brought in).

The interesting interaction (see the ablation benchmark): prefetching
*removes* exactly the regular misses the hit-miss predictor catches
best, so HMP miss coverage drops as the prefetcher gets better — the
two mechanisms compete for the same regularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.address import StrideAddressPredictor


@dataclass
class PrefetchStats:
    """Prefetch effectiveness accounting."""

    issued: int = 0
    useful: int = 0  #: demand accesses that hit a prefetched line
    late_or_useless: int = 0  #: prefetched lines evicted/never used

    @property
    def usefulness(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class StridePrefetcher:
    """Per-PC stride prefetching into a :class:`MemoryHierarchy`.

    Parameters
    ----------
    hierarchy:
        The hierarchy to prefetch into (shared with the engine).
    degree:
        How many strides ahead to fetch on each trained demand access.
    predictor:
        The stride table (a fresh one per prefetcher by default).
    """

    def __init__(self, hierarchy: MemoryHierarchy, degree: int = 2,
                 predictor: Optional[StrideAddressPredictor] = None
                 ) -> None:
        if degree < 1:
            raise ValueError("degree must be positive")
        self.hierarchy = hierarchy
        self.degree = degree
        self.predictor = (predictor if predictor is not None
                          else StrideAddressPredictor())
        self.stats = PrefetchStats()
        self._prefetched_lines: Set[int] = set()

    def on_demand_access(self, pc: int, address: int, now: int = 0) -> None:
        """Observe a demand load; train and possibly prefetch ahead.

        Call *after* the demand access itself so the prefetches queue
        behind it (and so usefulness accounting sees the demand first).
        """
        line_bytes = self.hierarchy.config.l1d.line_bytes
        line = address // line_bytes
        if line in self._prefetched_lines:
            self.stats.useful += 1
            self._prefetched_lines.discard(line)

        self.predictor.update(pc, address)
        predicted = self.predictor.predict(pc)
        if predicted is None:
            return
        stride = predicted - address
        if stride == 0:
            return  # constant address: nothing to run ahead of
        target = predicted
        for _ in range(self.degree):
            target_line = target // line_bytes
            if (target_line != line
                    and self.hierarchy.mshr.pending_until(
                        target_line, now) is None
                    and not self.hierarchy.would_hit_l1(target, now)):
                self.hierarchy.load(target, now)
                # Prefetch traffic must not pollute demand statistics.
                self._undo_demand_accounting()
                self.stats.issued += 1
                self._prefetched_lines.add(target_line)
                if len(self._prefetched_lines) > 512:
                    self._prefetched_lines.pop()
                    self.stats.late_or_useless += 1
            target += stride

    def _undo_demand_accounting(self) -> None:
        """Remove the hierarchy counters the prefetch access incurred."""
        stats = self.hierarchy.stats
        loads = stats.get("loads")
        misses = stats.get("l1_misses")
        if loads is not None and loads.value > 0:
            loads.value -= 1
        if misses is not None and misses.value > 0:
            misses.value -= 1

    def reset(self) -> None:
        self.predictor.reset()
        self.stats = PrefetchStats()
        self._prefetched_lines.clear()
