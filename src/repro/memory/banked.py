"""Multi-banked cache front end and bank-aware scheduling.

Section 2.3: a multi-banked cache splits the first level into
independently addressed banks, each servicing one access per cycle.
Bank conflicts — two same-cycle accesses to one bank — waste bandwidth.
:class:`BankScheduler` models the per-cycle port assignment under three
policies: oblivious (no prediction, conflicts happen), predicted
(conflicting-predicted loads are not co-scheduled), and oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common import bits
from repro.common.stats import StatGroup


class BankedCache:
    """Bank geometry and conflict detection for a line-interleaved L1."""

    def __init__(self, n_banks: int = 2, line_bytes: int = 64) -> None:
        if n_banks < 1 or n_banks & (n_banks - 1):
            raise ValueError("n_banks must be a positive power of two")
        self.n_banks = n_banks
        self.line_bytes = line_bytes

    def bank_of(self, address: int) -> int:
        return (address // self.line_bytes) % self.n_banks

    def conflicts(self, addresses: Sequence[int]) -> int:
        """Number of accesses beyond the first to each bank."""
        seen: Dict[int, int] = {}
        for address in addresses:
            bank = self.bank_of(address)
            seen[bank] = seen.get(bank, 0) + 1
        return sum(count - 1 for count in seen.values() if count > 1)


@dataclass
class BankSchedulerStats:
    """Per-policy accounting for the bank scheduler."""

    cycles: int = 0
    issued: int = 0
    conflicts: int = 0
    delayed: int = 0


class BankScheduler:
    """Greedy per-cycle selection of loads onto cache banks.

    Each cycle the scheduler is handed the addresses (and, if available,
    predicted banks) of ready loads, ordered oldest first.  It issues at
    most one load per bank per cycle:

    * ``oblivious`` — issues the oldest ``n_banks`` loads regardless of
      bank; any conflicting pair costs a conflict (re-schedule) event.
    * ``predicted`` — consults predicted banks and refuses to co-issue
      two loads predicted to the same bank; wrong predictions still
      conflict at execute.
    * ``oracle`` — uses true banks; never conflicts.
    """

    POLICIES = ("oblivious", "predicted", "oracle")

    def __init__(self, cache: BankedCache, policy: str = "oracle",
                 stats: Optional[StatGroup] = None) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        self.cache = cache
        self.policy = policy
        group = stats if stats is not None else StatGroup("bank_sched")
        self._issued = group.counter("issued")
        self._conflicts = group.counter("conflicts")
        self._delayed = group.counter("delayed")
        self._cycles = group.counter("cycles")

    def select(self, loads: Sequence[Tuple[int, Optional[int]]]
               ) -> Tuple[List[int], List[int]]:
        """Pick loads to issue this cycle.

        Parameters
        ----------
        loads:
            ``(address, predicted_bank)`` pairs, oldest first;
            ``predicted_bank`` may be ``None`` (no prediction).

        Returns
        -------
        (issued, conflicted):
            Indices into ``loads`` of the loads issued this cycle, and of
            issued loads that hit a bank conflict at execute (oblivious /
            mispredicted cases).
        """
        self._cycles.add()
        issued: List[int] = []
        conflicted: List[int] = []
        claimed: Dict[int, int] = {}  # bank -> index of load holding it

        for i, (address, predicted_bank) in enumerate(loads):
            if len(issued) >= self.cache.n_banks:
                break
            true_bank = self.cache.bank_of(address)
            if self.policy == "oracle":
                plan_bank = true_bank
            elif self.policy == "predicted":
                plan_bank = predicted_bank
            else:
                plan_bank = None

            if plan_bank is not None and plan_bank in claimed:
                # The scheduler believes this bank is taken: delay the load.
                self._delayed.add()
                continue

            issued.append(i)
            if plan_bank is not None:
                claimed[plan_bank] = i
            # Execute-time truth: does it actually conflict with an
            # already-issued load on the same true bank?
            for j in issued[:-1]:
                if j in conflicted:
                    continue
                if self.cache.bank_of(loads[j][0]) == true_bank:
                    conflicted.append(i)
                    self._conflicts.add()
                    break

        self._issued.add(len(issued))
        return issued, conflicted

    @property
    def conflict_rate(self) -> float:
        issued = self._issued.value
        return self._conflicts.value / issued if issued else 0.0
