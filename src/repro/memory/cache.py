"""Set-associative cache model with true LRU replacement.

The model tracks tags only (no data), which is all a scheduling study
needs: the simulator asks "would this access hit?" and the hit/miss
stream drives both the latency model and the hit-miss predictor's ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common import bits
from repro.common.config import CacheConfig
from repro.common.stats import StatGroup


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    set_index: int
    tag: int
    evicted_tag: Optional[int] = None

    @property
    def miss(self) -> bool:
        return not self.hit


class _CacheSet:
    """One set: an LRU-ordered list of tags (front = most recent)."""

    __slots__ = ("ways", "tags")

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.tags: List[int] = []

    def access(self, tag: int, allocate: bool) -> tuple:
        """Probe for ``tag``; returns (hit, evicted_tag)."""
        try:
            self.tags.remove(tag)
        except ValueError:
            if not allocate:
                return False, None
            evicted = self.tags.pop() if len(self.tags) >= self.ways else None
            self.tags.insert(0, tag)
            return False, evicted
        self.tags.insert(0, tag)
        return True, None

    def contains(self, tag: int) -> bool:
        return tag in self.tags

    def invalidate(self, tag: int) -> bool:
        try:
            self.tags.remove(tag)
            return True
        except ValueError:
            return False


class Cache:
    """A single cache level.

    ``access`` allocates on miss (the usual write-allocate, fetch-on-miss
    policy); ``probe`` checks residence without disturbing LRU state,
    which is what an address-predictor-based hit-miss check would do
    (section 2.2).
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 stats: Optional[StatGroup] = None) -> None:
        self.config = config
        self.name = name
        self._sets: List[_CacheSet] = [
            _CacheSet(config.ways) for _ in range(config.n_sets)
        ]
        group = stats if stats is not None else StatGroup(name)
        self.stats = group
        self._hits = group.counter("hits")
        self._misses = group.counter("misses")
        self._evictions = group.counter("evictions")

    def _locate(self, address: int) -> tuple:
        line = address // self.config.line_bytes
        set_index = line % self.config.n_sets
        tag = line // self.config.n_sets
        return set_index, tag

    def access(self, address: int) -> AccessResult:
        """Reference ``address``: probe, update LRU, allocate on miss."""
        set_index, tag = self._locate(address)
        hit, evicted = self._sets[set_index].access(tag, allocate=True)
        if hit:
            self._hits.add()
        else:
            self._misses.add()
            if evicted is not None:
                self._evictions.add()
        return AccessResult(hit=hit, set_index=set_index, tag=tag,
                            evicted_tag=evicted)

    def probe(self, address: int) -> bool:
        """Non-destructive residence check (no LRU update, no allocate)."""
        set_index, tag = self._locate(address)
        return self._sets[set_index].contains(tag)

    def invalidate(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return self._sets[set_index].invalidate(tag)

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.tags.clear()

    def bank_of(self, address: int) -> int:
        """Line-interleaved bank index for banked organisations."""
        return bits.extract(address // self.config.line_bytes, 0,
                            bits.ilog2(self.config.n_banks)) \
            if self.config.n_banks > 1 else 0

    @property
    def hit_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._hits.value / total if total else 0.0

    def __repr__(self) -> str:
        return (f"Cache({self.name}, {self.config.size_bytes // 1024}K, "
                f"{self.config.ways}-way)")
