"""Multi-level hit-miss prediction.

Section 2.2 scopes the technique as predicting "for the first level
only or for all levels", and motivates the all-levels variant with
multithreading: "the prediction may be used to govern a thread switch
if a load is predicted to miss the L2 cache, and suffer the large
latency of accessing main memory."

:class:`MultiLevelHMP` composes two binary predictors — one over the L1
hit/miss stream and one over the L2 hit/miss stream of L1-missing loads
— into a per-load *level* prediction (L1 / L2 / MEMORY), which the
scheduler maps to a latency and the thread scheduler to a switch
decision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hitmiss.base import HitMissPredictor
from repro.hitmiss.local import LocalHMP
from repro.memory.hierarchy import LoadOutcome


class MemoryLevel(enum.IntEnum):
    """Where a load's data is predicted/found to reside."""

    L1 = 0
    L2 = 1
    MEMORY = 2

    @classmethod
    def of(cls, outcome: LoadOutcome) -> "MemoryLevel":
        if outcome.l1_hit:
            return cls.L1
        return cls.L2 if outcome.l2_hit else cls.MEMORY


@dataclass
class LevelStats:
    """Confusion counts over (actual level, predicted level)."""

    counts: Dict[tuple, int] = field(default_factory=dict)

    def record(self, actual: MemoryLevel, predicted: MemoryLevel) -> None:
        key = (actual, predicted)
        self.counts[key] = self.counts.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def accuracy(self) -> float:
        if not self.total:
            return 0.0
        correct = sum(n for (a, p), n in self.counts.items() if a == p)
        return correct / self.total

    def caught(self, level: MemoryLevel) -> float:
        """Recall of ``level``: how many of its loads were predicted."""
        actual = sum(n for (a, _), n in self.counts.items() if a == level)
        if not actual:
            return 0.0
        hit = self.counts.get((level, level), 0)
        return hit / actual


class MultiLevelHMP:
    """Two stacked binary HMPs giving a three-way level prediction.

    The L2 component trains only on loads that actually missed L1 —
    mirroring the hardware, where the L2 predictor's history registers
    record the L2 outcomes of L1 misses.
    """

    def __init__(self, l1: Optional[HitMissPredictor] = None,
                 l2: Optional[HitMissPredictor] = None) -> None:
        self.l1 = l1 if l1 is not None else LocalHMP()
        self.l2 = l2 if l2 is not None else LocalHMP(n_entries=512)
        self.stats = LevelStats()

    def predict_level(self, pc: int, line: Optional[int] = None,
                      now: int = 0) -> MemoryLevel:
        if self.l1.predict_hit(pc, line, now):
            return MemoryLevel.L1
        if self.l2.predict_hit(pc, line, now):
            return MemoryLevel.L2
        return MemoryLevel.MEMORY

    def predict_latency(self, pc: int, l1_latency: int, l2_latency: int,
                        memory_latency: int,
                        line: Optional[int] = None, now: int = 0) -> int:
        """The scheduler-facing form: a concrete latency estimate."""
        level = self.predict_level(pc, line, now)
        return {MemoryLevel.L1: l1_latency,
                MemoryLevel.L2: l2_latency,
                MemoryLevel.MEMORY: memory_latency}[level]

    def update(self, pc: int, outcome: LoadOutcome,
               now: int = 0) -> MemoryLevel:
        """Train both components with a resolved load outcome."""
        actual = MemoryLevel.of(outcome)
        predicted = self.predict_level(pc, outcome.line, now)
        self.stats.record(actual, predicted)
        self.l1.update(pc, outcome.l1_hit, outcome.line, now)
        if not outcome.l1_hit:
            self.l2.update(pc, outcome.l2_hit, outcome.line, now)
        return actual

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.stats = LevelStats()

    @property
    def storage_bits(self) -> int:
        return self.l1.storage_bits + self.l2.storage_bits

    def __repr__(self) -> str:
        return f"MultiLevelHMP(l1={self.l1!r}, l2={self.l2!r})"
