"""Address-predictor-based hit-miss prediction.

Section 2.2's second refinement family: "Another way of making hit/miss
predictions is by using an address predictor to directly check whether
the data is in the cache or not.  Unfortunately, this requires a tag
lookup in the cache" — expensive for L1, viable for L2, and enabled for
L1 by tag-pressure relief mechanisms like [Pinte96].

:class:`AddressProbeHMP` predicts the load's effective address with the
stride predictor and probes the (tag-only) cache non-destructively; on
an unstable address it falls back to a base predictor.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hitmiss.base import HitMissPredictor
from repro.hitmiss.oracle import AlwaysHitHMP
from repro.predictors.address import StrideAddressPredictor


class AddressProbeHMP(HitMissPredictor):
    """Predict the address, probe the tags, fall back when unstable.

    Parameters
    ----------
    probe:
        Non-destructive residence check, e.g.
        ``hierarchy.would_hit_l1`` — called with (address, now).
    base:
        Predictor used when the address predictor abstains.
    address_predictor:
        The stride predictor (shared with other consumers if desired).
    """

    def __init__(self, probe: Callable[[int, int], bool],
                 base: Optional[HitMissPredictor] = None,
                 address_predictor: Optional[StrideAddressPredictor] = None
                 ) -> None:
        self._probe = probe
        self.base = base if base is not None else AlwaysHitHMP()
        self.addresses = (address_predictor if address_predictor is not None
                          else StrideAddressPredictor())
        self.probed = 0  #: predictions decided by a tag probe
        self.fallbacks = 0

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        predicted_address = self.addresses.predict(pc)
        if predicted_address is not None:
            self.probed += 1
            return self._probe(predicted_address, now)
        self.fallbacks += 1
        return self.base.predict_hit(pc, line, now)

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        self.base.update(pc, hit, line, now)
        if line is not None:
            # Train the address predictor with the line-aligned address
            # (the access offset within the line is irrelevant here).
            self.addresses.update(pc, line * 64)

    def train_address(self, pc: int, address: int) -> None:
        """Exact-address training hook for engines that have it."""
        self.addresses.update(pc, address)

    def reset(self) -> None:
        self.base.reset()
        self.addresses.reset()
        self.probed = 0
        self.fallbacks = 0

    @property
    def storage_bits(self) -> int:
        return self.base.storage_bits + self.addresses.storage_bits

    def __repr__(self) -> str:
        return f"AddressProbeHMP(base={self.base!r})"
