"""Hit-miss predictor protocol and the AH/AM × PH/PM accounting.

Internally every HMP predicts the *miss* event (the rare, interesting
one); the public API speaks in terms of "predict hit?" to match the
scheduler's question.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.types import HitMissClass


class HitMissPredictor(abc.ABC):
    """Per-load binary L1 hit/miss prediction.

    ``line`` and ``now`` are optional context used by timing-aware
    predictors; table-only predictors ignore them.
    """

    #: Optional :class:`repro.obs.events.EventBus`; when attached,
    #: :meth:`observed_update` reports every training step.
    obs = None

    @abc.abstractmethod
    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        """True = the load is predicted to hit the L1 data cache."""

    @abc.abstractmethod
    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        """Train with the resolved outcome."""

    def observed_update(self, pc: int, hit: bool,
                        line: Optional[int] = None, now: int = 0) -> None:
        """:meth:`update`, plus a ``predictor-update`` event when an
        event bus is attached (the engine's hook point)."""
        self.update(pc, hit, line, now)
        if self.obs is not None:
            self.obs.emit("predictor-update", now, pc=pc,
                          family="hitmiss",
                          predictor=type(self).__name__, outcome=hit)

    def reset(self) -> None:
        raise NotImplementedError

    @property
    def storage_bits(self) -> int:
        raise NotImplementedError


@dataclass
class HitMissStats:
    """Counts of the four outcome classes of section 2.2.

    ``record`` classifies one (actual, predicted) pair; the properties
    expose the ratios Figure 10 reports (all as fractions of all loads).
    """

    counts: Dict[HitMissClass, int] = field(
        default_factory=lambda: {c: 0 for c in HitMissClass})

    def record(self, actual_hit: bool, predicted_hit: bool) -> HitMissClass:
        cls = HitMissClass.classify(actual_hit, predicted_hit)
        self.counts[cls] += 1
        return cls

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, cls: HitMissClass) -> float:
        total = self.total
        return self.counts[cls] / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Actual L1 miss rate — the 'MISSES' bar of Figure 10."""
        total = self.total
        if not total:
            return 0.0
        misses = (self.counts[HitMissClass.AM_PM]
                  + self.counts[HitMissClass.AM_PH])
        return misses / total

    @property
    def am_pm_fraction(self) -> float:
        """Misses caught by the predictor (higher is better)."""
        return self.fraction(HitMissClass.AM_PM)

    @property
    def ah_pm_fraction(self) -> float:
        """Hits mispredicted as misses (lower is better)."""
        return self.fraction(HitMissClass.AH_PM)

    @property
    def miss_coverage(self) -> float:
        """Fraction of actual misses that were predicted (AM-PM / AM)."""
        misses = (self.counts[HitMissClass.AM_PM]
                  + self.counts[HitMissClass.AM_PH])
        return self.counts[HitMissClass.AM_PM] / misses if misses else 0.0

    @property
    def catch_to_false_ratio(self) -> float:
        """AM-PM : AH-PM — the paper reports at least 5:1 on all traces."""
        false_misses = self.counts[HitMissClass.AH_PM]
        if not false_misses:
            return float("inf")
        return self.counts[HitMissClass.AM_PM] / false_misses

    @property
    def accuracy(self) -> float:
        total = self.total
        if not total:
            return 0.0
        correct = (self.counts[HitMissClass.AH_PH]
                   + self.counts[HitMissClass.AM_PM])
        return correct / total

    def merge(self, other: "HitMissStats") -> None:
        for cls, count in other.counts.items():
            self.counts[cls] += count

    def as_dict(self) -> Dict[str, float]:
        return {
            "misses": self.miss_rate,
            "am_pm": self.am_pm_fraction,
            "ah_pm": self.ah_pm_fraction,
            "coverage": self.miss_coverage,
            "accuracy": self.accuracy,
        }
