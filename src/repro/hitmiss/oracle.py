"""Reference hit-miss predictors bounding the design space.

* :class:`AlwaysHitHMP` — today's processors: assume every load hits
  (reasonable, "more than 95% of the dynamic loads are cache hits").
* :class:`AlwaysMissHMP` — the pessimistic pole, for ablations.
* :class:`OracleHMP` — perfect prediction via a non-destructive cache
  probe; bounds the technique's potential (~6 % speedup in Figure 11).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hitmiss.base import HitMissPredictor


class AlwaysHitHMP(HitMissPredictor):
    """The status-quo predictor: every load is predicted to hit."""

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        return True

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0


class AlwaysMissHMP(HitMissPredictor):
    """Pessimistic pole: every load treated as an L1 miss."""

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        return False

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0


class OracleHMP(HitMissPredictor):
    """Perfect hit-miss knowledge.

    Built from a probe callback so it can be wired to the live memory
    hierarchy (``hierarchy.would_hit_l1``) or to precomputed outcomes.
    The engine calls it with the load's line; the probe receives the
    (pc, line, now) triple and must return the actual hit outcome.
    """

    def __init__(self, probe: Callable[[int, Optional[int], int], bool]) -> None:
        self._probe = probe

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        return self._probe(pc, line, now)

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def storage_bits(self) -> int:
        return 0
