"""Timing-enhanced hit-miss prediction.

Section 2.2's refinement: "If a load misses the cache and a later load
tries to access the same cache line before that line has arrived it will
also miss the cache (dynamic miss).  On the other hand, if the second
load is executed after enough time has passed for the first load to have
been serviced, it will most likely be a hit."

:class:`TimingHMP` consults the outstanding-miss queue and the
serviced-load buffer before falling back on the wrapped pattern-table
predictor.  Section 4.2's best performer is "the local only predictor
that also employs timing information".
"""

from __future__ import annotations

from typing import Optional

from repro.hitmiss.base import HitMissPredictor
from repro.memory.mshr import OutstandingMissQueue, ServicedLoadBuffer


class TimingHMP(HitMissPredictor):
    """Timing overrides in front of a base table predictor.

    Parameters
    ----------
    base:
        The pattern-table HMP consulted when timing says nothing.
    mshr / serviced:
        The machine's outstanding-miss queue and serviced-line buffer
        (shared with the memory hierarchy, not copies).
    """

    def __init__(self, base: HitMissPredictor,
                 mshr: OutstandingMissQueue,
                 serviced: ServicedLoadBuffer) -> None:
        self.base = base
        self.mshr = mshr
        self.serviced = serviced
        self.timing_hits = 0  #: predictions decided by timing, not tables

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        if line is not None:
            if self.mshr.pending_until(line, now) is not None:
                # The line is in flight: a dynamic miss, guaranteed.
                self.timing_hits += 1
                return False
            if self.serviced.recently_serviced(line, now):
                # The line just arrived: almost certainly a hit.
                self.timing_hits += 1
                return True
        return self.base.predict_hit(pc, line, now)

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        self.base.update(pc, hit, line, now)

    def reset(self) -> None:
        self.base.reset()
        self.timing_hits = 0

    @property
    def storage_bits(self) -> int:
        # The MSHR already exists in the machine; the serviced buffer is
        # the only addition (line address + timestamp per entry).
        return self.base.storage_bits + self.serviced.n_entries * 48

    def __repr__(self) -> str:
        return f"TimingHMP(base={self.base!r})"
