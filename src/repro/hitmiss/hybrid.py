"""Hybrid hit-miss predictor with a majority-vote chooser.

Section 2.2: "The components are a local predictor (512 entries) and two
global predictors, a gshare (history length of 11 loads) and a gskew
(each table has 1K entries, and the hash functions operate on a history
of 20 loads).  The chooser mechanism between the three predictor
components is a simple majority vote (the total predictor size is less
than 2KBytes)."

Predicting a miss only when two of three components agree acts as a
confidence mechanism: Figure 10 shows it cutting AH-PM (false misses)
several-fold while sacrificing little AM-PM.

Substitution note: the defaults here use shorter global histories (5/8
instead of the paper's 11/20 loads).  On this repository's reduced
synthetic traces, 11/20-load global histories recur too rarely to
train, leaving the global components voting "hit" and the chooser
vetoing nearly every miss prediction; shorter histories restore the
intended behaviour.  Pass ``gshare_history=11, gskew_history=20`` to
reproduce the paper's exact geometry.
"""

from __future__ import annotations

from typing import Optional

from repro.hitmiss.base import HitMissPredictor
from repro.predictors.chooser import MajorityChooser
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor


class HybridHMP(HitMissPredictor):
    """local + gshare + gskew, combined by simple majority vote."""

    def __init__(self, local_entries: int = 512, local_history: int = 8,
                 gshare_history: int = 5, gskew_history: int = 8,
                 gskew_entries: int = 1024,
                 backend: Optional[str] = None) -> None:
        self._chooser = MajorityChooser([
            LocalPredictor(n_entries=local_entries,
                           history_bits=local_history, backend=backend),
            GSharePredictor(history_bits=gshare_history, backend=backend),
            GSkewPredictor(history_bits=gskew_history,
                           bank_entries=gskew_entries, backend=backend),
        ], backend=backend)
        self.backend = self._chooser.backend

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        return not self._chooser.predict(pc).outcome

    def miss_confidence(self, pc: int) -> float:
        return self._chooser.predict(pc).confidence

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        self._chooser.update(pc, not hit)

    def reset(self) -> None:
        self._chooser.reset()

    @property
    def storage_bits(self) -> int:
        return self._chooser.storage_bits

    def __repr__(self) -> str:
        return "HybridHMP(local+gshare+gskew, majority)"
