"""Local hit-miss predictor.

Section 2.2: "Instead of recording the taken/not-taken history of each
branch, we record the hit/miss history of each load ... a tagless table
of 2048 entries and a history length of 8 (~2KBytes in size)."
"""

from __future__ import annotations

from typing import Optional

from repro.hitmiss.base import HitMissPredictor
from repro.predictors.local import LocalPredictor


class LocalHMP(HitMissPredictor):
    """Two-level local predictor over per-load miss histories.

    The underlying binary predictor predicts the *miss* event; it is
    initialised cold, which means an unseen load predicts hit — exactly
    the "assume all loads hit" default of current processors.
    """

    def __init__(self, n_entries: int = 2048, history_bits: int = 8,
                 counter_bits: int = 2, backend: Optional[str] = None) -> None:
        self._miss_predictor = LocalPredictor(
            n_entries=n_entries, history_bits=history_bits,
            counter_bits=counter_bits, backend=backend)
        self.backend = self._miss_predictor.backend

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        return not self._miss_predictor.predict(pc).outcome

    def miss_confidence(self, pc: int) -> float:
        """Confidence of the underlying miss prediction (for choosers)."""
        return self._miss_predictor.predict(pc).confidence

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        self._miss_predictor.update(pc, not hit)

    def reset(self) -> None:
        self._miss_predictor.reset()

    @property
    def storage_bits(self) -> int:
        return self._miss_predictor.storage_bits

    def __repr__(self) -> str:
        return f"LocalHMP({self._miss_predictor!r})"
