"""Hit-miss adapter over any binary predictor of the *miss* event.

:class:`LocalHMP` hard-wires a two-level local predictor; this adapter
generalises the same inversion trick ("predict the rare event, answer
the common question") to every :class:`~repro.predictors.base.
BinaryPredictor` — which is how the unified construction API exposes
single-component gshare and gskew hit-miss predictors alongside the
paper's local and hybrid organisations.
"""

from __future__ import annotations

from typing import Optional

from repro.hitmiss.base import HitMissPredictor
from repro.predictors.base import BinaryPredictor


class BinaryHMP(HitMissPredictor):
    """``predict_hit`` = NOT ``component.predict`` of the miss event.

    The component is initialised cold, so an unseen load predicts hit —
    the "assume all loads hit" default of current processors.
    """

    def __init__(self, component: BinaryPredictor) -> None:
        self._miss_predictor = component
        self.backend = getattr(component, "backend", "reference")

    def predict_hit(self, pc: int, line: Optional[int] = None,
                    now: int = 0) -> bool:
        return not self._miss_predictor.predict(pc).outcome

    def miss_confidence(self, pc: int) -> float:
        """Confidence of the underlying miss prediction (for choosers)."""
        return self._miss_predictor.predict(pc).confidence

    def update(self, pc: int, hit: bool, line: Optional[int] = None,
               now: int = 0) -> None:
        self._miss_predictor.update(pc, not hit)

    def reset(self) -> None:
        self._miss_predictor.reset()

    @property
    def storage_bits(self) -> int:
        return self._miss_predictor.storage_bits

    def __repr__(self) -> str:
        return f"BinaryHMP({self._miss_predictor!r})"
