"""Data-cache hit-miss prediction (section 2.2).

A hit-miss predictor (HMP) makes a per-load binary prediction of L1
hit/miss so the scheduler can dispatch dependent instructions "to
execute at the exact time the data is retrieved".  The paper adapts
branch predictors to the task:

* :class:`LocalHMP` — the 2048-entry, 8-bit-history local predictor
  (~2 KB) whose per-load hit/miss history replaces taken/not-taken.
* :class:`HybridHMP` — 512-entry local + gshare (11-load history) +
  gskew (20-load history, three 1K tables) with a majority-vote chooser
  (< 2 KB total); trades a little AM-PM for far fewer AH-PM.
* :class:`TimingHMP` — adds the timing refinement: a load to a line
  still in the outstanding-miss queue is a (dynamic) miss; a load to a
  just-serviced line is a hit, overriding the pattern tables.
* :class:`AlwaysHitHMP` / :class:`OracleHMP` — today's baseline and
  the perfect predictor bounding the technique's potential.
"""

from repro.hitmiss.base import HitMissPredictor, HitMissStats
from repro.hitmiss.local import LocalHMP
from repro.hitmiss.hybrid import HybridHMP
from repro.hitmiss.timing import TimingHMP
from repro.hitmiss.oracle import AlwaysHitHMP, AlwaysMissHMP, OracleHMP
from repro.hitmiss.address_probe import AddressProbeHMP
from repro.hitmiss.multilevel import MultiLevelHMP, MemoryLevel, LevelStats

__all__ = [
    "HitMissPredictor",
    "HitMissStats",
    "LocalHMP",
    "HybridHMP",
    "TimingHMP",
    "AlwaysHitHMP",
    "AlwaysMissHMP",
    "OracleHMP",
    "AddressProbeHMP",
    "MultiLevelHMP",
    "MemoryLevel",
    "LevelStats",
]
