#!/usr/bin/env python
"""Multi-banked cache study (section 2.3 / 4.3).

1. evaluates the four Figure 12 bank predictors on a load stream;
2. plots (as text) the paper's metric against the misprediction
   penalty, showing the accuracy/rate crossover;
3. replays the stream through the sliced-pipeline simulator under
   different duplication policies;
4. compares the four memory-pipeline organisations of Figure 4.

Run:  python examples/banked_cache_study.py
"""

from repro.bank import (
    AddressBankPredictor,
    DuplicationPolicy,
    SlicedPipeSimulator,
    make_predictor_a,
    make_predictor_b,
    make_predictor_c,
    metric,
)
from repro.bank.base import BankStats
from repro.experiments.bank_metric import evaluate, _load_stream
from repro.experiments.harness import ExperimentSettings
from repro.memory.pipelines import ALL_PIPELINES

SETTINGS = ExperimentSettings(n_uops=15_000)

PREDICTORS = (("A (local+gshare+gskew)", make_predictor_a),
              ("B (local+gshare+bimodal)", make_predictor_b),
              ("C (local+2*gshare+gskew)", make_predictor_c),
              ("Addr (stride predictor)", AddressBankPredictor))


def predictor_profiles():
    print("=" * 70)
    print("1. Bank predictor profiles (SpecInt95 'gcc' + 'compress')")
    print("=" * 70)
    streams = [_load_stream(n, SETTINGS.n_uops)
               for n in ("gcc", "compress")]
    profiles = {}
    print(f"\n{'predictor':26s} {'P':>6s} {'accuracy':>9s} {'R':>8s}")
    for label, factory in PREDICTORS:
        total = BankStats()
        for stream in streams:
            total.merge(evaluate(factory(), stream))
        profiles[label] = total
        ratio = "inf" if total.ratio == float("inf") \
            else f"{total.ratio:.1f}"
        print(f"{label:26s} {total.prediction_rate:6.2f} "
              f"{total.accuracy:9.3f} {ratio:>8s}")
    return profiles


def metric_curves(profiles):
    print()
    print("=" * 70)
    print("2. Metric vs. misprediction penalty (1.0 = ideal dual port)")
    print("=" * 70)
    penalties = range(0, 9, 2)
    header = f"\n{'predictor':26s}" + "".join(f" pen={p:<4d}"
                                              for p in penalties)
    print(header)
    for label, stats in profiles.items():
        ratio = min(stats.ratio, 1e9)
        row = f"{label:26s}"
        for p in penalties:
            row += f" {metric(stats.prediction_rate, ratio, p, approximate=True):8.3f}"
        print(row)
    print("\nreading: intercept = prediction rate; slope = accuracy.")
    print("High penalties favour the accurate address predictor.")


def sliced_pipe():
    print()
    print("=" * 70)
    print("3. Sliced-pipeline replay under duplication policies")
    print("=" * 70)
    stream = list(_load_stream("gcc", SETTINGS.n_uops))
    policies = {
        "always trust prediction": DuplicationPolicy(
            confidence_floor=0.0, duplicate_when_uncontended=False),
        "duplicate low-confidence": DuplicationPolicy(
            confidence_floor=0.8, duplicate_when_uncontended=False),
        "also duplicate when idle": DuplicationPolicy(
            confidence_floor=0.8, duplicate_when_uncontended=True),
    }
    print()
    for label, policy in policies.items():
        sim = SlicedPipeSimulator(AddressBankPredictor(), policy,
                                  contention_rate=0.6,
                                  mispredict_penalty=4.0)
        result = sim.run(stream)
        print(f"  {label:26s} metric {result.metric:6.3f}   "
              f"duplicated {result.duplicated:5d}   "
              f"flushes {result.mispredicted:4d}")


def pipeline_comparison():
    print()
    print("=" * 70)
    print("4. Figure 4 pipeline organisations (expected load time)")
    print("=" * 70)
    print(f"\n{'organisation':24s} {'no conflicts':>13s} "
          f"{'20% conflicts':>14s} {'5% mispredict':>14s}")
    for model in ALL_PIPELINES:
        clean = model.expected_load_time(5, 0.0)
        conflicted = model.expected_load_time(5, 0.2)
        mispredicted = model.expected_load_time(5, 0.0,
                                                mispredict_rate=0.05)
        print(f"{model.kind.value:24s} {clean:13.2f} {conflicted:14.2f} "
              f"{mispredicted:14.2f}")
    print("\nthe sliced pipe matches the ideal latency and dodges "
          "conflicts,\npaying only for bank mispredictions.")


def empirical_pipelines():
    print()
    print("=" * 70)
    print("5. Empirical drain of the same load stream (Figure 4, measured)")
    print("=" * 70)
    from repro.bank.pipeline_sim import compare_pipelines
    stream = list(_load_stream("gcc", SETTINGS.n_uops))
    results = compare_pipelines(stream, AddressBankPredictor)
    print(f"\n{'organisation':24s} {'loads/cycle':>12s} {'avg latency':>12s}"
          f" {'conflicts':>10s} {'flushes':>8s} {'dup':>6s}")
    for kind, r in results.items():
        print(f"{kind:24s} {r.loads_per_cycle:12.2f} "
              f"{r.average_latency:12.2f} {r.conflicts:10d} "
              f"{r.flushes:8d} {r.duplicated:6d}")
    print("\nthe sliced pipe keeps the ideal latency; its throughput "
          "tracks the\npredictor's rate (duplications occupy both pipes "
          "— the paper's own caveat\nabout low-confidence loads wasting "
          "scheduling slots).")


if __name__ == "__main__":
    profiles = predictor_profiles()
    metric_curves(profiles)
    sliced_pipe()
    pipeline_comparison()
    empirical_pipelines()
