#!/usr/bin/env python
"""Hit-miss prediction as a thread-switch governor (section 2.2).

The paper: "the prediction may be used to govern a thread switch if a
load is predicted to miss the L2 cache, and suffer the large latency of
accessing main memory."  This study runs two memory-bound threads on a
coarse-grained multithreaded core under four switch policies and shows
the prediction's value: switching at *schedule* time instead of waiting
for the L2 lookup to reveal the miss.

Run:  python examples/multithreading_study.py
"""

from repro.hitmiss.multilevel import MemoryLevel, MultiLevelHMP
from repro.smt import CoarseGrainedMT, SwitchPolicy
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed

N_UOPS = 10_000
THREADS = ("tpcc", "jack")  # memory-bound database + pointer-chasing


def main() -> None:
    traces = [build_trace(profile_for(name), n_uops=N_UOPS,
                          seed=trace_seed(name), name=name)
              for name in THREADS]
    print(f"threads: {', '.join(THREADS)} ({N_UOPS} uops each)\n")

    results = {}
    print(f"{'policy':11s} {'cycles':>8s} {'throughput':>11s} "
          f"{'switches':>9s} {'wasted':>7s} {'stall':>7s}")
    for policy in (SwitchPolicy.NONE, SwitchPolicy.REACTIVE,
                   SwitchPolicy.PREDICTED, SwitchPolicy.ORACLE):
        result = CoarseGrainedMT(policy=policy).run(traces)
        results[policy] = result
        print(f"{policy.value:11s} {result.cycles:8d} "
              f"{result.throughput:11.2f} {result.switches:9d} "
              f"{result.wasted_switches:7d} {result.stall_cycles:7d}")

    from repro.smt import FineGrainedMT
    fine = FineGrainedMT().run(traces)
    print(f"{'fine-grained':11s} {fine.cycles:8d} "
          f"{fine.throughput:11.2f} {fine.switches:9d} "
          f"{fine.wasted_switches:7d} {fine.stall_cycles:7d}")

    none = results[SwitchPolicy.NONE]
    predicted = results[SwitchPolicy.PREDICTED]
    reactive = results[SwitchPolicy.REACTIVE]
    print(f"\nswitch-on-miss throughput gain : "
          f"{predicted.speedup_over(none) - 1:+.1%}")
    print(f"prediction vs. reactive switch : "
          f"{predicted.speedup_over(reactive) - 1:+.1%} "
          f"(switching at schedule time instead of after the L2 lookup)")

    # How predictable are the levels themselves?
    hmp = MultiLevelHMP()
    mt = CoarseGrainedMT(policy=SwitchPolicy.PREDICTED,
                         hmp_factory=lambda: hmp)
    mt.run([build_trace(profile_for(name), n_uops=N_UOPS,
                        seed=trace_seed(name), name=name)
            for name in THREADS])
    print(f"\nlevel-prediction accuracy      : {hmp.stats.accuracy:.1%}")
    print(f"memory-level loads caught      : "
          f"{hmp.stats.caught(MemoryLevel.MEMORY):.1%}")


if __name__ == "__main__":
    main()
