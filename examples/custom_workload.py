#!/usr/bin/env python
"""Building your own workload and reading a performance report.

The calibrated suite profiles cover the paper's trace groups; this
example shows the extensibility path: compose scenes (including the
opt-in extras) into a custom workload, run it under several ordering
schemes, and read the engine's performance report.

The workload modelled here is a toy database page-buffer: a
producer/consumer queue (collision dial), a 2-D matrix scanned both
ways (bank behaviour), and call-heavy control logic.

Run:  python examples/custom_workload.py
"""

from repro.engine import Machine, make_scheme
from repro.engine.report import compare_report, performance_report
from repro.trace.builder import (
    BranchScene,
    CallScene,
    WeightedScene,
    build_from_scenes,
)
from repro.trace.extra_scenes import Matrix2DScene, ProducerConsumerScene
from repro.trace.streams import StrideStream


def build_workload(n_uops=15_000, seed=7):
    scenes = [
        # Control logic: three call sites with argument reloads.
        WeightedScene(CallScene(pc_base=0x40_0000, n_args=2, gap=6,
                                frame_slot=0), 1.0),
        WeightedScene(CallScene(pc_base=0x41_0000, n_args=3, gap=24,
                                frame_slot=1), 1.0),
        # The page buffer: consumer trails the producer by 2 slots.
        WeightedScene(ProducerConsumerScene(pc_base=0x50_0000,
                                            base=0x1000_0000,
                                            n_slots=32, lag=2,
                                            items_per_visit=3), 1.5),
        # The table scan: row and column walks over a 64x64 matrix.
        WeightedScene(Matrix2DScene(pc_base=0x60_0000, base=0x2000_0000,
                                    rows=64, cols=64), 1.5),
        WeightedScene(BranchScene(pc_base=0x70_0000,
                                  scratch=StrideStream(0x3000_0000, 64,
                                                       2048)), 1.0),
    ]
    return build_from_scenes("pagebuf", scenes, n_uops=n_uops, seed=seed)


def main() -> None:
    trace = build_workload()
    print(f"built custom workload: {len(trace)} uops\n")

    results = []
    for scheme_name in ("traditional", "inclusive", "perfect"):
        machine = Machine(scheme=make_scheme(scheme_name))
        machine.collect_stall_breakdown = True
        machine.collect_occupancy = True
        results.append(machine.run(trace))

    print(compare_report(results))
    print()
    print(performance_report(results[1], baseline=results[0]))


if __name__ == "__main__":
    main()
