#!/usr/bin/env python
"""Observability tour: event logs, metrics snapshots and run diffs.

Runs one workload under two memory-ordering schemes with the full
observability stack attached, leaving behind an artifact directory per
run (event log, Chrome trace, metrics snapshot, run manifest), then
diffs the two runs the same way ``python -m repro.obs diff`` would.

Run:  python examples/observability_demo.py
"""

import tempfile
from pathlib import Path

from repro import Machine, build_trace, make_scheme, profile_for
from repro.obs import MetricsRegistry, observed_run, read_jsonl
from repro.obs.render import render_diff


def main() -> None:
    trace = build_trace(profile_for("gcc"), n_uops=8_000, seed=1,
                        name="gcc")
    out = Path(tempfile.mkdtemp(prefix="repro_obs_"))

    # 1. One call per run: simulate with every sink attached and leave
    #    a self-describing artifact directory behind.
    manifests = {}
    for scheme in ("traditional", "inclusive"):
        machine = Machine(scheme=make_scheme(scheme))
        result, manifest = observed_run(machine, trace,
                                        str(out / scheme))
        manifests[scheme] = manifest
        print(f"{scheme:12s} {result.cycles:6d} cycles   "
              f"{manifest.uops_per_sec:10,.0f} uops/sec   "
              f"artifacts in {out / scheme}")

    # 2. The event log is one JSON object per pipeline event; counts
    #    cross-check the SimResult counters exactly.
    events = read_jsonl(str(out / "inclusive" / "events.jsonl"))
    kinds = {}
    for record in events:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    print(f"\ninclusive run emitted {len(events)} events:")
    for kind in ("retire", "squash", "collision", "miss"):
        print(f"  {kind:10s} {kinds.get(kind, 0)}")

    # 3. Metric snapshots diff cleanly: what did the predictor buy?
    print("\ntraditional vs inclusive (changed metrics only):")
    delta = MetricsRegistry.diff(manifests["traditional"].metrics,
                                 manifests["inclusive"].metrics)
    interesting = {path: pair for path, pair in delta.items()
                   if path.startswith("run.")
                   and not path.startswith("run.loads.classes")}
    print(render_diff({p: a for p, (a, _) in interesting.items()},
                      {p: b for p, (_, b) in interesting.items()},
                      label_a="traditional", label_b="inclusive",
                      max_rows=15))

    print(f"\nopen {out / 'inclusive' / 'trace.json'} in "
          "https://ui.perfetto.dev to see the pipeline timeline.")


if __name__ == "__main__":
    main()
