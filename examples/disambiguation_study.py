#!/usr/bin/env python
"""Memory disambiguation study: schemes, CHT organisations and sizes.

Reproduces the section 4.1 methodology on a reduced budget:

1. the six memory ordering schemes (Figure 7's axis) on two traces;
2. the four CHT organisations at several sizes (Figure 9's axis),
   evaluated on a recorded ground-truth stream;
3. the effect of cyclic clearing on a sticky table.

Run:  python examples/disambiguation_study.py
"""

from repro import Machine, make_scheme
from repro.cht import (
    CombinedCHT,
    FullCHT,
    PeriodicClearing,
    TaggedOnlyCHT,
    TaglessCHT,
)
from repro.engine.ordering import SCHEME_NAMES
from repro.experiments.cht_accuracy import collision_events, replay
from repro.experiments.harness import ExperimentSettings, get_trace

SETTINGS = ExperimentSettings(n_uops=15_000, traces_per_group=2)


def scheme_comparison() -> None:
    print("=" * 64)
    print("1. Memory ordering schemes (speedup over Traditional)")
    print("=" * 64)
    for name in ("cd", "gcc"):
        trace = get_trace(name, SETTINGS.n_uops)
        base_machine = Machine(scheme=make_scheme("traditional"))
        base_machine.collect_stall_breakdown = True
        baseline = base_machine.run(trace)
        print(f"\n{name}: baseline {baseline.cycles} cycles, "
              f"{baseline.collision_penalties} collisions")
        for scheme_name in SCHEME_NAMES[1:]:
            machine = Machine(scheme=make_scheme(scheme_name))
            machine.collect_stall_breakdown = True
            result = machine.run(trace)
            ordering = result.stall_breakdown.get("ordering", 0)
            print(f"  {scheme_name:13s} "
                  f"speedup {result.speedup_over(baseline):6.3f}   "
                  f"collisions {result.collision_penalties:4d}   "
                  f"ordering-stall uop-cycles {ordering:6d}")


def cht_organisations() -> None:
    print()
    print("=" * 64)
    print("2. CHT organisations (fractions of conflicting loads)")
    print("=" * 64)
    streams = collision_events(["cd", "ex"], SETTINGS)
    configs = [
        ("full 512", lambda: FullCHT(n_entries=512, ways=4)),
        ("full 2K", lambda: FullCHT(n_entries=2048, ways=4)),
        ("tagless 4K", lambda: TaglessCHT(n_entries=4096)),
        ("tagged-only 2K", lambda: TaggedOnlyCHT(n_entries=2048)),
        ("combined 2K+4K", lambda: CombinedCHT(tagged_entries=2048,
                                               tagless_entries=4096)),
    ]
    print(f"\n{'organisation':16s} {'AC-PC':>7s} {'AC-PNC':>7s} "
          f"{'ANC-PC':>7s} {'ANC-PNC':>8s}  (storage)")
    for label, factory in configs:
        cht = factory()
        totals = {"AC-PC": 0, "AC-PNC": 0, "ANC-PC": 0, "ANC-PNC": 0}
        conflicting = 0
        for _, events in streams:
            acc = replay(events, factory())
            conflicting += acc.conflicting
            totals["AC-PC"] += acc.ac_pc
            totals["AC-PNC"] += acc.ac_pnc
            totals["ANC-PC"] += acc.anc_pc
            totals["ANC-PNC"] += acc.anc_pnc
        fracs = {k: v / conflicting for k, v in totals.items()}
        print(f"{label:16s} {fracs['AC-PC']:7.3f} {fracs['AC-PNC']:7.3f} "
              f"{fracs['ANC-PC']:7.3f} {fracs['ANC-PNC']:8.3f}  "
              f"({cht.storage_bits // 8} bytes)")
    print("\nreading: AC-PNC = costly (re-execution), "
          "ANC-PC = lost opportunity")


def cyclic_clearing() -> None:
    print()
    print("=" * 64)
    print("3. Cyclic clearing of a sticky table ([Chry98])")
    print("=" * 64)
    streams = collision_events(["cd", "ex"], SETTINGS)
    for label, factory in (
            ("sticky, never cleared",
             lambda: TaggedOnlyCHT(n_entries=2048)),
            ("cleared every 600 loads",
             lambda: PeriodicClearing(TaggedOnlyCHT(n_entries=2048),
                                      interval=600))):
        anc_pc = ac_pnc = conflicting = 0
        for _, events in streams:
            acc = replay(events, factory())
            anc_pc += acc.anc_pc
            ac_pnc += acc.ac_pnc
            conflicting += acc.conflicting
        print(f"  {label:26s} ANC-PC {anc_pc / conflicting:6.3f}   "
              f"AC-PNC {ac_pnc / conflicting:6.3f}")


def prior_art() -> None:
    print()
    print("=" * 64)
    print("4. Prior art: store barrier [Hess95] and store sets [Chry98]")
    print("=" * 64)
    trace = get_trace("cd", SETTINGS.n_uops)
    baseline = Machine(scheme=make_scheme("traditional")).run(trace)
    print(f"\n{'mechanism':12s} {'speedup':>8s} {'storage':>9s}")
    for name in ("barrier", "storesets", "inclusive", "exclusive"):
        scheme = make_scheme(name)
        result = Machine(scheme=scheme).run(trace)
        if name == "storesets":
            storage = scheme.predictor.storage_bits
        elif name == "barrier":
            storage = scheme.cache.storage_bits
        else:
            storage = scheme.cht.storage_bits
        print(f"{name:12s} {result.speedup_over(baseline):8.3f} "
              f"{storage // 8:7d} B")
    print("\nthe CHT's pitch: store-set-class speedups at a fraction "
          "of the storage")


if __name__ == "__main__":
    scheme_comparison()
    cht_organisations()
    cyclic_clearing()
    prior_art()
