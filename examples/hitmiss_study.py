#!/usr/bin/env python
"""Hit-miss prediction study (section 2.2 / 4.2).

1. statistical accuracy of the local and hybrid predictors per trace
   group, replaying a recorded outcome stream (Figure 10 methodology);
2. the timing refinement: how often the MSHR / serviced-line buffer
   decides the prediction before the pattern tables are consulted;
3. performance effect on the Figure 11 machine (perfect disambiguation,
   4 integer / 2 memory units).

Run:  python examples/hitmiss_study.py
"""

from repro import Machine, make_scheme
from repro.common.config import BASELINE_MACHINE
from repro.experiments.harness import ExperimentSettings, get_trace
from repro.experiments.hitmiss_stats import hitmiss_events, replay
from repro.hitmiss import HybridHMP, LocalHMP, TimingHMP
from repro.memory.hierarchy import MemoryHierarchy

SETTINGS = ExperimentSettings(n_uops=15_000, traces_per_group=2)


def statistical_accuracy() -> None:
    print("=" * 66)
    print("1. Statistical accuracy (replayed outcome streams)")
    print("=" * 66)
    groups = {"SpecFP": ["applu", "apsi"], "SysmarkNT": ["cd", "ex"],
              "SpecINT": ["compress", "gcc"]}
    print(f"\n{'group':10s} {'predictor':9s} {'misses':>7s} "
          f"{'caught':>7s} {'false':>7s} {'coverage':>9s}")
    for group, names in groups.items():
        streams = hitmiss_events(names, SETTINGS)
        for label, factory in (("local", LocalHMP), ("hybrid", HybridHMP)):
            from repro.hitmiss.base import HitMissStats
            total = HitMissStats()
            for _, events in streams:
                total.merge(replay(events, factory()))
            print(f"{group:10s} {label:9s} {total.miss_rate:7.3f} "
                  f"{total.am_pm_fraction:7.3f} "
                  f"{total.ah_pm_fraction:7.3f} "
                  f"{total.miss_coverage:9.1%}")


def timing_information() -> None:
    print()
    print("=" * 66)
    print("2. Timing information (dynamic misses / serviced lines)")
    print("=" * 66)
    trace = get_trace("cd", SETTINGS.n_uops)
    hierarchy = MemoryHierarchy(BASELINE_MACHINE.memory)
    hmp = TimingHMP(LocalHMP(), mshr=hierarchy.mshr,
                    serviced=hierarchy.serviced)
    result = Machine(scheme=make_scheme("perfect"), hmp=hmp,
                     hierarchy=hierarchy).run(trace)
    print(f"\n  loads executed          : {result.retired_loads}")
    print(f"  decided by timing alone : {hmp.timing_hits} "
          f"({hmp.timing_hits / result.retired_loads:.1%})")
    print(f"  hit-miss accuracy       : {result.hitmiss.accuracy:.1%}")


def performance() -> None:
    print()
    print("=" * 66)
    print("3. Speedup on the Figure 11 machine")
    print("=" * 66)
    config = BASELINE_MACHINE.with_units(4, 2)
    trace = get_trace("cd", SETTINGS.n_uops)

    def machine(hmp_factory=None):
        hierarchy = MemoryHierarchy(config.memory)
        hmp = hmp_factory(hierarchy) if hmp_factory else None
        return Machine(config=config, scheme=make_scheme("perfect"),
                       hmp=hmp, hierarchy=hierarchy)

    baseline = machine().run(trace)
    print(f"\n  always-predict-hit baseline: {baseline.cycles} cycles, "
          f"{baseline.squashed_issues} squashed issues")
    candidates = {
        "local": lambda h: LocalHMP(),
        "hybrid": lambda h: HybridHMP(),
        "local+timing": lambda h: TimingHMP(LocalHMP(), h.mshr,
                                            h.serviced),
    }
    for label, factory in candidates.items():
        result = machine(factory).run(trace)
        print(f"  {label:13s}: {result.cycles} cycles "
              f"(speedup {result.speedup_over(baseline):.3f}, "
              f"squashes {result.squashed_issues})")


if __name__ == "__main__":
    statistical_accuracy()
    timing_information()
    performance()
