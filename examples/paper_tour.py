#!/usr/bin/env python
"""A guided tour of the paper, figure by figure, on a small budget.

Runs a miniature version of every evaluation figure in order, printing
the paper's claim next to the measurement.  Expect ~2 minutes; for the
full-budget numbers see EXPERIMENTS.md or
``python -m repro.experiments all``.

Run:  python examples/paper_tour.py
"""

import time

from repro.experiments import EXPERIMENTS
from repro.experiments.__main__ import RENDERERS
from repro.experiments.harness import ExperimentSettings

SETTINGS = ExperimentSettings(n_uops=10_000, traces_per_group=1)

CLAIMS = {
    "fig5": "~10% of loads collide, ~60% are advanceable (ANC), "
            "~30% have no conflict;\n60-70% can benefit from a "
            "collision predictor.",
    "fig6": "growing the scheduling window 8->128 steadily raises the "
            "colliding share\nand shrinks the no-conflict share.",
    "fig7": "speedup over Traditional: postponing < opportunistic < "
            "inclusive <\nexclusive < perfect (6/9/14/16/17% on their "
            "machine).",
    "fig8": "wider machines gain more from better memory ordering.",
    "fig9": "Full CHT balances; sticky tag-only tables almost never "
            "advance a\ncolliding load (AC-PNC ~0.2%) at the price of "
            "lost opportunities;\ncombined is safest.",
    "fig10": "the local HMP catches 34-85% of misses (NT worst, FP "
             "best); the\nchooser slashes false misses.",
    "fig11": "perfect hit-miss prediction is worth ~6%; "
             "local+timing is the best\nrealisable predictor.",
    "fig12": "bank predictors trade prediction rate for accuracy; the "
             "address\npredictor's flat curve wins at high penalty.",
    "ext-penalty": "(extension) prediction's edge over blind "
                   "speculation grows with\nthe collision penalty.",
    "ext-prior-art": "(extension) the CHT nears store-set speedups at "
                     "a fraction of\nthe storage; the store barrier "
                     "trails.",
    "ext-smt": "(extension, section 2.2) predicted thread switching "
               "beats reactive\nand tracks the oracle.",
    "ext-bank-perf": "(extension) bank-aware load scheduling removes "
                     "most same-cycle\nbank conflicts.",
}


def main() -> None:
    order = [f"fig{i}" for i in range(5, 13)] + [
        "ext-penalty", "ext-prior-art", "ext-smt", "ext-bank-perf"]
    for name in order:
        print("=" * 72)
        print(f"{name}: {CLAIMS[name]}")
        print("=" * 72)
        start = time.time()
        data = EXPERIMENTS[name](SETTINGS)
        print(RENDERERS[name](data))
        print(f"[{time.time() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
