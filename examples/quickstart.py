#!/usr/bin/env python
"""Quickstart: speculative memory disambiguation in five minutes.

Builds a synthetic SysmarkNT-like trace, runs it through the baseline
(Traditional, P6-style) memory ordering and through the paper's
inclusive collision predictor, and reports what changed.

Run:  python examples/quickstart.py
"""

from repro import (
    Machine,
    build_trace,
    make_scheme,
    profile_for,
    summarize,
)
from repro.common.types import LoadCollisionClass


def main() -> None:
    # 1. A workload. 'cd' is one of the paper's SysmarkNT traces; the
    #    profile synthesises an equivalent instruction stream.
    trace = build_trace(profile_for("cd"), n_uops=20_000, seed=1,
                        name="cd")
    print(f"trace: {summarize(trace)}")

    # 2. The baseline: loads wait for every older store address.
    baseline = Machine(scheme=make_scheme("traditional")).run(trace)
    print(f"\ntraditional ordering: {baseline.cycles} cycles "
          f"(IPC {baseline.ipc:.2f})")
    print(f"  loads wrongly ordered (collision penalty): "
          f"{baseline.collision_penalties}")

    # 3. The load classification of Figure 1: how many loads could a
    #    collision predictor help?
    print("\nload classification (Figure 1 taxonomy):")
    print(f"  no conflict        : {baseline.frac_not_conflicting:6.1%}")
    print(f"  conflicting, ANC   : {baseline.frac_anc:6.1%}"
          "   <- advanceable with a predictor")
    print(f"  actually colliding : "
          f"{baseline.frac_actually_colliding:6.1%}"
          "   <- must be delayed")

    # 4. The paper's technique: a Collision History Table predicts the
    #    colliding loads; everything else bypasses the stores.
    inclusive = Machine(scheme=make_scheme("inclusive")).run(trace)
    speedup = inclusive.speedup_over(baseline)
    print(f"\ninclusive collision predictor: {inclusive.cycles} cycles "
          f"({(speedup - 1) * 100:+.1f}% speedup)")

    # 5. The headroom: perfect disambiguation.
    perfect = Machine(scheme=make_scheme("perfect")).run(trace)
    print(f"perfect disambiguation:        {perfect.cycles} cycles "
          f"({(perfect.speedup_over(baseline) - 1) * 100:+.1f}% speedup)")

    captured = (speedup - 1) / (perfect.speedup_over(baseline) - 1)
    print(f"\nthe 1-bit-per-load predictor captured {captured:.0%} "
          f"of the oracle's gain")

    # 6. Zoom in: a pipeline diagram of one colliding store/load pair.
    show_pipeline_diagram()


def show_pipeline_diagram() -> None:
    """Render the lifecycle of a colliding load (repro.engine.pipeview)."""
    from repro.common.types import MemAccess, Uop, UopClass
    from repro.engine import render_timeline
    from repro.trace.trace import Trace

    uops = [Uop(seq=0, pc=0x100, uclass=UopClass.INT, srcs=(15,), dst=0)]
    for i in range(1, 5):  # a chain computing the store's data
        uops.append(Uop(seq=i, pc=0x100 + 4 * i, uclass=UopClass.INT,
                        srcs=(0,), dst=0))
    uops.append(Uop(seq=5, pc=0x200, uclass=UopClass.STA, srcs=(15,),
                    mem=MemAccess(0x4000)))
    uops.append(Uop(seq=6, pc=0x201, uclass=UopClass.STD, srcs=(0,),
                    sta_seq=5))
    uops.append(Uop(seq=7, pc=0x300, uclass=UopClass.LOAD, srcs=(15,),
                    dst=7, mem=MemAccess(0x4000)))
    uops.append(Uop(seq=8, pc=0x304, uclass=UopClass.INT, srcs=(7,),
                    dst=6))
    machine = Machine(scheme=make_scheme("traditional"))
    machine.record_timeline = True
    result = machine.run(Trace(name="pair", uops=uops))
    print("\na colliding store/load pair under Traditional ordering")
    print("(! = collided load, s = squashed dependent):\n")
    print(render_timeline(result.timeline))


if __name__ == "__main__":
    main()
