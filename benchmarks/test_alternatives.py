"""Benchmark: CHT vs. the prior-art mechanisms it claims to beat.

The paper positions the CHT as "in a sense similar to [Hess95] yet more
refined, since it deals with specific loads, and to [Chry98] but much
more cost effective".  This benchmark runs the store barrier, store
sets, and the CHT schemes on the same traces and compares speedup *and*
storage budget.
"""

from benchmarks.conftest import run_once
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.experiments.harness import get_trace

SCHEMES = ("barrier", "storesets", "inclusive", "exclusive", "perfect")


def test_prior_art_comparison(benchmark, bench_settings):
    def run():
        out = {}
        for name in ("cd", "gcc"):
            trace = get_trace(name, bench_settings.n_uops)
            baseline = Machine(
                scheme=make_scheme("traditional")).run(trace)
            speedups = {}
            storage = {}
            for scheme_name in SCHEMES:
                scheme = make_scheme(scheme_name)
                result = Machine(scheme=scheme).run(trace)
                speedups[scheme_name] = result.speedup_over(baseline)
                if scheme_name == "storesets":
                    storage[scheme_name] = \
                        scheme.predictor.storage_bits
                elif scheme_name == "barrier":
                    storage[scheme_name] = scheme.cache.storage_bits
                elif scheme.uses_cht:
                    storage[scheme_name] = scheme.cht.storage_bits
                else:
                    storage[scheme_name] = 0
            out[name] = (speedups, storage)
        return out

    results = run_once(benchmark, run)
    print()
    for name, (speedups, storage) in results.items():
        print(f"{name}:")
        for scheme in SCHEMES:
            bits = storage[scheme]
            print(f"  {scheme:10s} speedup {speedups[scheme]:6.3f}   "
                  f"storage {bits // 8:6d} bytes")

    for name, (speedups, storage) in results.items():
        # The refinement ladder of the related-work section: the barrier
        # (coarse fences) trails the load-specific predictors.
        assert speedups["barrier"] <= speedups["storesets"] + 0.02, name
        assert speedups["inclusive"] > 1.0, name
        # Cost-effectiveness: the CHT reaches comparable speedup with a
        # smaller table budget than store sets.
        assert storage["inclusive"] < storage["storesets"], name
        assert speedups["inclusive"] > \
               0.9 * speedups["storesets"], name
        # Everything stays under the oracle.
        for scheme in ("barrier", "storesets", "inclusive", "exclusive"):
            assert speedups[scheme] <= speedups["perfect"] + 0.01, \
                (name, scheme)
