"""Benchmark: regenerate Figure 5 — load scheduling classification.

Paper series (32-entry window): ~10 % of loads actually collide, ~60 %
are conflicting-but-not-colliding, ~30 % have no ordering conflict —
"between 60 %-70 % of the loads can benefit from a collision predictor".
"""

from benchmarks.conftest import run_once
from repro.experiments.classification import render_fig5, run_fig5


def test_fig5_classification(benchmark, bench_settings):
    data = run_once(benchmark, run_fig5, bench_settings)
    print()
    print(render_fig5(data))

    for group, mix in data["groups"].items():
        # Fractions are a valid partition.
        assert abs(mix["ac"] + mix["anc"] + mix["no_conflict"] - 1.0) < 1e-9
        # AC is the smallest class everywhere (the paper's ~10 %).
        assert mix["ac"] < 0.35, group
    nt = data["groups"]["SysmarkNT"]
    # The headline: a majority of loads benefit from a collision predictor.
    assert nt["ac"] + nt["anc"] > 0.40
