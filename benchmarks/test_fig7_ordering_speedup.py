"""Benchmark: regenerate Figure 7 — speedup vs. ordering scheme.

Paper series (SysmarkNT, speedup over Traditional): Postponing ~6 % <
Opportunistic ~9 % < Inclusive ~14 % < Exclusive ~16 % < Perfect ~17 %.
The reproduction preserves the ordering; the absolute gap between the
baseline and Perfect is machine-dependent (larger here, since the
synthetic traces are denser in conflicting loads).
"""

from benchmarks.conftest import run_once
from repro.experiments.ordering_speedup import render_fig7, run_fig7


def test_fig7_ordering_speedup(benchmark, bench_settings):
    data = run_once(benchmark, run_fig7, bench_settings)
    print()
    print(render_fig7(data))

    avg = data["average"]
    # The paper's scheme ordering (small tolerances absorb trace noise).
    assert avg["postponing"] >= 0.98
    assert avg["opportunistic"] > avg["postponing"]
    assert avg["inclusive"] > avg["postponing"]
    assert avg["exclusive"] >= avg["inclusive"] - 0.01
    assert avg["perfect"] >= avg["exclusive"] - 0.005
    # The predictor schemes capture most of the perfect gain.
    perfect_gain = avg["perfect"] - 1.0
    exclusive_gain = avg["exclusive"] - 1.0
    assert exclusive_gain > 0.5 * perfect_gain
