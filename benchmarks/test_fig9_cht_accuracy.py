"""Benchmark: regenerate Figure 9 — CHT accuracy vs. organisation/size.

Paper series (fractions of conflicting loads):

* the sticky tagged-only table minimises AC-PNC but accumulates ANC-PC;
* the Full CHT (counters) limits ANC-PC by unlearning;
* the Combined organisation is the safest (lowest AC-PNC);
* accuracy improves (AC-PNC falls) as tables grow.
"""

from benchmarks.conftest import run_once
from repro.experiments.cht_accuracy import render_fig9, run_fig9


def test_fig9_cht_accuracy(benchmark, bench_settings):
    data = run_once(benchmark, run_fig9, bench_settings)
    print()
    print(render_fig9(data))

    rows = {(r["kind"], r["entries"]): r for r in data["rows"]}

    # Sticky tables trade ANC-PC for AC-PNC safety at equal size.
    assert rows[("tagged-only", 2048)]["AC-PNC"] <= \
           rows[("full", 2048)]["AC-PNC"] + 0.005
    assert rows[("tagged-only", 2048)]["ANC-PC"] >= \
           rows[("full", 2048)]["ANC-PC"] - 0.005

    # Combined is at least as safe as tagged-only.
    assert rows[("combined", 2048)]["AC-PNC"] <= \
           rows[("tagged-only", 2048)]["AC-PNC"] + 0.005

    # Capacity helps: the smallest full table mispredicts more AC loads
    # than the largest.
    assert rows[("full", 128)]["AC-PNC"] >= rows[("full", 2048)]["AC-PNC"]

    # Every row is a valid partition of conflicting loads.
    for row in data["rows"]:
        total = sum(row[c] for c in ("AC-PC", "AC-PNC", "ANC-PC",
                                     "ANC-PNC"))
        assert abs(total - 1.0) < 1e-9
