"""Benchmark: regenerate Figure 12 — bank predictor metric vs. penalty.

Paper series (SpecINT95 / SpecFP95): history predictors A and B predict
about half the loads, C and the address predictor ~70 %; the address
predictor is the most accurate (flattest slope) and dominates at high
misprediction penalties — making it and C the sliced-pipe candidates.
"""

from benchmarks.conftest import run_once
from repro.experiments.bank_metric import render_fig12, run_fig12


def test_fig12_bank_metric(benchmark, bench_settings):
    data = run_once(benchmark, run_fig12, bench_settings)
    print()
    print(render_fig12(data))

    for group_name, group in data["groups"].items():
        rows = {r["predictor"]: r for r in group["rows"]}

        # The address predictor is the most accurate.
        assert rows["Addr"]["accuracy"] >= max(
            rows[p]["accuracy"] for p in "ABC") - 0.02, group_name

        # Metric curves decrease with penalty; intercept equals P.
        for r in group["rows"]:
            curve = r["curve"]
            assert curve[0] == r["prediction_rate"]
            assert all(a >= b for a, b in zip(curve, curve[1:]))

        # At the highest penalty the address predictor dominates.
        last = len(data["penalties"]) - 1
        assert rows["Addr"]["curve"][last] >= max(
            rows[p]["curve"][last] for p in "ABC") - 1e-9, group_name

    # On the integer traces C predicts more loads than A (rate vs
    # accuracy trade-off).
    int_rows = {r["predictor"]: r
                for r in data["groups"]["SpecInt95"]["rows"]}
    assert int_rows["C"]["prediction_rate"] > \
           int_rows["A"]["prediction_rate"]
