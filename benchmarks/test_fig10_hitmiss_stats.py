"""Benchmark: regenerate Figure 10 — hit-miss predictor accuracy.

Paper series (fractions of all loads, per trace group): the local
predictor catches 34-85 % of misses (best on SpecFP, worst on
SysmarkNT); adding the chooser cuts the false misses (AH-PM)
significantly; misses caught outweigh false misses.
"""

from benchmarks.conftest import run_once
from repro.experiments.hitmiss_stats import render_fig10, run_fig10


def test_fig10_hitmiss_stats(benchmark, bench_settings):
    data = run_once(benchmark, run_fig10, bench_settings)
    print()
    print(render_fig10(data))

    rows = {(r["group"], r["predictor"]): r for r in data["rows"]}

    # FP misses are the most predictable; NT among the least (paper:
    # 85 % vs 34 % coverage).
    assert rows[("SpecFP", "local")]["coverage"] > \
           rows[("SysmarkNT", "local")]["coverage"]

    # The local predictor catches a substantial share of FP misses.
    assert rows[("SpecFP", "local")]["coverage"] > 0.5

    # The chooser reduces false misses overall (per-group values can
    # jitter within noise at the reduced benchmark budget, but the
    # aggregate reduction must hold and no group may regress badly).
    total_chooser = sum(rows[(g, "chooser")]["ah_pm"]
                        for g in ("SpecFP", "SpecINT", "SysmarkNT",
                                  "Others"))
    total_local = sum(rows[(g, "local")]["ah_pm"]
                      for g in ("SpecFP", "SpecINT", "SysmarkNT",
                                "Others"))
    assert total_chooser < total_local
    for group in ("SpecFP", "SpecINT", "SysmarkNT", "Others"):
        assert rows[(group, "chooser")]["ah_pm"] <= \
               rows[(group, "local")]["ah_pm"] * 1.3 + 0.001, group

    # Misses caught outweigh hits mispredicted for the local predictor.
    for group in ("SpecFP", "SpecINT", "SysmarkNT"):
        assert rows[(group, "local")]["am_pm"] > \
               rows[(group, "local")]["ah_pm"], group
