"""Benchmark: regenerate Figure 11 — speedup of hit-miss prediction.

Paper series (perfect disambiguation, 4 EU / 2 MEM, speedup over the
always-predict-hit machine): perfect HMP ~6 %; the local predictor with
timing information achieves a large share of that; timing information
beats the same predictor without it.
"""

from benchmarks.conftest import run_once
from repro.experiments.hitmiss_speedup import render_fig11, run_fig11


def test_fig11_hitmiss_speedup(benchmark, bench_settings):
    data = run_once(benchmark, run_fig11, bench_settings)
    print()
    print(render_fig11(data))

    avg = data["average"]
    # A perfect predictor yields a real speedup over always-hit.
    assert avg["perfect"] > 1.005
    # Timing information helps the local predictor (the paper's best).
    assert avg["local+timing"] > avg["local"]
    # The realisable predictors stay at or below the perfect bound
    # (small tolerance: the oracle cannot anticipate conflicting
    # accesses it has not yet seen).
    assert avg["local+timing"] <= avg["perfect"] + 0.01
    # Everything beats or matches the no-HMP baseline.
    for kind, speedup in avg.items():
        assert speedup > 0.99, kind
