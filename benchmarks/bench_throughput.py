"""Simulator-throughput benchmark: uops/second per ordering scheme.

Unlike the figure benchmarks (which measure the *simulated machine*),
this measures the *simulator*: how many trace uops per wall-clock
second ``Machine.run`` retires under each ordering scheme, and what the
observability layer costs when enabled.  Results land in
``BENCH_throughput.json`` so the perf trajectory is tracked run over
run, and CI uploads the file as a workflow artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --uops 30000 --repeats 3 --out BENCH_throughput.json

The trace is seeded (derived from the trace name, as everywhere else),
so numbers are comparable across checkouts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import ExecutionPolicy  # noqa: E402
from repro.engine.machine import Machine  # noqa: E402
from repro.engine.ordering import make_scheme  # noqa: E402
from repro.obs import EventBus, JsonlSink, instrument  # noqa: E402
from repro.obs.provenance import collect_provenance  # noqa: E402
from repro.obs.sinks import git_revision  # noqa: E402
from repro.parallel import (  # noqa: E402
    ExecutionPlan,
    ResultCache,
    SimJob,
    load_or_build_trace,
    run_jobs,
    sim_job,
)
from repro.trace.builder import build_trace  # noqa: E402
from repro.trace.workloads import profile_for, trace_seed  # noqa: E402

DEFAULT_SCHEMES = ("traditional", "opportunistic", "inclusive",
                   "exclusive", "perfect")


def _best_run(make_machine, trace, repeats: int) -> Dict[str, float]:
    """Run ``repeats`` times, keep the fastest wall-clock (least noise)."""
    best: Optional[Dict[str, float]] = None
    for _ in range(max(1, repeats)):
        machine = make_machine()
        start = time.perf_counter()
        result = machine.run(trace)
        elapsed = time.perf_counter() - start
        sample = {
            "wall_seconds": elapsed,
            "uops_per_sec": result.retired_uops / elapsed,
            "cycles": result.cycles,
            "retired_uops": result.retired_uops,
        }
        if best is None or sample["wall_seconds"] < best["wall_seconds"]:
            best = sample
    assert best is not None
    return best


@sim_job("bench-scheme")
def _bench_scheme_leaf(trace_name: str, scheme: str, n_uops: int,
                       repeats: int) -> Dict[str, float]:
    """Time one scheme in an isolated process (trace built untimed).

    Never cached (the job is marked non-cacheable): a wall-clock
    measurement replayed from disk would be a lie.
    """
    trace = build_trace(profile_for(trace_name), n_uops=n_uops,
                        seed=trace_seed(trace_name), name=trace_name)
    return _best_run(lambda: Machine(scheme=make_scheme(scheme)),
                     trace, repeats)


def measure_schemes(trace, schemes, repeats: int, workers: int = 0,
                    n_uops: Optional[int] = None) -> Dict[str, Dict]:
    if workers > 1:
        # One timing job per scheme; concurrent jobs share the machine,
        # so expect a few percent more noise than the serial path.
        jobs = [SimJob.make(_bench_scheme_leaf,
                            key=("bench-scheme", trace.name, name),
                            cacheable=False,
                            trace_name=trace.name, scheme=name,
                            n_uops=(n_uops if n_uops is not None
                                    else len(trace)),
                            repeats=repeats)
                for name in schemes]
        results = run_jobs(jobs, plan=ExecutionPlan(workers=workers))
        out = dict(zip(schemes, results))
    else:
        out = {name: _best_run(lambda: Machine(scheme=make_scheme(name)),
                               trace, repeats)
               for name in schemes}
    for name in schemes:
        print(f"  {name:14s} {out[name]['uops_per_sec']:>12,.0f} uops/sec"
              f"   ({out[name]['cycles']} cycles)")
    return out


def measure_engine_backends(trace, schemes, repeats: int) -> Dict[str, object]:
    """Per-backend throughput of whole-machine replay (docs/engine.md).

    Pits ``Machine.run(backend="reference")`` against the event-driven
    array kernel on the same trace, per scheme.  Unlike the fastpath
    sweeps these replay the *full* §3.1 machine, so the speedup is
    bounded by the shared scalar hierarchy/predictor calls.
    """
    from repro.fastpath import HAS_NUMPY
    if not HAS_NUMPY:
        print("  engine: numpy unavailable, skipping")
        return {"skipped": "numpy unavailable"}

    def timed(backend: str, scheme: str) -> Dict[str, float]:
        best: Optional[Dict[str, float]] = None
        for _ in range(max(1, repeats)):
            machine = Machine(scheme=make_scheme(scheme))
            start = time.perf_counter()
            result = machine.run(
                trace, policy=ExecutionPolicy(backend=backend))
            elapsed = time.perf_counter() - start
            sample = {"wall_seconds": elapsed,
                      "uops_per_sec": result.retired_uops / elapsed}
            if best is None or sample["wall_seconds"] < best["wall_seconds"]:
                best = sample
        assert best is not None
        return best

    out: Dict[str, object] = {}
    for name in schemes:
        ref = timed("reference", name)
        vec = timed("vectorized", name)
        speedup = ref["wall_seconds"] / vec["wall_seconds"]
        out[name] = {
            "reference_uops_per_sec": ref["uops_per_sec"],
            "vectorized_uops_per_sec": vec["uops_per_sec"],
            "speedup": speedup,
        }
        print(f"  {name:14s} ref {ref['uops_per_sec']:>12,.0f}"
              f"  vec {vec['uops_per_sec']:>12,.0f} uops/sec"
              f"   ({speedup:.2f}x)")
    return out


def measure_obs_overhead(trace, scheme: str, repeats: int,
                         jsonl_path: str) -> Dict[str, float]:
    """Compare obs-disabled vs JSONL-sink-enabled wall-clock."""
    baseline = _best_run(lambda: Machine(scheme=make_scheme(scheme)),
                         trace, repeats)

    def make_observed() -> Machine:
        machine = Machine(scheme=make_scheme(scheme))
        bus = instrument(machine, EventBus())
        bus.attach(JsonlSink(jsonl_path))
        return machine

    observed = _best_run(make_observed, trace, repeats)
    overhead = (observed["wall_seconds"] / baseline["wall_seconds"]) - 1.0
    print(f"  observability: disabled "
          f"{baseline['uops_per_sec']:,.0f} uops/sec, jsonl "
          f"{observed['uops_per_sec']:,.0f} uops/sec "
          f"({overhead:+.1%} wall-clock)")
    return {
        "scheme": scheme,
        "disabled_uops_per_sec": baseline["uops_per_sec"],
        "jsonl_uops_per_sec": observed["uops_per_sec"],
        "jsonl_overhead_frac": overhead,
    }


def _best_replay(run, repeats: int, n_events: int) -> Dict[str, float]:
    """Fastest of ``repeats`` timings of one predictor replay."""
    best: Optional[float] = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    assert best is not None
    return {"wall_seconds": best, "uops_per_sec": n_events / best}


def measure_fastpath(n_events: int, repeats: int) -> Dict[str, object]:
    """Per-backend throughput of the predictor-only replay sweeps.

    These are the table-indexed hot loops the ``repro.fastpath`` batch
    kernels target; each sweep replays the same synthetic event grid
    through a fresh predictor under both backends and reports the
    vectorized/reference speedup.
    """
    from repro.fastpath import HAS_NUMPY
    if not HAS_NUMPY:
        print("  fastpath: numpy unavailable, skipping")
        return {"skipped": "numpy unavailable"}

    from repro.bank.history import make_predictor_a
    from repro.cht.tagless import TaglessCHT
    from repro.experiments.bank_metric import evaluate
    from repro.experiments.cht_accuracy import EventArrayCache, LoadEvent
    from repro.experiments.cht_accuracy import replay as cht_replay
    from repro.experiments.hitmiss_stats import HitMissEvent
    from repro.experiments.hitmiss_stats import replay as hm_replay
    from repro.fastpath.tracegen import (
        synthesize_bank_grid,
        synthesize_collision_grid,
        synthesize_outcome_grid,
    )
    from repro.hitmiss.hybrid import HybridHMP
    from repro.hitmiss.local import LocalHMP

    # ~1k static load sites, as a 2K-entry CHT would see on real code.
    pcs, cf, co, dist = synthesize_collision_grid(1, n_events, n_pcs=1021)
    cht_events = [LoadEvent(pc=p, conflicting=c, collided=k, distance=d)
                  for p, c, k, d in zip(pcs, cf, co, dist)]
    pcs, hits = synthesize_outcome_grid(2, n_events)
    hm_events = [HitMissEvent(pc=p, line=p >> 6, now=i, hit=h)
                 for i, (p, h) in enumerate(zip(pcs, hits))]
    bank_stream = synthesize_bank_grid(3, n_events)

    # The Figure 9 pattern: one recorded stream replayed through the
    # whole tagless size ladder (conversion shared, like the harness).
    tagless_sizes = (2048, 4096, 8192, 16384, 32768)

    def cht_sweep(backend: str) -> None:
        shared = EventArrayCache(cht_events)
        for size in tagless_sizes:
            cht_replay(cht_events,
                       TaglessCHT(n_entries=size, backend=backend),
                       arrays=shared)

    sweeps = {
        "cht_tagless_sizes": (cht_sweep, n_events * len(tagless_sizes)),
        "hmp_local_2k": (lambda backend: hm_replay(
            hm_events, LocalHMP(n_entries=2048, history_bits=8,
                                backend=backend)), n_events),
        "hmp_hybrid": (lambda backend: hm_replay(
            hm_events, HybridHMP(backend=backend)), n_events),
        "bank_predictor_a": (lambda backend: evaluate(
            make_predictor_a(backend=backend), bank_stream), n_events),
    }
    out: Dict[str, object] = {"n_events": n_events}
    for name, (run, n_replayed) in sweeps.items():
        ref = _best_replay(lambda: run("reference"), repeats, n_replayed)
        vec = _best_replay(lambda: run("vectorized"), repeats, n_replayed)
        speedup = ref["wall_seconds"] / vec["wall_seconds"]
        out[name] = {
            "reference_uops_per_sec": ref["uops_per_sec"],
            "vectorized_uops_per_sec": vec["uops_per_sec"],
            "speedup": speedup,
        }
        print(f"  {name:18s} ref {ref['uops_per_sec']:>12,.0f}"
              f"  vec {vec['uops_per_sec']:>12,.0f} uops/sec"
              f"   ({speedup:.1f}x)")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="gcc")
    parser.add_argument("--uops", type=int,
                        default=int(os.environ.get("REPRO_BENCH_UOPS",
                                                   "30000")))
    parser.add_argument("--repeats", type=int, default=2,
                        help="keep the fastest of N runs (default 2)")
    parser.add_argument("--schemes", nargs="+", default=None,
                        choices=DEFAULT_SCHEMES, metavar="SCHEME")
    parser.add_argument("--out", default="BENCH_throughput.json")
    parser.add_argument("--skip-obs-overhead", action="store_true")
    parser.add_argument("--skip-fastpath", action="store_true",
                        help="skip the per-backend predictor sweeps")
    parser.add_argument("--skip-engine", action="store_true",
                        help="skip the per-backend machine replay sweep")
    parser.add_argument("--fastpath-events", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_FASTPATH_EVENTS", "200000")),
                        help="events per fastpath predictor sweep")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="time each scheme in its own worker "
                             "process (slightly noisier; 0 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk trace cache (timings themselves "
                             "are never cached)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir")
    args = parser.parse_args(argv)

    schemes = args.schemes if args.schemes else list(DEFAULT_SCHEMES)
    print(f"throughput benchmark: trace {args.trace!r}, "
          f"{args.uops} uops, best of {args.repeats}")
    cache_dir = None if args.no_cache else args.cache_dir
    cache = ResultCache(cache_dir) if cache_dir else None
    trace = load_or_build_trace(profile_for(args.trace),
                                n_uops=args.uops,
                                seed=trace_seed(args.trace),
                                name=args.trace, cache=cache)

    report: Dict[str, object] = {
        "benchmark": "throughput",
        "trace": args.trace,
        "n_uops": args.uops,
        "seed": trace_seed(args.trace),
        "repeats": args.repeats,
        "workers": args.workers,
        "python": sys.version.split()[0],
        "git_rev": git_revision(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # Full run provenance (host, platform, numpy, cpu count) so
        # history rows from different machines are distinguishable.
        "provenance": collect_provenance(),
        "schemes": measure_schemes(trace, schemes, args.repeats,
                                   workers=args.workers,
                                   n_uops=args.uops),
    }
    if not args.skip_engine:
        print("engine replay backends (reference vs vectorized):")
        report["engine"] = measure_engine_backends(trace, schemes,
                                                   args.repeats)
    if not args.skip_fastpath:
        print("fastpath predictor sweeps "
              f"({args.fastpath_events} events each):")
        report["fastpath"] = measure_fastpath(args.fastpath_events,
                                              args.repeats)
    if not args.skip_obs_overhead:
        jsonl_path = args.out + ".events.tmp.jsonl"
        try:
            report["observability"] = measure_obs_overhead(
                trace, schemes[0], args.repeats, jsonl_path)
        finally:
            if os.path.exists(jsonl_path):
                os.remove(jsonl_path)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
