"""Simulator-throughput benchmark: uops/second per ordering scheme.

Unlike the figure benchmarks (which measure the *simulated machine*),
this measures the *simulator*: how many trace uops per wall-clock
second ``Machine.run`` retires under each ordering scheme, and what the
observability layer costs when enabled.  Results land in
``BENCH_throughput.json`` so the perf trajectory is tracked run over
run, and CI uploads the file as a workflow artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --uops 30000 --repeats 3 --out BENCH_throughput.json

The trace is seeded (derived from the trace name, as everywhere else),
so numbers are comparable across checkouts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.machine import Machine  # noqa: E402
from repro.engine.ordering import make_scheme  # noqa: E402
from repro.obs import EventBus, JsonlSink, instrument  # noqa: E402
from repro.obs.sinks import git_revision  # noqa: E402
from repro.parallel import (  # noqa: E402
    ExecutionPlan,
    ResultCache,
    SimJob,
    load_or_build_trace,
    run_jobs,
    sim_job,
)
from repro.trace.builder import build_trace  # noqa: E402
from repro.trace.workloads import profile_for, trace_seed  # noqa: E402

DEFAULT_SCHEMES = ("traditional", "opportunistic", "inclusive",
                   "exclusive", "perfect")


def _best_run(make_machine, trace, repeats: int) -> Dict[str, float]:
    """Run ``repeats`` times, keep the fastest wall-clock (least noise)."""
    best: Optional[Dict[str, float]] = None
    for _ in range(max(1, repeats)):
        machine = make_machine()
        start = time.perf_counter()
        result = machine.run(trace)
        elapsed = time.perf_counter() - start
        sample = {
            "wall_seconds": elapsed,
            "uops_per_sec": result.retired_uops / elapsed,
            "cycles": result.cycles,
            "retired_uops": result.retired_uops,
        }
        if best is None or sample["wall_seconds"] < best["wall_seconds"]:
            best = sample
    assert best is not None
    return best


@sim_job("bench-scheme")
def _bench_scheme_leaf(trace_name: str, scheme: str, n_uops: int,
                       repeats: int) -> Dict[str, float]:
    """Time one scheme in an isolated process (trace built untimed).

    Never cached (the job is marked non-cacheable): a wall-clock
    measurement replayed from disk would be a lie.
    """
    trace = build_trace(profile_for(trace_name), n_uops=n_uops,
                        seed=trace_seed(trace_name), name=trace_name)
    return _best_run(lambda: Machine(scheme=make_scheme(scheme)),
                     trace, repeats)


def measure_schemes(trace, schemes, repeats: int, workers: int = 0,
                    n_uops: Optional[int] = None) -> Dict[str, Dict]:
    if workers > 1:
        # One timing job per scheme; concurrent jobs share the machine,
        # so expect a few percent more noise than the serial path.
        jobs = [SimJob.make(_bench_scheme_leaf,
                            key=("bench-scheme", trace.name, name),
                            cacheable=False,
                            trace_name=trace.name, scheme=name,
                            n_uops=(n_uops if n_uops is not None
                                    else len(trace)),
                            repeats=repeats)
                for name in schemes]
        results = run_jobs(jobs, plan=ExecutionPlan(workers=workers))
        out = dict(zip(schemes, results))
    else:
        out = {name: _best_run(lambda: Machine(scheme=make_scheme(name)),
                               trace, repeats)
               for name in schemes}
    for name in schemes:
        print(f"  {name:14s} {out[name]['uops_per_sec']:>12,.0f} uops/sec"
              f"   ({out[name]['cycles']} cycles)")
    return out


def measure_obs_overhead(trace, scheme: str, repeats: int,
                         jsonl_path: str) -> Dict[str, float]:
    """Compare obs-disabled vs JSONL-sink-enabled wall-clock."""
    baseline = _best_run(lambda: Machine(scheme=make_scheme(scheme)),
                         trace, repeats)

    def make_observed() -> Machine:
        machine = Machine(scheme=make_scheme(scheme))
        bus = instrument(machine, EventBus())
        bus.attach(JsonlSink(jsonl_path))
        return machine

    observed = _best_run(make_observed, trace, repeats)
    overhead = (observed["wall_seconds"] / baseline["wall_seconds"]) - 1.0
    print(f"  observability: disabled "
          f"{baseline['uops_per_sec']:,.0f} uops/sec, jsonl "
          f"{observed['uops_per_sec']:,.0f} uops/sec "
          f"({overhead:+.1%} wall-clock)")
    return {
        "scheme": scheme,
        "disabled_uops_per_sec": baseline["uops_per_sec"],
        "jsonl_uops_per_sec": observed["uops_per_sec"],
        "jsonl_overhead_frac": overhead,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="gcc")
    parser.add_argument("--uops", type=int,
                        default=int(os.environ.get("REPRO_BENCH_UOPS",
                                                   "30000")))
    parser.add_argument("--repeats", type=int, default=2,
                        help="keep the fastest of N runs (default 2)")
    parser.add_argument("--schemes", nargs="+", default=None,
                        choices=DEFAULT_SCHEMES, metavar="SCHEME")
    parser.add_argument("--out", default="BENCH_throughput.json")
    parser.add_argument("--skip-obs-overhead", action="store_true")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="time each scheme in its own worker "
                             "process (slightly noisier; 0 = serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk trace cache (timings themselves "
                             "are never cached)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir")
    args = parser.parse_args(argv)

    schemes = args.schemes if args.schemes else list(DEFAULT_SCHEMES)
    print(f"throughput benchmark: trace {args.trace!r}, "
          f"{args.uops} uops, best of {args.repeats}")
    cache_dir = None if args.no_cache else args.cache_dir
    cache = ResultCache(cache_dir) if cache_dir else None
    trace = load_or_build_trace(profile_for(args.trace),
                                n_uops=args.uops,
                                seed=trace_seed(args.trace),
                                name=args.trace, cache=cache)

    report: Dict[str, object] = {
        "benchmark": "throughput",
        "trace": args.trace,
        "n_uops": args.uops,
        "seed": trace_seed(args.trace),
        "repeats": args.repeats,
        "workers": args.workers,
        "python": sys.version.split()[0],
        "git_rev": git_revision(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "schemes": measure_schemes(trace, schemes, args.repeats,
                                   workers=args.workers,
                                   n_uops=args.uops),
    }
    if not args.skip_obs_overhead:
        jsonl_path = args.out + ".events.tmp.jsonl"
        try:
            report["observability"] = measure_obs_overhead(
                trace, schemes[0], args.repeats, jsonl_path)
        finally:
            if os.path.exists(jsonl_path):
                os.remove(jsonl_path)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
