"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's figures with a reduced
budget (the full budget lives in ``python -m repro.experiments``).  The
``bench_settings`` fixture controls that budget; raise it via the
``REPRO_BENCH_UOPS`` environment variable for slower, smoother numbers.

Benchmarks never touch a persistent :class:`~repro.parallel.cache.
ResultCache`: cache keys embed the package version, which ordinary code
edits do not change, so a directory reused across runs would serve
results computed by *old* code.  The autouse ``bench_cache`` fixture
scopes every benchmark's cache to a per-test pytest tmp path instead —
always a cold start, no stale entries by construction.
"""

import contextlib
import os

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.parallel import ExecutionPlan, execution


@contextlib.contextmanager
def scoped_cache(cache_dir):
    """Install ``cache_dir`` as the ambient throwaway result cache.

    The plan is otherwise the serial default, so benchmark timing
    semantics are unchanged; only cold trace/result builds inside the
    context go through the (fresh) on-disk cache.
    """
    with execution(ExecutionPlan(cache_dir=str(cache_dir))):
        yield str(cache_dir)


@pytest.fixture(autouse=True)
def bench_cache(tmp_path):
    """Fresh tmp-scoped cache per benchmark test (see module docstring)."""
    with scoped_cache(tmp_path / "repro-cache") as cache_dir:
        yield cache_dir


@pytest.fixture(scope="session")
def bench_settings():
    n_uops = int(os.environ.get("REPRO_BENCH_UOPS", "12000"))
    return ExperimentSettings(n_uops=n_uops, traces_per_group=2)


@pytest.fixture(scope="session")
def quick_settings():
    """For the heavyweight sweeps (Figure 8): fewer uops, one trace."""
    n_uops = int(os.environ.get("REPRO_BENCH_UOPS", "12000")) // 2
    return ExperimentSettings(n_uops=n_uops, traces_per_group=1)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
