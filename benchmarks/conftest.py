"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's figures with a reduced
budget (the full budget lives in ``python -m repro.experiments``).  The
``bench_settings`` fixture controls that budget; raise it via the
``REPRO_BENCH_UOPS`` environment variable for slower, smoother numbers.
"""

import os

import pytest

from repro.experiments.harness import ExperimentSettings


@pytest.fixture(scope="session")
def bench_settings():
    n_uops = int(os.environ.get("REPRO_BENCH_UOPS", "12000"))
    return ExperimentSettings(n_uops=n_uops, traces_per_group=2)


@pytest.fixture(scope="session")
def quick_settings():
    """For the heavyweight sweeps (Figure 8): fewer uops, one trace."""
    n_uops = int(os.environ.get("REPRO_BENCH_UOPS", "12000")) // 2
    return ExperimentSettings(n_uops=n_uops, traces_per_group=1)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
