"""Benchmark: regenerate Figure 8 — speedup vs. machine configuration.

Paper claim: "wider machines gain more performance when using a better
memory ordering mechanism" — the Perfect/Exclusive speedups grow from
EU2/MEM1 through EU2/MEM2 to EU4/MEM2.
"""

from benchmarks.conftest import run_once
from repro.experiments.machine_sweep import (
    render_fig8,
    run_fig8,
    widening_gain,
)


def test_fig8_machine_sweep(benchmark, quick_settings):
    data = run_once(benchmark, run_fig8, quick_settings)
    print()
    print(render_fig8(data))

    # The widening trend for the oracle (no predictor noise involved).
    perfect_by_config = widening_gain(data, scheme="perfect")
    narrow = perfect_by_config["EU2/MEM1"]
    wide = perfect_by_config["EU4/MEM2"]
    assert wide > narrow

    # Every configuration preserves the basic scheme ordering.
    for config_label, per_group in data["configs"].items():
        for group_label, speedups in per_group.items():
            assert speedups["perfect"] >= speedups["inclusive"] - 0.02, \
                (config_label, group_label)
