"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's headline figures:

* **CHT cyclic clearing** — [Chry98]-style periodic clears let sticky
  tables recover from phase changes (section 2.1's discussion).
* **Collision-distance convergence** — the exclusive predictor's
  distance annotation converges on the minimal safe distance.
* **HMP history-length sweep** — how much per-load history the local
  predictor needs.
* **Bank duplication policy** — confidence-gated duplication vs. always
  trusting the prediction in the sliced pipe.
* **Window × ordering interaction** — the predictor's value grows with
  the scheduling window (Figure 6's implication for Figure 7).
"""

import pytest

from benchmarks.conftest import run_once
from repro.bank.address_based import AddressBankPredictor
from repro.bank.policy import DuplicationPolicy, SlicedPipeSimulator
from repro.cht.clearing import PeriodicClearing
from repro.cht.tagged import TaggedOnlyCHT
from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import InclusiveOrdering, make_scheme
from repro.experiments.cht_accuracy import collision_events, replay
from repro.experiments.harness import ExperimentSettings, get_trace
from repro.experiments.hitmiss_stats import hitmiss_events
from repro.experiments.hitmiss_stats import replay as replay_hm
from repro.hitmiss.local import LocalHMP


def test_ablation_cht_cyclic_clearing(benchmark, bench_settings):
    """Clearing a sticky table restores ANC-PC lost to phase changes."""
    def run():
        streams = collision_events(["cd", "ex"], bench_settings)
        plain = TaggedOnlyCHT(n_entries=2048, ways=4)
        cleared = PeriodicClearing(TaggedOnlyCHT(n_entries=2048, ways=4),
                                   interval=2000)
        out = {}
        for label, cht in (("sticky", plain), ("cleared", cleared)):
            anc_pc = conflicting = 0
            for _, events in streams:
                acc = replay(events, cht)
                anc_pc += acc.anc_pc
                conflicting += acc.conflicting
            out[label] = anc_pc / conflicting if conflicting else 0.0
        return out

    rates = run_once(benchmark, run)
    print(f"\nANC-PC: sticky={rates['sticky']:.3f} "
          f"cleared={rates['cleared']:.3f}")
    # Clearing lets loads whose behaviour flipped become advanceable
    # again: the lost-opportunity rate must not grow.
    assert rates["cleared"] <= rates["sticky"] + 0.01


def test_ablation_distance_convergence(benchmark, bench_settings):
    """The exclusive CHT's distances settle at per-PC minima."""
    from repro.cht.full import FullCHT

    def run():
        streams = collision_events(["cd"], bench_settings)
        cht = FullCHT(n_entries=4096, ways=4, track_distance=True)
        minima = {}
        for _, events in streams:
            for e in events:
                if e.collided and e.distance:
                    minima[e.pc] = min(minima.get(e.pc, e.distance),
                                       e.distance)
                cht.train(e.pc, e.collided,
                          e.distance if e.collided else None)
        agree = total = 0
        for pc, true_min in minima.items():
            got = cht.lookup(pc)
            if got.colliding and got.distance is not None:
                total += 1
                agree += got.distance == true_min
        return agree, total

    agree, total = run_once(benchmark, run)
    print(f"\ndistance converged for {agree}/{total} colliding PCs")
    assert total > 0
    assert agree / total > 0.9


@pytest.mark.parametrize("history_bits", [2, 8])
def test_ablation_hmp_history_length(benchmark, bench_settings,
                                     history_bits):
    """Longer per-load histories catch more periodic misses (SpecFP)."""
    def run():
        streams = hitmiss_events(["applu", "apsi"], bench_settings)
        hmp = LocalHMP(n_entries=2048, history_bits=history_bits)
        coverage_n = coverage_d = 0
        for _, events in streams:
            stats = replay_hm(events, hmp)
            caught = stats.am_pm_fraction * stats.total
            misses = stats.miss_rate * stats.total
            coverage_n += caught
            coverage_d += misses
        return coverage_n / coverage_d if coverage_d else 0.0

    coverage = run_once(benchmark, run)
    print(f"\nhistory={history_bits}: FP miss coverage {coverage:.2f}")
    # Even short histories catch some; the sweep output shows the trend.
    assert coverage > 0.1


def test_ablation_bank_duplication_policy(benchmark):
    """Confidence-gated duplication rescues a mediocre predictor."""
    def run():
        # A mixed stream: strided (predictable) + random (not).
        import random
        rng = random.Random(11)
        accesses = []
        addr = 0
        for i in range(4000):
            if i % 3 == 2:
                accesses.append((0x200, rng.randrange(1 << 20)))
            else:
                addr += 64
                accesses.append((0x100, addr))
        out = {}
        for label, policy in (
                ("trusting", DuplicationPolicy(
                    confidence_floor=0.0,
                    duplicate_when_uncontended=False)),
                ("gated", DuplicationPolicy(
                    confidence_floor=0.9,
                    duplicate_when_uncontended=False))):
            sim = SlicedPipeSimulator(AddressBankPredictor(), policy,
                                      contention_rate=1.0,
                                      mispredict_penalty=4.0)
            out[label] = sim.run(list(accesses)).metric
        return out

    metrics = run_once(benchmark, run)
    print(f"\nsliced-pipe metric: trusting={metrics['trusting']:.3f} "
          f"gated={metrics['gated']:.3f}")
    assert metrics["gated"] >= metrics["trusting"] - 0.02


def test_ablation_window_ordering_interaction(benchmark, bench_settings):
    """The inclusive predictor's speedup grows with the window size."""
    def run():
        trace = get_trace("cd", bench_settings.n_uops)
        out = {}
        for window in (8, 64):
            config = BASELINE_MACHINE.with_window(window)
            base = Machine(config=config,
                           scheme=make_scheme("traditional")).run(trace)
            incl = Machine(config=config,
                           scheme=make_scheme("inclusive")).run(trace)
            out[window] = incl.speedup_over(base)
        return out

    speedups = run_once(benchmark, run)
    print(f"\ninclusive speedup: window8={speedups[8]:.3f} "
          f"window64={speedups[64]:.3f}")
    assert speedups[64] > speedups[8]


def test_ablation_store_forwarding(benchmark, bench_settings):
    """Store-to-load forwarding on top of the exclusive scheme."""
    from dataclasses import replace as dc_replace
    from repro.common.config import BASELINE_MACHINE

    def run():
        trace = get_trace("cd", bench_settings.n_uops)
        base = Machine(scheme=make_scheme("traditional")).run(trace)
        plain = Machine(scheme=make_scheme("exclusive")).run(trace)
        fwd_cfg = dc_replace(
            BASELINE_MACHINE,
            latency=dc_replace(BASELINE_MACHINE.latency,
                               forward_latency=2))
        fwd = Machine(config=fwd_cfg,
                      scheme=make_scheme("exclusive")).run(trace)
        return {
            "plain": plain.speedup_over(base),
            "forwarding": fwd.speedup_over(base),
            "forwarded_loads": fwd.forwarded_loads,
        }

    out = run_once(benchmark, run)
    print(f"\nexclusive: plain={out['plain']:.3f} "
          f"with-forwarding={out['forwarding']:.3f} "
          f"({out['forwarded_loads']} loads forwarded)")
    assert out["forwarded_loads"] > 0
    assert out["forwarding"] >= out["plain"] - 0.005


def test_ablation_smt_switch_policies(benchmark, bench_settings):
    """Section 2.2's multithreading application of hit-miss prediction."""
    from repro.smt import CoarseGrainedMT, SwitchPolicy

    def run():
        traces = [get_trace(n, bench_settings.n_uops // 2)
                  for n in ("tpcc", "jack")]
        return {policy.value: CoarseGrainedMT(policy=policy).run(traces)
                for policy in SwitchPolicy}

    results = run_once(benchmark, run)
    print()
    for name, r in results.items():
        print(f"  {name:10s} cycles={r.cycles} wasted={r.wasted_switches}")
    assert results["predicted"].cycles < results["none"].cycles
    assert results["predicted"].cycles <= results["reactive"].cycles
    assert results["predicted"].cycles <= results["oracle"].cycles * 1.05


def test_ablation_penalty_sensitivity(benchmark, quick_settings):
    """ext-penalty: prediction's edge grows with the collision penalty."""
    from repro.experiments.extensions import run_penalty_sweep

    data = run_once(benchmark, run_penalty_sweep, quick_settings,
                    penalties=(2, 16))
    low, high = data["rows"]
    print(f"\npenalty 2: opp={low['opportunistic']:.3f} "
          f"incl={low['inclusive']:.3f}  |  penalty 16: "
          f"opp={high['opportunistic']:.3f} incl={high['inclusive']:.3f}")
    gap_low = low["inclusive"] - low["opportunistic"]
    gap_high = high["inclusive"] - high["opportunistic"]
    assert gap_high > gap_low


def test_ablation_bank_perf(benchmark, quick_settings):
    """ext-bank-perf: engine-level bank steering."""
    from repro.experiments.extensions import run_bank_perf

    data = run_once(benchmark, run_bank_perf, quick_settings)
    rows = {r["policy"]: r for r in data["rows"]}
    print(f"\nconflicts: oblivious={rows['oblivious']['bank_conflicts']} "
          f"predicted={rows['predicted']['bank_conflicts']} "
          f"oracle={rows['oracle']['bank_conflicts']}")
    assert rows["oracle"]["bank_conflicts"] == 0
    assert rows["predicted"]["bank_conflicts"] < \
           rows["oblivious"]["bank_conflicts"]
    assert rows["oracle"]["speedup_vs_oblivious"] >= \
           rows["predicted"]["speedup_vs_oblivious"] - 0.01


def test_ablation_prefetch_vs_hitmiss(benchmark, bench_settings):
    """Prefetching competes with hit-miss prediction for regular misses.

    The same streaming regularity that makes misses predictable makes
    them prefetchable; with the prefetcher on, the misses that remain
    are the irregular ones, so HMP miss coverage drops while the miss
    rate itself falls — the interaction §2.2's closing remark hints at.
    """
    from repro.common.config import BASELINE_MACHINE
    from repro.hitmiss.local import LocalHMP
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.memory.prefetch import StridePrefetcher

    def run():
        trace = get_trace("applu", bench_settings.n_uops)
        out = {}
        for label, with_pf in (("no-prefetch", False),
                               ("prefetch", True)):
            hierarchy = MemoryHierarchy(BASELINE_MACHINE.memory)
            machine = Machine(scheme=make_scheme("perfect"),
                              hmp=LocalHMP(), hierarchy=hierarchy)
            if with_pf:
                machine.prefetcher = StridePrefetcher(hierarchy, degree=2)
            result = machine.run(trace)
            out[label] = {
                "miss_rate": result.l1_miss_rate,
                "coverage": result.hitmiss.miss_coverage,
                "cycles": result.cycles,
            }
        return out

    out = run_once(benchmark, run)
    print(f"\nno-prefetch: miss={out['no-prefetch']['miss_rate']:.3f} "
          f"HMP-coverage={out['no-prefetch']['coverage']:.2f}")
    print(f"prefetch:    miss={out['prefetch']['miss_rate']:.3f} "
          f"HMP-coverage={out['prefetch']['coverage']:.2f}")
    assert out["prefetch"]["miss_rate"] < \
           out["no-prefetch"]["miss_rate"]
    assert out["prefetch"]["cycles"] <= out["no-prefetch"]["cycles"]
