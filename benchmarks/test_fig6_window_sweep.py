"""Benchmark: regenerate Figure 6 — classification vs. window size.

Paper series (SysmarkNT, 8..128-entry windows): the actually-colliding
share rises steadily with window size while the no-conflict share
shrinks — "as the window size is increased, the potential performance
gain of superior memory ordering schemes increases as well".
"""

from benchmarks.conftest import run_once
from repro.experiments.classification import render_fig6, run_fig6


def test_fig6_window_sweep(benchmark, bench_settings):
    data = run_once(benchmark, run_fig6, bench_settings)
    print()
    print(render_fig6(data))

    sweep = {s["window"]: s for s in data["sweep"]}
    windows = sorted(sweep)
    # AC monotone up / no-conflict monotone down across the sweep ends.
    assert sweep[windows[-1]]["ac"] > sweep[windows[0]]["ac"]
    assert sweep[windows[-1]]["no_conflict"] < \
           sweep[windows[0]]["no_conflict"]
    # Interior trend: at least 3 of 4 steps increase AC.
    increases = sum(sweep[b]["ac"] >= sweep[a]["ac"]
                    for a, b in zip(windows, windows[1:]))
    assert increases >= len(windows) - 2
