"""The README's code must work as written."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_exists_and_names_the_paper(self):
        text = README.read_text(encoding="utf-8")
        assert "Speculation Techniques" in text
        assert "ISCA" in text

    def test_quickstart_snippet_runs(self):
        blocks = python_blocks()
        assert blocks, "README has no python snippet"
        snippet = blocks[0]
        # Shrink the trace so the doc test stays fast.
        snippet = snippet.replace("n_uops=20_000", "n_uops=4_000")
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102

    def test_documented_commands_exist(self):
        """Every `python -m repro...` figure the README mentions is a
        registered experiment."""
        from repro.experiments import EXPERIMENTS
        text = README.read_text(encoding="utf-8")
        for figure in re.findall(r"`(fig\d+|ext-[a-z-]+)`", text):
            assert figure in EXPERIMENTS, figure
