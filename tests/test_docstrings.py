"""Documentation quality gate: every public module, class and function
in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name for _, name, _ in pkgutil.walk_packages(repro.__path__,
                                                 prefix="repro.")
    if "__main__" not in name
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (module_name, undocumented)
