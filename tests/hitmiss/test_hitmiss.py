"""Tests for the hit-miss predictor family."""

import pytest

from repro.common.types import HitMissClass
from repro.hitmiss.base import HitMissStats
from repro.hitmiss.hybrid import HybridHMP
from repro.hitmiss.local import LocalHMP
from repro.hitmiss.oracle import AlwaysHitHMP, AlwaysMissHMP, OracleHMP
from repro.hitmiss.timing import TimingHMP
from repro.memory.mshr import OutstandingMissQueue, ServicedLoadBuffer


class TestHitMissStats:
    def test_record_classifies(self):
        s = HitMissStats()
        assert s.record(True, True) is HitMissClass.AH_PH
        assert s.record(False, False) is HitMissClass.AM_PM
        assert s.record(True, False) is HitMissClass.AH_PM
        assert s.record(False, True) is HitMissClass.AM_PH
        assert s.total == 4

    def test_miss_rate(self):
        s = HitMissStats()
        for _ in range(3):
            s.record(True, True)
        s.record(False, True)
        assert s.miss_rate == pytest.approx(0.25)

    def test_coverage(self):
        s = HitMissStats()
        s.record(False, False)  # caught
        s.record(False, True)   # missed
        assert s.miss_coverage == pytest.approx(0.5)

    def test_catch_to_false_ratio(self):
        s = HitMissStats()
        for _ in range(5):
            s.record(False, False)
        s.record(True, False)
        assert s.catch_to_false_ratio == pytest.approx(5.0)

    def test_ratio_infinite_without_false_misses(self):
        s = HitMissStats()
        s.record(False, False)
        assert s.catch_to_false_ratio == float("inf")

    def test_accuracy(self):
        s = HitMissStats()
        s.record(True, True)
        s.record(False, False)
        s.record(True, False)
        assert s.accuracy == pytest.approx(2 / 3)

    def test_merge(self):
        a, b = HitMissStats(), HitMissStats()
        a.record(True, True)
        b.record(False, False)
        a.merge(b)
        assert a.total == 2

    def test_as_dict_keys(self):
        d = HitMissStats().as_dict()
        assert set(d) == {"misses", "am_pm", "ah_pm", "coverage", "accuracy"}


class TestConstantPredictors:
    def test_always_hit(self):
        p = AlwaysHitHMP()
        p.update(0x100, False)
        assert p.predict_hit(0x100)
        assert p.storage_bits == 0

    def test_always_miss(self):
        assert not AlwaysMissHMP().predict_hit(0x100)


class TestOracle:
    def test_uses_probe(self):
        resident = {10, 20}
        oracle = OracleHMP(lambda pc, line, now: line in resident)
        assert oracle.predict_hit(0x100, line=10)
        assert not oracle.predict_hit(0x100, line=11)


class TestLocalHMP:
    def test_cold_predicts_hit(self):
        """An untrained HMP behaves like today's always-hit default."""
        assert LocalHMP().predict_hit(0x100)

    def test_learns_always_missing_load(self):
        p = LocalHMP()
        pc = 0x100
        for _ in range(16):
            p.update(pc, hit=False)
        assert not p.predict_hit(pc)

    def test_learns_periodic_pattern(self):
        """A load missing every 4th access (streaming) is predictable."""
        p = LocalHMP(n_entries=256, history_bits=8)
        pc = 0x100
        pattern = [False, True, True, True]
        for _ in range(60):
            for hit in pattern:
                p.update(pc, hit)
        correct = 0
        for _ in range(5):
            for hit in pattern:
                if p.predict_hit(pc) == hit:
                    correct += 1
                p.update(pc, hit)
        assert correct >= 17

    def test_reset(self):
        p = LocalHMP()
        for _ in range(16):
            p.update(0x100, hit=False)
        p.reset()
        assert p.predict_hit(0x100)

    def test_paper_size_is_about_2kb(self):
        """Section 2.2: 2048 entries, 8-bit history, ~2KBytes."""
        p = LocalHMP(n_entries=2048, history_bits=8)
        assert 1.5 * 8192 < p.storage_bits < 3 * 8192


class TestHybridHMP:
    def test_cold_predicts_hit(self):
        assert HybridHMP().predict_hit(0x100)

    def test_learns_constant_miss(self):
        p = HybridHMP()
        for _ in range(20):
            p.update(0x100, hit=False)
        assert not p.predict_hit(0x100)

    def test_majority_suppresses_sporadic_misses(self):
        """A load that misses rarely and randomly should stay predicted-hit
        (the chooser's false-miss suppression)."""
        import random
        rng = random.Random(0)
        p = HybridHMP()
        pc = 0x100
        for _ in range(200):
            p.update(pc, hit=(rng.random() > 0.1))
        # Mostly hitting: prediction must be hit.
        assert p.predict_hit(pc)

    def test_total_size_under_2kb(self):
        """Section 2.2: the whole hybrid is under 2 KB."""
        assert HybridHMP().storage_bits <= 2 * 8192


class TestTimingHMP:
    def _make(self):
        mshr = OutstandingMissQueue(8)
        serviced = ServicedLoadBuffer(retention_cycles=100)
        return TimingHMP(AlwaysHitHMP(), mshr, serviced), mshr, serviced

    def test_inflight_line_predicts_miss(self):
        """A load to a line still being fetched is a dynamic miss."""
        p, mshr, _ = self._make()
        mshr.insert(line=7, ready_cycle=100)
        assert not p.predict_hit(0x100, line=7, now=50)
        assert p.timing_hits == 1

    def test_arrived_line_falls_through(self):
        p, mshr, _ = self._make()
        mshr.insert(line=7, ready_cycle=100)
        # After arrival, the MSHR no longer claims the line.
        assert p.predict_hit(0x100, line=7, now=150)

    def test_recently_serviced_predicts_hit(self):
        p, _, serviced = self._make()
        serviced.insert(line=9, arrival_cycle=100)
        assert p.predict_hit(0x100, line=9, now=150)
        assert p.timing_hits == 1

    def test_fallback_to_base(self):
        mshr = OutstandingMissQueue(8)
        serviced = ServicedLoadBuffer()
        p = TimingHMP(AlwaysMissHMP(), mshr, serviced)
        assert not p.predict_hit(0x100, line=3, now=0)
        assert p.timing_hits == 0

    def test_no_line_context_uses_base(self):
        p, _, _ = self._make()
        assert p.predict_hit(0x100)  # base AlwaysHit

    def test_update_trains_base(self):
        mshr = OutstandingMissQueue(8)
        serviced = ServicedLoadBuffer()
        base = LocalHMP()
        p = TimingHMP(base, mshr, serviced)
        for _ in range(16):
            p.update(0x100, hit=False)
        assert not base.predict_hit(0x100)

    def test_reset(self):
        p, mshr, _ = self._make()
        mshr.insert(7, 100)
        p.predict_hit(0x100, line=7, now=50)
        p.reset()
        assert p.timing_hits == 0
