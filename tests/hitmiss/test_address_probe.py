"""Tests for the address-probe hit-miss predictor."""

import pytest

from repro.hitmiss.address_probe import AddressProbeHMP
from repro.hitmiss.oracle import AlwaysMissHMP


class TestProbePath:
    def _make(self, resident):
        return AddressProbeHMP(
            probe=lambda address, now: address in resident)

    def test_stable_address_probes_cache(self):
        resident = {0x1000}
        hmp = self._make(resident)
        for _ in range(5):
            hmp.train_address(0x100, 0x1000)
        assert hmp.predict_hit(0x100)
        assert hmp.probed == 1

    def test_probe_reports_miss(self):
        hmp = self._make(resident=set())
        for _ in range(5):
            hmp.train_address(0x100, 0x1000)
        assert not hmp.predict_hit(0x100)

    def test_strided_address_probes_next_line(self):
        """The probe asks about the *predicted next* address."""
        resident = {0x1000 + i * 64 for i in range(4)}  # first 4 lines
        hmp = self._make(resident)
        addr = 0x1000
        for _ in range(5):
            hmp.train_address(0x100, addr)
            addr += 64
        # Next predicted address is 0x1000 + 5*64: not resident.
        assert not hmp.predict_hit(0x100)

    def test_unstable_address_falls_back(self):
        import random
        rng = random.Random(0)
        hmp = AddressProbeHMP(probe=lambda a, n: True,
                              base=AlwaysMissHMP())
        for _ in range(30):
            hmp.train_address(0x100, rng.randrange(1 << 20))
        assert not hmp.predict_hit(0x100)  # base (always-miss) decided
        assert hmp.fallbacks >= 1

    def test_update_trains_from_line(self):
        hmp = self._make({0x1000})
        for _ in range(5):
            hmp.update(0x100, hit=True, line=0x1000 // 64)
        assert hmp.predict_hit(0x100)

    def test_reset(self):
        hmp = self._make({0x1000})
        for _ in range(5):
            hmp.train_address(0x100, 0x1000)
        hmp.reset()
        assert hmp.probed == 0
        # Cold again: falls back to the base predictor (always hit).
        assert hmp.predict_hit(0x100)
        assert hmp.fallbacks == 1


class TestWithRealHierarchy:
    def test_wired_to_hierarchy(self):
        from repro.memory.hierarchy import MemoryHierarchy
        hierarchy = MemoryHierarchy()
        hmp = AddressProbeHMP(probe=hierarchy.would_hit_l1)
        # Warm a line, train a constant address, expect a hit verdict.
        hierarchy.load(0x4000, now=0)
        for _ in range(5):
            hmp.train_address(0x100, 0x4000)
        assert hmp.predict_hit(0x100, now=500)

    def test_accuracy_on_stride_stream(self):
        """On a pure stride stream the probe is a near-oracle."""
        from repro.memory.hierarchy import MemoryHierarchy
        hierarchy = MemoryHierarchy()
        hmp = AddressProbeHMP(probe=hierarchy.would_hit_l1)
        addr, now = 0x10000, 0
        correct = total = 0
        for i in range(300):
            prediction = hmp.predict_hit(0x100, line=addr // 64, now=now)
            outcome = hierarchy.load(addr, now)
            if i > 20:  # skip predictor warmup
                total += 1
                correct += prediction == outcome.l1_hit
            hmp.train_address(0x100, addr)
            addr += 32  # two accesses per line: alternating hit/miss
            now += 30
        assert correct / total > 0.9
