"""Tests for the multi-level (L1/L2/memory) hit-miss predictor."""

import pytest

from repro.common.config import CacheConfig, MemoryConfig
from repro.hitmiss.multilevel import LevelStats, MemoryLevel, MultiLevelHMP
from repro.memory.hierarchy import LoadOutcome, MemoryHierarchy


def outcome(level):
    if level == MemoryLevel.L1:
        return LoadOutcome(l1_hit=True, l2_hit=True, latency=5, line=0)
    if level == MemoryLevel.L2:
        return LoadOutcome(l1_hit=False, l2_hit=True, latency=12, line=0)
    return LoadOutcome(l1_hit=False, l2_hit=False, latency=80, line=0)


class TestMemoryLevel:
    def test_of_outcome(self):
        assert MemoryLevel.of(outcome(MemoryLevel.L1)) is MemoryLevel.L1
        assert MemoryLevel.of(outcome(MemoryLevel.L2)) is MemoryLevel.L2
        assert MemoryLevel.of(outcome(MemoryLevel.MEMORY)) is \
               MemoryLevel.MEMORY


class TestLevelStats:
    def test_accuracy(self):
        s = LevelStats()
        s.record(MemoryLevel.L1, MemoryLevel.L1)
        s.record(MemoryLevel.MEMORY, MemoryLevel.L1)
        assert s.accuracy == pytest.approx(0.5)

    def test_caught(self):
        s = LevelStats()
        s.record(MemoryLevel.MEMORY, MemoryLevel.MEMORY)
        s.record(MemoryLevel.MEMORY, MemoryLevel.L1)
        assert s.caught(MemoryLevel.MEMORY) == pytest.approx(0.5)
        assert s.caught(MemoryLevel.L2) == 0.0

    def test_empty(self):
        assert LevelStats().accuracy == 0.0


class TestMultiLevelHMP:
    def test_cold_predicts_l1(self):
        """The status-quo default: everything is an L1 hit."""
        assert MultiLevelHMP().predict_level(0x100) is MemoryLevel.L1

    def test_learns_memory_bound_load(self):
        hmp = MultiLevelHMP()
        for _ in range(20):
            hmp.update(0x100, outcome(MemoryLevel.MEMORY))
        assert hmp.predict_level(0x100) is MemoryLevel.MEMORY

    def test_learns_l2_resident_load(self):
        hmp = MultiLevelHMP()
        for _ in range(20):
            hmp.update(0x100, outcome(MemoryLevel.L2))
        assert hmp.predict_level(0x100) is MemoryLevel.L2

    def test_l2_component_untouched_by_l1_hits(self):
        hmp = MultiLevelHMP()
        for _ in range(20):
            hmp.update(0x100, outcome(MemoryLevel.L1))
        # The L2 predictor saw nothing; its cold default is hit.
        assert hmp.l2.predict_hit(0x100)

    def test_predict_latency_mapping(self):
        hmp = MultiLevelHMP()
        for _ in range(20):
            hmp.update(0x100, outcome(MemoryLevel.MEMORY))
        latency = hmp.predict_latency(0x100, l1_latency=5, l2_latency=12,
                                      memory_latency=80)
        assert latency == 80

    def test_stats_accumulate(self):
        hmp = MultiLevelHMP()
        # The local components need ~10 updates per history state to
        # warm; measure recall over a longer run.
        for _ in range(40):
            hmp.update(0x100, outcome(MemoryLevel.MEMORY))
        assert hmp.stats.total == 40
        assert hmp.stats.caught(MemoryLevel.MEMORY) > 0.5

    def test_reset(self):
        hmp = MultiLevelHMP()
        for _ in range(20):
            hmp.update(0x100, outcome(MemoryLevel.MEMORY))
        hmp.reset()
        assert hmp.predict_level(0x100) is MemoryLevel.L1
        assert hmp.stats.total == 0

    def test_with_real_hierarchy(self):
        """Streaming loads over an L2-resident region become predictable
        L2 accesses after a lap."""
        hierarchy = MemoryHierarchy(MemoryConfig(
            l1d=CacheConfig(size_bytes=1024, ways=2),
            l2=CacheConfig(size_bytes=64 * 1024, ways=4)))
        hmp = MultiLevelHMP()
        now = 0
        # Two laps over 32KB at line granularity (L1 1KB, L2 64KB).
        for lap in range(3):
            for i in range(512):
                address = 0x10000 + i * 64
                out = hierarchy.load(address, now)
                hmp.update(0x100, out, now)
                now += 100
        # Third-lap loads hit L2 (region exceeds L1, fits L2).
        assert hmp.predict_level(0x100) is MemoryLevel.L2
