"""Chaos battery: crashes must be unobservable too.

Every test drives a real fleet through a seeded failure — a worker
killed *mid-batch* by its fault plan, a hard SIGKILL under load, a
router restart — and asserts the two invariants the WAL design
promises:

* **zero lost accepted requests**: every future returned by ``submit``
  resolves ``ok``, across any number of worker deaths;
* **no duplicate state updates**: after recovery, each session's
  predictor state is *bit-identical* (pickled bytes) to a shadow
  scalar oracle that applied the same stream exactly once — a replayed
  record that trained twice, or a dropped one, flips table bytes and
  fails the comparison.

Failures are seeded and deterministic (``FleetFaultPlan`` travels to
the worker and triggers on its served-request counter, not on a
timer), so a red run reproduces.
"""

import asyncio
import pickle
import random

import pytest

from repro.api import build_predictor, spec_for
from repro.robust.faults import FleetFaultPlan
from repro.serve import PredictRequest, ServeConfig
from repro.serve.batch import apply_step
from repro.serve.fleet import ServeFleet
from repro.serve.snapshot import load_snapshot

SPEC = spec_for("binary.gshare", history=7)
CONFIG = ServeConfig(n_shards=2, max_batch=64, max_delay_us=200,
                     backend="vectorized", min_kernel_run=4)


def _steps(seed, n):
    rng = random.Random(seed)
    return [(0x400 + 4 * rng.randrange(16), rng.randrange(2))
            for _ in range(n)]


def _canonical_bytes(predictor) -> bytes:
    """Canonical pickled form: one dump/load round-trip first.

    Raw ``pickle.dumps`` is not byte-stable across process hops — the
    memo stream depends on which sub-objects happen to be shared
    in-process — but it reaches a fixed point after one round-trip, so
    canonicalising both sides makes byte equality mean state equality.
    """
    once = pickle.loads(pickle.dumps(predictor,
                                     protocol=pickle.HIGHEST_PROTOCOL))
    return pickle.dumps(once, protocol=pickle.HIGHEST_PROTOCOL)


def _shadow_state(steps):
    """The oracle: one fresh predictor, the stream applied once."""
    predictor = build_predictor(SPEC, backend="vectorized")
    for pc, outcome in steps:
        apply_step(SPEC.family, predictor, pc, outcome)
    return _canonical_bytes(predictor)


async def _drive(fleet, workload, seq0=0):
    futures = {sid: [] for sid in workload}
    for sid, steps in workload.items():
        for i, (pc, outcome) in enumerate(steps):
            futures[sid].append(fleet.submit(PredictRequest(
                sid, op="step", pc=pc, outcome=outcome, seq=seq0 + i)))
    results = {}
    for sid, fs in futures.items():
        responses = await asyncio.gather(*fs)
        assert all(r.ok for r in responses), [
            r.error for r in responses if not r.ok][:3]
        results[sid] = [r.result for r in responses]
    return results


async def _fleet_session_states(fleet):
    """Every session's pickled predictor bytes, via the public
    snapshot path (a same-size resize quiesces + persists snapshots
    without moving anything)."""
    await fleet.resize(len(fleet.worker_names))
    merged = {}
    for name in fleet.worker_names:
        snap = load_snapshot(fleet.state_dir, f"snap-{name}")
        assert snap is not None, f"no snapshot for {name}"
        for sid, state in snap["sessions"].items():
            merged[sid] = (_canonical_bytes(state["predictor"]),
                           int(state["served"]))
    return merged


def _assert_states_match_oracle(states, workload):
    assert set(states) == set(workload)
    for sid, steps in workload.items():
        predictor_bytes, served = states[sid]
        assert served == len(steps), (
            f"{sid}: served {served} != {len(steps)} — a lost or "
            f"double-applied update")
        assert predictor_bytes == _shadow_state(steps), (
            f"{sid}: predictor state diverged from the exactly-once "
            f"shadow oracle")


def _scalar_oracle(steps):
    predictor = build_predictor(SPEC)
    return [apply_step(SPEC.family, predictor, pc, outcome)
            for pc, outcome in steps]


def _chaos_run(tmp_path, plan, run_tag):
    """One seeded kill-mid-batch run; returns (results, states, stats)."""
    workload = {f"c{i:02d}": _steps(500 + i, 80) for i in range(12)}

    async def main():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path / run_tag),
                              fault_plan=plan) as fleet:
            for sid in workload:
                await fleet.open_session(sid, SPEC)
            results = await _drive(fleet, workload)
            await fleet.wait_all_live()
            states = await _fleet_session_states(fleet)
            return results, states, fleet.stats()["totals"]

    return workload, *asyncio.run(main())


@pytest.mark.slow
def test_seeded_kill_mid_batch_zero_lost_exactly_once(tmp_path):
    """Worker 0 dies after its 64th executed request — inside a batch,
    with futures outstanding.  Recovery must answer everything and
    train nothing twice."""
    plan = FleetFaultPlan(seed=9, kill_workers=(0,), kill_after_served=64)
    workload, results, states, totals = _chaos_run(tmp_path, plan, "a")
    assert totals["worker_deaths"] == 1
    assert totals["recoveries"] == 1
    for sid, steps in workload.items():
        assert results[sid] == _scalar_oracle(steps)
    _assert_states_match_oracle(states, workload)


@pytest.mark.slow
def test_seeded_chaos_is_deterministic(tmp_path):
    """Same plan, same seed, fresh fleet: byte-identical response
    streams and final states both times."""
    plan = FleetFaultPlan(seed=9, kill_workers=(0,), kill_after_served=64)
    _, results1, states1, totals1 = _chaos_run(tmp_path, plan, "r1")
    _, results2, states2, totals2 = _chaos_run(tmp_path, plan, "r2")
    assert results1 == results2
    assert states1 == states2
    assert totals1["worker_deaths"] == totals2["worker_deaths"] == 1


def test_hard_kill_under_load_zero_lost(tmp_path):
    """SIGKILL (no fault plan, no cooperation from the worker) while a
    wave of requests is outstanding."""
    workload = {f"h{i:02d}": _steps(700 + i, 60) for i in range(10)}

    async def main():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            for sid in workload:
                await fleet.open_session(sid, SPEC)
            futures = {sid: [] for sid in workload}
            for sid, steps in workload.items():
                for i, (pc, outcome) in enumerate(steps):
                    futures[sid].append(fleet.submit(PredictRequest(
                        sid, op="step", pc=pc, outcome=outcome, seq=i)))
            # Kill while those futures are in flight.
            await fleet.kill_worker(fleet.worker_names[0])
            results = {}
            for sid, fs in futures.items():
                responses = await asyncio.gather(*fs)
                assert all(r.ok for r in responses)
                results[sid] = [r.result for r in responses]
            await fleet.wait_all_live()
            states = await _fleet_session_states(fleet)
            return results, states, fleet.stats()["totals"]

    results, states, totals = asyncio.run(main())
    assert totals["worker_deaths"] >= 1
    for sid, steps in workload.items():
        assert results[sid] == _scalar_oracle(steps)
    _assert_states_match_oracle(states, workload)


@pytest.mark.slow
def test_router_restart_replays_wal_exactly_once(tmp_path):
    """Phase 1 trains sessions and stops mid-life (snapshots + WAL on
    disk).  A fresh router adopts the manifest and rebuilds workers by
    snapshot + full WAL replay; the recovered state must equal the
    exactly-once oracle and traffic must continue seamlessly."""
    workload = {f"p{i:02d}": _steps(900 + i, 50) for i in range(8)}

    async def phase1():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            for sid in workload:
                await fleet.open_session(sid, SPEC)
            return await _drive(
                fleet, {sid: s[:25] for sid, s in workload.items()})

    async def phase2():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            await fleet.wait_all_live()
            states = await _fleet_session_states(fleet)
            tail = await _drive(
                fleet, {sid: s[25:] for sid, s in workload.items()},
                seq0=25)
            return states, tail

    head = asyncio.run(phase1())
    states, tail = asyncio.run(phase2())
    _assert_states_match_oracle(
        states, {sid: s[:25] for sid, s in workload.items()})
    for sid, steps in workload.items():
        assert head[sid] + tail[sid] == _scalar_oracle(steps)


@pytest.mark.slow
def test_kill_during_replay_windows(tmp_path):
    """The replay op crosses the crash boundary too: windows accepted
    before a kill are re-executed from the WAL with the same digest."""
    from repro.serve.batch import replay_digest

    plan = FleetFaultPlan(seed=5, kill_workers=(0, 1),
                          kill_after_served=6)
    sessions = {f"w{i}": _steps(40 + i, 64) for i in range(6)}

    async def main():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path),
                              fault_plan=plan) as fleet:
            for sid in sessions:
                await fleet.open_session(sid, SPEC)
            futures = {}
            for sid, steps in sessions.items():
                futures[sid] = [
                    fleet.submit(PredictRequest(
                        sid, op="replay", seq=k,
                        pcs=tuple(pc for pc, _ in steps[k * 16:
                                                       (k + 1) * 16]),
                        outcomes=tuple(o for _, o in steps[k * 16:
                                                           (k + 1) * 16])))
                    for k in range(4)]
            digests = {}
            for sid, fs in futures.items():
                responses = await asyncio.gather(*fs)
                assert all(r.ok for r in responses), [
                    r.error for r in responses if not r.ok][:3]
                digests[sid] = [r.result for r in responses]
            await fleet.wait_all_live()
            return digests, fleet.stats()["totals"]

    digests, totals = asyncio.run(main())
    assert totals["worker_deaths"] >= 1, "the fault plan never fired"
    for sid, steps in sessions.items():
        predictor = build_predictor(SPEC)
        want = [replay_digest([
            apply_step(SPEC.family, predictor, pc, outcome)
            for pc, outcome in steps[k * 16:(k + 1) * 16]])
            for k in range(4)]
        assert digests[sid] == want
