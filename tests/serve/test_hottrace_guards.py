"""Negative-guard battery: every abort leaves zero state corruption.

Each test drives a speculating session into a state where a captured
trace is *stale or poisoned*, forces the guarded replay down one abort
path (state drift, lane/addr mismatch, spec change, mid-trace squash,
oracle divergence), and proves the session's predictor ends
byte-identical — canonicalized pickle equality — to a shadow-oracle
twin that never speculated at all.  The ISSUE's zero-tolerance
abort-correctness property, pinned per guard class.

Positive paths and service wiring live in ``test_hottrace.py``.
"""

import pickle

import pytest

from repro.api import ExecutionPolicy, spec_for
from repro.fastpath.hottrace import (
    HotTraceEngine,
    HotTraceViolation,
    _canonical_state,
)
from repro.serve.batch import (
    VIA_HOTTRACE,
    apply_update,
    execute_step_arrays_ex,
    scalar_steps,
)
from repro.serve.session import Session

SPEC = spec_for("binary.gshare", history=4)
POLICY = ExecutionPolicy(backend="reference", hottrace=True,
                         hot_threshold=1, min_trace_len=4)


def window(outcome, n=8, pc=0x40):
    return [pc] * n, [outcome] * n, [-1] * n


def execute(engine, session, lanes):
    pcs, outcomes, distances = lanes
    return execute_step_arrays_ex(session, pcs, outcomes, distances,
                                  "reference", 8, engine)


def shadow_execute(twin, lanes):
    pcs, outcomes, distances = lanes
    return scalar_steps(twin.family, twin.predictor, pcs, outcomes,
                        distances)


def state_bytes(session):
    return _canonical_state(pickle.dumps(
        session.predictor, protocol=pickle.HIGHEST_PROTOCOL))


def converge(engine, session, twin, lanes_fn, rounds=3):
    """Drive the same window until the memo hits (fixed point)."""
    for _ in range(rounds):
        lanes = lanes_fn()
        results, via = execute(engine, session, lanes)
        assert results == shadow_execute(twin, lanes)
    assert via == VIA_HOTTRACE
    return via


def hitting_trace(session):
    """The (sole) captured trace the converged session replays."""
    traces = [t for t in session.hottrace.traces.values() if t.hits > 0]
    assert len(traces) == 1
    return traces[0]


def assert_aborted_cleanly(engine, session, twin, kind, lanes):
    """One post-abort contract for every guard class: the abort is
    counted and classified, the stale capture is dropped, the window
    still answered correctly through the normal path, and the
    predictor is byte-identical to the never-speculated twin."""
    c = engine.counters
    before = (c.aborts, getattr(c, f"abort_{kind}"), c.hits)
    results, via = execute(engine, session, lanes)
    assert via != VIA_HOTTRACE
    assert results == shadow_execute(twin, lanes)
    assert state_bytes(session) == state_bytes(twin)
    assert c.aborts == before[0] + 1
    assert getattr(c, f"abort_{kind}") == before[1] + 1
    assert c.hits == before[2]
    assert engine.last_abort == kind
    assert c.abort_mismatch == 0


def test_lane_mismatch_aborts_without_corruption():
    # A window-digest collision delivering *different* lanes must be
    # caught by the exact-lane guard, not answered from the memo.
    engine = HotTraceEngine(POLICY)
    session, twin = Session("s", SPEC), Session("t", SPEC)
    converge(engine, session, twin, lambda: window(1))
    trace = hitting_trace(session)
    # Simulate the collision: the capture's lanes are not the ones the
    # (identically digested) incoming window carries.
    trace.lanes = (trace.lanes[0], tuple(
        1 - o for o in trace.lanes[1]), trace.lanes[2])
    assert_aborted_cleanly(engine, session, twin, "lanes", window(1))
    # The poisoned capture was dropped; the window re-captures and
    # hits again.
    lanes = window(1)
    results, via = execute(engine, session, lanes)
    assert results == shadow_execute(twin, lanes)
    lanes = window(1)
    results, via = execute(engine, session, lanes)
    assert via == VIA_HOTTRACE
    assert results == shadow_execute(twin, lanes)
    assert state_bytes(session) == state_bytes(twin)


def test_spec_change_aborts_without_corruption():
    engine = HotTraceEngine(POLICY)
    session, twin = Session("s", SPEC), Session("t", SPEC)
    converge(engine, session, twin, lambda: window(1))
    # A capture from "another spec's life" (session rebuilt under a
    # different scheme) must never answer this session's windows.
    hitting_trace(session).spec_kind = "binary.bimodal"
    assert_aborted_cleanly(engine, session, twin, "spec", window(1))


def test_mid_trace_squash_commit_abort():
    # The serving analogue of a mid-trace squash: the committed
    # post-state fails to materialize.  Needs a NON-fixed-point trace
    # (a fixed-point hit never rehydrates), so use the period-2
    # alternating cycle and poison one edge's post_state.
    engine = HotTraceEngine(POLICY)
    session, twin = Session("s", SPEC), Session("t", SPEC)
    via = None
    while via != VIA_HOTTRACE:
        for outcome in (1, 0):
            lanes = window(outcome)
            results, via = execute(engine, session, lanes)
            assert results == shadow_execute(twin, lanes)
    # Poison every rehydrating edge (the other steady-state edge may
    # not have hit yet but will on the next round).
    poisoned = [t for t in session.hottrace.traces.values()
                if t.post_digest != t.pre_digest]
    assert any(t.hits > 0 for t in poisoned)
    for trace in poisoned:
        trace.post_state = b"\x80\x05not a pickle"
    # Whichever poisoned edge comes up next must squash cleanly.
    aborts_before = engine.counters.abort_commit
    for outcome in (1, 0):
        lanes = window(outcome)
        results, via = execute(engine, session, lanes)
        assert via != VIA_HOTTRACE
        assert results == shadow_execute(twin, lanes)
        assert state_bytes(session) == state_bytes(twin)
    assert engine.counters.abort_commit > aborts_before
    assert engine.last_abort == "commit"
    assert engine.counters.abort_mismatch == 0


def test_state_drift_is_a_miss_not_a_wrong_answer():
    # An out-of-band mutation between capture and the next occurrence:
    # the pre-state digest no longer matches, so the stale capture
    # must simply never be found — no hit, no corruption.
    engine = HotTraceEngine(POLICY)
    session, twin = Session("s", SPEC), Session("t", SPEC)
    converge(engine, session, twin, lambda: window(1))
    hits_before = engine.counters.hits
    # Drift both predictors identically, the way a shard's lone
    # `update` op does it: direct apply + note_mutation.
    apply_update(session.family, session.predictor, 0x48, 0)
    apply_update(twin.family, twin.predictor, 0x48, 0)
    HotTraceEngine.note_mutation(session)
    assert session.hottrace.state_digest is None
    lanes = window(1)
    results, via = execute(engine, session, lanes)
    assert via != VIA_HOTTRACE
    assert results == shadow_execute(twin, lanes)
    assert state_bytes(session) == state_bytes(twin)
    assert engine.counters.hits == hits_before
    # Drift is not a guard failure: the memo was never probed with a
    # matching key, so nothing aborts.
    assert engine.counters.abort_state == 0


def _fail_update_after(predictor, n):
    """Shadow the predictor's ``update`` with one that dies after ``n``
    successful calls — a window that mutates partway, then raises."""
    real = predictor.update
    calls = {"n": 0}

    def flaky(pc, outcome, *args, **kwargs):
        if calls["n"] >= n:
            raise RuntimeError("window died mid-flight")
        calls["n"] += 1
        return real(pc, outcome, *args, **kwargs)

    predictor.update = flaky


def test_mid_window_exception_breaks_digest_chain():
    # Regression: a window that raises partway through execution (after
    # mutating the predictor) never reaches record(), so the chained
    # digest used to keep describing the *pre-window* state.  The next
    # occurrence of a hot window then guard-passed against the stale
    # capture and answered stale results from drifted state.  The
    # executor must break the chain on ANY mid-window exception.
    engine = HotTraceEngine(POLICY)
    session, twin = Session("s", SPEC), Session("t", SPEC)
    converge(engine, session, twin, lambda: window(1))
    assert session.hottrace.state_digest is not None

    for sess in (session, twin):
        _fail_update_after(sess.predictor, 3)
    lanes = window(0, pc=0x44)
    with pytest.raises(RuntimeError, match="mid-flight"):
        execute(engine, session, lanes)
    with pytest.raises(RuntimeError, match="mid-flight"):
        shadow_execute(twin, lanes)
    for sess in (session, twin):
        del sess.predictor.update  # restore the real bound method

    # The fix: the chain is broken, so the engine re-fingerprints the
    # true (drifted) state instead of trusting the stale digest.
    assert session.hottrace.state_digest is None
    for _ in range(3):
        lanes = window(1)
        results, via = execute(engine, session, lanes)
        assert results == shadow_execute(twin, lanes)
        assert state_bytes(session) == state_bytes(twin)
    assert engine.counters.abort_mismatch == 0


def test_abort_events_attribute_the_aborting_session():
    # The shard drains (session_id, guard) records into obs events:
    # one per abort, attributed to the session that aborted — not the
    # session that happened to be executing at drain time.
    engine = HotTraceEngine(POLICY)
    pairs = [(Session("a", SPEC), Session("ta", SPEC)),
             (Session("b", SPEC), Session("tb", SPEC))]
    for session, twin in pairs:
        converge(engine, session, twin, lambda: window(1))
        hitting_trace(session).spec_kind = "binary.bimodal"
    for session, twin in pairs:
        lanes = window(1)
        results, via = execute(engine, session, lanes)
        assert via != VIA_HOTTRACE
        assert results == shadow_execute(twin, lanes)
    assert engine.drain_abort_events() == [("a", "spec"), ("b", "spec")]
    assert engine.drain_abort_events() == []


def test_unpicklable_predictor_never_speculates():
    engine = HotTraceEngine(POLICY)
    session, twin = Session("s", SPEC), Session("t", SPEC)
    converge(engine, session, twin, lambda: window(1))

    class Unpicklable:
        def __reduce__(self):
            raise TypeError("no pickling")

    session.predictor.poison = Unpicklable()
    HotTraceEngine.note_mutation(session)
    captures_before = engine.counters.captures
    hits_before = engine.counters.hits
    for _ in range(3):
        lanes = window(1)
        results, via = execute(engine, session, lanes)
        assert via != VIA_HOTTRACE
        assert results == shadow_execute(twin, lanes)
    assert engine.counters.captures == captures_before
    assert engine.counters.hits == hits_before


def test_armed_oracle_raises_on_poisoned_results():
    engine = HotTraceEngine(POLICY.replace(check_invariants="on"))
    session, twin = Session("s", SPEC), Session("t", SPEC)
    converge(engine, session, twin, lambda: window(1))
    state_before = state_bytes(session)
    trace = hitting_trace(session)
    poisoned = list(trace.results)
    poisoned[-1] = 1 - poisoned[-1]
    trace.results = tuple(poisoned)
    pcs, outcomes, distances = window(1)
    with pytest.raises(HotTraceViolation, match="diverging"):
        engine.try_replay(session, pcs, outcomes, distances)
    assert engine.counters.abort_mismatch == 1
    # The violation fired *before* the reference swap: state untouched.
    assert state_bytes(session) == state_before


def test_armed_oracle_raises_on_poisoned_post_state():
    engine = HotTraceEngine(POLICY.replace(check_invariants="on"))
    session, twin = Session("s", SPEC), Session("t", SPEC)
    # Non-fixed-point edge so the post-state actually matters.
    via = None
    while via != VIA_HOTTRACE:
        for outcome in (1, 0):
            lanes = window(outcome)
            _, via = execute(engine, session, lanes)
            shadow_execute(twin, lanes)
    assert engine.counters.abort_mismatch == 0
    # Poison the post-state of every rehydrating edge with a *valid*
    # pickle of the wrong state: the commit guard cannot catch it, the
    # oracle must.
    wrong = pickle.dumps(Session("x", SPEC).predictor,
                         protocol=pickle.HIGHEST_PROTOCOL)
    for trace in session.hottrace.traces.values():
        if trace.post_digest != trace.pre_digest:
            trace.post_state = wrong
    state_before = state_bytes(session)
    raised = 0
    for outcome in (1, 0):
        pcs, outcomes, distances = window(outcome)
        try:
            engine.try_replay(session, pcs, outcomes, distances)
        except HotTraceViolation:
            raised += 1
            break
    assert raised == 1
    assert engine.counters.abort_mismatch == 1
    assert state_bytes(session) == state_before
