"""End-to-end request tracing through the serving tier."""

import asyncio

import pytest

from repro.api import spec_for
from repro.serve.config import ServeConfig
from repro.serve.protocol import PredictRequest
from repro.serve.service import PredictionService


def run(coro):
    return asyncio.run(coro)


async def _drive(config, n=64, session="traced"):
    service = PredictionService(config)
    await service.start()
    await service.open_session(session, spec_for("hmp.hybrid"))
    futures = [service.submit(PredictRequest(session, op="step",
                                             pc=0x40 + 4 * (i % 16),
                                             outcome=i & 1, seq=i))
               for i in range(n)]
    responses = [await f for f in futures]
    await service.stop()
    assert all(r.ok for r in responses)
    return service


class TestSpanLifecycle:
    def test_traced_request_yields_named_stages(self):
        # The acceptance criterion: >= 4 named spans per traced
        # request (decode, queue, batch, kernel/predict, reply).
        config = ServeConfig(n_shards=1, trace_sample_shift=0,
                             backend="reference")
        service = run(_drive(config))
        tracer = service.tracer
        assert tracer.counters()["spans_finished"] == 64
        span = tracer.spans[-1]
        stages = [stage for stage, _ in span.marks]
        assert len(stages) >= 4
        assert stages[0] == "decode" and stages[-1] == "reply"
        assert "queue" in stages and "batch" in stages
        assert "predict" in stages or "kernel" in stages

    def test_kernel_stage_on_vectorized_backend(self):
        pytest.importorskip("numpy")
        config = ServeConfig(n_shards=1, trace_sample_shift=0,
                             backend="vectorized", max_batch=256,
                             max_delay_us=2000, min_kernel_run=1)
        service = run(_drive(config))
        seen = set()
        for span in service.tracer.spans:
            seen.update(stage for stage, _ in span.marks)
        assert "kernel" in seen

    def test_every_started_span_finishes(self):
        config = ServeConfig(n_shards=2, trace_sample_shift=0)
        service = run(_drive(config, n=100))
        counters = service.tracer.counters()
        assert counters["spans_started"] == 100
        assert counters["spans_finished"] == 100

    def test_sampling_shift_limits_spans(self):
        config = ServeConfig(n_shards=1, trace_sample_shift=3)
        service = run(_drive(config, n=64))
        counters = service.tracer.counters()
        assert counters["spans_started"] == 8  # 1 in 2**3
        assert counters["spans_finished"] == 8

    def test_telemetry_off_mints_no_tracer(self):
        config = ServeConfig(n_shards=1, telemetry=False)
        service = run(_drive(config))
        assert service.tracer is None

    def test_rejected_request_span_is_closed(self):
        async def scenario():
            config = ServeConfig(n_shards=1, trace_sample_shift=0)
            service = PredictionService(config)
            await service.start()
            await service.stop()  # not accepting anymore
            response = await service.submit(
                PredictRequest("s", op="step", pc=0x40, outcome=1))
            assert not response.ok
            return service

        service = run(scenario())
        counters = service.tracer.counters()
        assert counters["spans_started"] == counters["spans_finished"]


class TestAggregates:
    def test_summary_separates_queue_from_service(self):
        config = ServeConfig(n_shards=1, trace_sample_shift=0,
                             backend="reference")
        service = run(_drive(config))
        summary = service.tracer.summary()
        assert "queue" in summary and "total" in summary
        assert "predict" in summary or "kernel" in summary
        assert summary["queue"]["count"] == 64

    def test_metrics_snapshot_exposes_trace_and_batch_hists(self):
        config = ServeConfig(n_shards=1, trace_sample_shift=0)
        service = run(_drive(config))
        snapshot = service.metrics_snapshot()
        assert snapshot["trace.spans_finished"] == 64
        assert snapshot["serve.served"] == 64
        assert "serve.batch_size.p50" in snapshot
        assert "trace.stage_us.queue.p99" in snapshot
        assert "trace.total_us.count" in snapshot

    def test_chrome_export_has_all_stage_slices(self, tmp_path):
        config = ServeConfig(n_shards=1, trace_sample_shift=0,
                             backend="reference")
        service = run(_drive(config))
        doc = service.tracer.chrome_document()
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert {"decode", "queue", "batch", "reply"} <= names
        assert names & {"predict", "kernel"}
        path = tmp_path / "spans.trace.json"
        service.tracer.write_chrome(str(path))
        assert path.stat().st_size > 0


class TestWireTracing:
    def test_tcp_requests_are_traced_at_decode(self):
        async def scenario():
            from repro.serve.net import JsonlClient, serve_tcp
            config = ServeConfig(n_shards=1, trace_sample_shift=0)
            service = PredictionService(config)
            await service.start()
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await JsonlClient.connect("127.0.0.1", port)
            spec = spec_for("hmp.local")
            await client.roundtrip(PredictRequest(
                "wire", op="open", spec=spec.to_json_dict(), seq=0))
            for i in range(8):
                response = await client.roundtrip(PredictRequest(
                    "wire", op="step", pc=0x80, outcome=1, seq=i + 1))
                assert response.ok
            await client.close()
            server.close()
            await server.wait_closed()
            await service.stop()
            return service

        service = run(scenario())
        counters = service.tracer.counters()
        # open + steps each minted a span at protocol decode; all closed.
        assert counters["spans_started"] >= 9
        assert counters["spans_finished"] == counters["spans_started"]
        step_span = next(s for s in service.tracer.spans
                         if any(stage == "queue" for stage, _ in s.marks))
        stages = [stage for stage, _ in step_span.marks]
        assert stages[0] == "decode" and stages[-1] == "reply"
        assert len(stages) >= 4
