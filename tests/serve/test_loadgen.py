"""Load model and loop-discipline tests.

The load generator's claims: schedules are deterministic functions of
the model, Zipf popularity really skews traffic onto a hot head, a
million-session id space costs nothing until touched, trace windows
(``chunk_steps``) change the request op without changing the arrival
process — and the open loop reports honest overload numbers (fat tail,
retry-after rejections) instead of deadlocking on a saturated service.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serve import PredictionService, ServeConfig
from repro.serve.loadgen import (
    LoadModel,
    build_schedule,
    run_closed_loop,
    run_open_loop,
)

BASE = dict(n_sessions=500, spec_kind="binary.gshare", rate_rps=2000.0,
            seconds=0.25, clients=4, seed=7)


def test_schedule_is_deterministic_in_the_seed():
    a = build_schedule(LoadModel(**BASE))
    b = build_schedule(LoadModel(**BASE))
    c = build_schedule(LoadModel(**{**BASE, "seed": 8}))
    assert np.array_equal(a.times_s, b.times_s)
    assert np.array_equal(a.session_ranks, b.session_ranks)
    assert np.array_equal(a.pcs, b.pcs)
    assert np.array_equal(a.outcomes, b.outcomes)
    assert not np.array_equal(a.session_ranks, c.session_ranks)


def test_zipf_head_dominates():
    sched = build_schedule(LoadModel(**{**BASE, "seconds": 1.0,
                                        "zipf_s": 1.2}))
    ranks = sched.session_ranks
    head_share = np.mean(ranks < 10)
    assert head_share > 0.3, "top-10 sessions should take a fat share"
    assert sched.touched_sessions < len(sched), "tail must stay cold"


def test_million_session_space_is_lazy():
    model = LoadModel(**{**BASE, "n_sessions": 1_000_000})
    sched = build_schedule(model)
    assert len(sched) > 100
    # Nameable ≠ materialised: the schedule touches a tiny fraction.
    assert sched.touched_sessions < len(sched)
    assert int(sched.session_ranks.max()) < 1_000_000
    request = sched.request_for(0, seq=0)
    assert request.session_id.startswith("z")


def test_arrival_processes():
    for arrival in ("poisson", "uniform", "bursty"):
        sched = build_schedule(LoadModel(**{**BASE, "arrival": arrival}))
        times = sched.times_s
        assert np.all(np.diff(times) >= 0), "arrivals must be sorted"
        assert times[-1] < 0.25
    with pytest.raises(ValueError):
        LoadModel(**{**BASE, "arrival": "thundering-herd"})


def test_chunk_steps_builds_replay_windows():
    model = LoadModel(**{**BASE, "chunk_steps": 16})
    sched = build_schedule(model)
    assert sched.pcs.shape == (len(sched), 16)
    request = sched.request_for(3, seq=99)
    assert request.op == "replay"
    assert len(request.pcs) == 16 and len(request.outcomes) == 16
    assert request.seq == 99
    # chunk_steps == 1 stays plain per-step traffic.
    step = build_schedule(LoadModel(**BASE)).request_for(3, seq=99)
    assert step.op == "step" and step.pc is not None
    with pytest.raises(ValueError):
        LoadModel(**{**BASE, "chunk_steps": 0})


def test_open_loop_under_overload_reports_tail_without_deadlock():
    """Offer ~8× what a deliberately tiny service can absorb: the loop
    must terminate, classify every arrival (zero lost), and report a
    p99 — the honest-overload contract."""
    model = LoadModel(n_sessions=50, spec_kind="binary.gshare",
                      rate_rps=4000.0, seconds=0.4, clients=4, seed=3)
    config = ServeConfig(n_shards=1, max_batch=8, max_delay_us=500,
                         queue_depth=64, backend="reference")

    async def main():
        async with PredictionService(config) as service:
            return await asyncio.wait_for(
                run_open_loop(service, model, settle_timeout_s=20.0),
                timeout=30.0)

    report = asyncio.run(main())
    assert report["lost"] == 0
    assert report["errors"] == 0
    assert report["ok"] + report["rejected"] == report["submitted"]
    assert report["latency_us"]["count"] == report["ok"]
    assert report["latency_us"]["p99"] >= report["latency_us"]["p50"]
    assert report["offered_rps"] > report["achieved_rps"]
    # The report feeds json.dump in the bench: no live objects allowed
    # (hist.mean is a method — forgetting the call once shipped a bound
    # method into the report and broke write_report).
    json.dumps(report)


def test_closed_loop_probe_reports_capacity():
    model = LoadModel(n_sessions=50, spec_kind="binary.gshare",
                      rate_rps=100.0, seconds=0.2, clients=2, seed=3)
    config = ServeConfig(n_shards=1, max_batch=32, max_delay_us=200,
                         backend="reference")

    async def main():
        async with PredictionService(config) as service:
            return await run_closed_loop(service, model, window=4)

    report = asyncio.run(main())
    assert report["ok"] > 0
    assert report["errors"] == 0
    assert report["achieved_rps"] > 0
    assert report["achieved_steps_rps"] == pytest.approx(
        report["achieved_rps"])
