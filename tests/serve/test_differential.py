"""The serving differential: concurrency must be unobservable.

A shuffled, concurrent client workload submitted through the service —
micro-batched, sharded, possibly kernel-executed, snapshotted and
restored midway — must yield, per session, the bit-identical prediction
stream a sequential scalar replay of that session's requests produces.
This is the serving layer's version of the fastpath exactness contract
(``tests/fastpath/``): batching is a throughput optimisation, never a
semantics change.
"""

import asyncio
import random

import pytest

from repro.api import build_predictor, spec_for
from repro.serve import PredictionService, PredictRequest, ServeConfig
from repro.serve.batch import apply_step

#: One session per spec kind: kernel-backed (hmp.*, cht.tagless,
#: binary.*, bank.a) and scalar-only (cht.tagged) predictors mix in the
#: same batches.
SESSION_SPECS = {
    "hyb": spec_for("hmp.hybrid", local_size=128, gskew_size=256),
    "loc": spec_for("hmp.local", size=128, history=4),
    "cht": spec_for("cht.tagless", size=128, track_distance=True),
    "tag": spec_for("cht.tagged", size=64, ways=2),
    "gsh": spec_for("binary.gshare", history=7),
    "bnk": spec_for("bank.a"),
}

STEPS_PER_SESSION = 240


def _workload(sid: str, seed: int):
    """Deterministic per-session step stream."""
    spec = SESSION_SPECS[sid]
    rng = random.Random(seed)
    requests = []
    for i in range(STEPS_PER_SESSION):
        pc = 0x400 + 4 * rng.randrange(10)
        outcome = rng.randrange(2)
        distance = None
        if spec.family == "cht" and outcome:
            distance = 1 + rng.randrange(4)
        requests.append(PredictRequest(sid, op="step", pc=pc,
                                       outcome=outcome,
                                       distance=distance, seq=i))
    return requests


def _sequential_reference(sid: str, requests) -> list:
    """The ground truth: one predictor, one request at a time."""
    spec = SESSION_SPECS[sid]
    predictor = build_predictor(spec)  # reference scalar path
    out = []
    for r in requests:
        distance = r.distance if (r.distance or 0) >= 1 else None
        out.append(apply_step(spec.family, predictor, r.pc,
                              int(r.outcome), distance=distance))
    return out


async def _submit_shuffled(service, pending, results, rng):
    """Drive all sessions concurrently in randomised interleavings,
    preserving per-session order, until ``pending`` is drained."""
    while any(pending.values()):
        order = [sid for sid, reqs in pending.items() if reqs]
        rng.shuffle(order)
        futures = []
        for sid in order:
            take = min(len(pending[sid]), 1 + rng.randrange(40))
            chunk, pending[sid] = pending[sid][:take], pending[sid][take:]
            futures.extend((sid, service.submit(r)) for r in chunk)
            if rng.random() < 0.3:
                await asyncio.sleep(0)  # let the shards interleave
        for sid, future in futures:
            response = await future
            assert response.ok, response
            results[sid].append(response.result)


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_concurrent_equals_sequential_across_restore(backend):
    rng = random.Random(1234)
    workloads = {sid: _workload(sid, seed=100 + i)
                 for i, sid in enumerate(SESSION_SPECS)}
    expected = {sid: _sequential_reference(sid, reqs)
                for sid, reqs in workloads.items()}

    async def main():
        results = {sid: [] for sid in SESSION_SPECS}
        half = STEPS_PER_SESSION // 2
        config = ServeConfig(n_shards=3, max_batch=128, max_delay_us=300,
                             backend=backend, min_kernel_run=4)
        async with PredictionService(config) as service:
            for sid, spec in SESSION_SPECS.items():
                await service.open_session(sid, spec)
            first = {sid: reqs[:half] for sid, reqs in workloads.items()}
            await _submit_shuffled(service, first, results, rng)
            payload = await service.snapshot_payload()

        # Second half continues on a *different* topology from the
        # restored snapshot.
        config2 = ServeConfig(n_shards=2, max_batch=64, max_delay_us=200,
                              backend=backend, min_kernel_run=4)
        async with PredictionService(config2) as service:
            await service.restore_payload(payload)
            second = {sid: reqs[half:] for sid, reqs in workloads.items()}
            await _submit_shuffled(service, second, results, rng)
        return results

    results = asyncio.run(main())
    for sid in SESSION_SPECS:
        assert results[sid] == expected[sid], (
            f"session {sid} ({SESSION_SPECS[sid].kind}) diverged from "
            f"sequential scalar replay on backend {backend}")
