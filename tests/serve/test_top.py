"""The ``repro.serve top`` dashboard: frame rendering and file tailing."""

import io
import json

from repro.serve.top import render_frame, run_top


def sample(t, **metrics):
    return {"t": t, "metrics": metrics}


class TestRenderFrame:
    def test_first_frame_shows_dashes_for_rates(self):
        frame = render_frame(None, sample(100.0, **{
            "serve.served": 500.0, "serve.queue_depth": 3.0}))
        assert "throughput" in frame
        assert "-" in frame  # no previous sample → no rate yet
        assert "500" in frame

    def test_rate_between_samples(self):
        prev = sample(100.0, **{"serve.served": 1000.0})
        curr = sample(102.0, **{"serve.served": 5000.0})
        frame = render_frame(prev, curr)
        assert "2,000" in frame  # (5000-1000)/2s

    def test_batch_and_stage_sections(self):
        curr = sample(10.0, **{
            "serve.served": 1.0,
            "serve.batch_size.count": 4.0,
            "serve.batch_size.mean": 32.0,
            "serve.batch_size.p50": 30.0,
            "serve.batch_size.p99": 60.0,
            "trace.stage_us.queue.count": 9.0,
            "trace.stage_us.queue.mean": 120.0,
            "trace.stage_us.queue.p50": 100.0,
            "trace.stage_us.queue.p99": 400.0,
            "trace.stage_us.kernel.count": 9.0,
            "trace.stage_us.kernel.p50": 50.0,
        })
        frame = render_frame(None, curr)
        assert "batch size" in frame
        lines = frame.splitlines()
        queue_row = next(i for i, l in enumerate(lines)
                         if l.strip().startswith("queue"))
        kernel_row = next(i for i, l in enumerate(lines)
                          if l.strip().startswith("kernel"))
        assert queue_row < kernel_row  # canonical pipeline order

    def test_counter_reset_clamps_rate_to_zero(self):
        prev = sample(1.0, **{"serve.served": 900.0})
        curr = sample(2.0, **{"serve.served": 10.0})  # restarted service
        frame = render_frame(prev, curr)
        assert "0.0 rps" in frame


class TestRunTop:
    def _write(self, path, rows):
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")

    def test_once_renders_latest_sample(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        self._write(path, [
            sample(1.0, **{"serve.served": 100.0}),
            sample(2.0, **{"serve.served": 600.0}),
        ])
        out = io.StringIO()
        assert run_top(str(path), once=True, out=out) == 0
        text = out.getvalue()
        assert "repro.serve top" in text
        assert "500" in text  # rate from the last two samples

    def test_once_with_missing_file_fails(self, tmp_path):
        assert run_top(str(tmp_path / "none.jsonl"), once=True,
                       out=io.StringIO()) == 1


class TestMonotonicRates:
    def test_rate_survives_backwards_wall_clock_step(self):
        # Wall time stepped back 10 minutes between samples (NTP);
        # the monotonic stamps are 2 s apart and must win.
        prev = {"t": 1000.0, "mt": 50.0,
                "metrics": {"serve.served": 1000.0}}
        curr = {"t": 400.0, "mt": 52.0,
                "metrics": {"serve.served": 5000.0}}
        frame = render_frame(prev, curr)
        assert "2,000" in frame  # (5000-1000)/2s, not "-"

    def test_rate_falls_back_to_wall_time_for_old_streams(self):
        # Streams recorded before the `mt` field existed still render.
        prev = {"t": 100.0, "metrics": {"serve.served": 1000.0}}
        curr = {"t": 102.0, "metrics": {"serve.served": 5000.0}}
        frame = render_frame(prev, curr)
        assert "2,000" in frame

    def test_forward_wall_step_cannot_deflate_rate(self):
        # Wall jumped forward an hour; monotonic says 1 s elapsed.
        prev = {"t": 100.0, "mt": 10.0,
                "metrics": {"serve.served": 0.0}}
        curr = {"t": 3700.0, "mt": 11.0,
                "metrics": {"serve.served": 500.0}}
        frame = render_frame(prev, curr)
        assert "500" in frame


class TestFleetSection:
    def test_single_process_stream_has_no_fleet_section(self):
        frame = render_frame(None, sample(5.0, **{"serve.served": 9.0}))
        assert "fleet" not in frame
        assert "worker" not in frame

    def test_fleet_summary_and_per_worker_rows(self):
        prev = sample(10.0, **{
            "fleet.workers": 2.0, "fleet.workers_alive": 2.0,
            "fleet.workers.0.served": 1000.0,
            "fleet.workers.1.served": 400.0,
        })
        curr = sample(12.0, **{
            "fleet.workers": 2.0, "fleet.workers_alive": 1.0,
            "fleet.worker_deaths": 1.0, "fleet.rebalances": 2.0,
            "fleet.sessions_moved": 37.0,
            "fleet.workers.0.alive": 1.0,
            "fleet.workers.0.served": 5000.0,
            "fleet.workers.0.outstanding": 4.0,
            "fleet.workers.0.sessions": 12.0,
            "fleet.workers.0.wal_records": 88.0,
            "fleet.workers.0.deaths": 0.0,
            "fleet.workers.1.alive": 0.0,
            "fleet.workers.1.served": 400.0,
            "fleet.workers.1.outstanding": 0.0,
            "fleet.workers.1.sessions": 8.0,
            "fleet.workers.1.wal_records": 12.0,
            "fleet.workers.1.deaths": 1.0,
        })
        frame = render_frame(prev, curr)
        assert "fleet" in frame
        assert "w0" in frame and "w1" in frame
        assert "2,000" in frame    # w0 rate: (5000-1000)/2s
        assert "DOWN" in frame     # w1 is dead in this sample
        assert "up" in frame
        assert "37" in frame       # sessions moved

    def test_worker_rows_sort_numerically(self):
        metrics = {}
        for index in (0, 2, 10):
            metrics[f"fleet.workers.{index}.alive"] = 1.0
            metrics[f"fleet.workers.{index}.served"] = 1.0
        frame = render_frame(None, sample(1.0, **{
            "fleet.workers": 3.0, **metrics}))
        lines = [l for l in frame.splitlines() if l.strip().startswith("w")]
        names = [l.split()[0] for l in lines if l.split()[0] != "worker"]
        assert names == ["w0", "w2", "w10"]
