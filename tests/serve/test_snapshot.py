"""Durable snapshots through the ResultCache envelope machinery."""

import asyncio

from repro.api import spec_for
from repro.serve import (
    PredictRequest,
    PredictionService,
    ServeConfig,
    load_snapshot,
    save_snapshot,
    snapshot_key,
)


def test_snapshot_key_binds_label():
    key_a, material_a = snapshot_key("nightly")
    key_b, _ = snapshot_key("weekly")
    assert key_a != key_b
    assert len(key_a) == 64
    assert "serve-snapshot" in material_a
    assert snapshot_key("nightly")[0] == key_a  # deterministic


def test_missing_snapshot_is_none(tmp_path):
    assert load_snapshot(str(tmp_path), "never-saved") is None


def test_round_trip_through_cache(tmp_path):
    async def capture():
        async with PredictionService(ServeConfig(n_shards=2)) as service:
            await service.open_session("s", spec_for("hmp.local",
                                                     size=64, history=2))
            for i in range(12):
                await service.request(PredictRequest(
                    "s", op="step", pc=0x80, outcome=0, seq=i))
            return await service.snapshot_payload()

    payload = asyncio.run(capture())
    key = save_snapshot(str(tmp_path), "test", payload)
    assert len(key) == 64

    loaded = load_snapshot(str(tmp_path), "test")
    assert loaded is not None
    assert set(loaded["sessions"]) == {"s"}

    async def restore():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            assert await service.restore_payload(loaded) == 1
            r = await service.request(PredictRequest("s", op="predict",
                                                     pc=0x80))
            return r

    r = asyncio.run(restore())
    assert r.ok and r.result == 0  # trained miss state survived disk


def test_corrupt_snapshot_degrades_to_none(tmp_path):
    payload = {"schema": 1, "sessions": {}}
    save_snapshot(str(tmp_path), "x", payload)
    # Scribble over every cache file: loads must degrade, not explode.
    count = 0
    for path in tmp_path.rglob("*"):
        if path.is_file():
            path.write_bytes(b"\x00garbage")
            count += 1
    assert count > 0
    assert load_snapshot(str(tmp_path), "x") is None
