"""ServeHandle: one client surface across topologies.

Conformance (service / fleet / JsonlHandle all satisfy the protocol),
the ``as_handle`` adaptation contract, and the TCP handle's pipelining
+ teardown semantics: futures correlated by ``(session_id, seq)``,
responses identical to in-process submission, and a lost server
resolving every in-flight future *in-band* instead of stranding
awaiters.
"""

import asyncio

import pytest

from repro.api import spec_for
from repro.serve import (
    ERR_INTERNAL,
    PredictRequest,
    PredictionService,
    ServeConfig,
    ServeHandle,
    as_handle,
    close_handle,
    connect_handle,
)
from repro.serve.fleet import ServeFleet
from repro.serve.loadgen import LoadModel, run_open_loop
from repro.serve.net import serve_tcp

SPEC = spec_for("binary.gshare", history=4)


def run(coro):
    return asyncio.run(coro)


async def _tcp_pair(service):
    """(server, port) for a service bound to an ephemeral port."""
    server = await serve_tcp(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return server, port


# -- conformance ----------------------------------------------------------


def test_service_and_fleet_conform(tmp_path):
    service = PredictionService(ServeConfig(n_shards=1))
    fleet = ServeFleet(n_workers=1, state_dir=str(tmp_path))
    assert isinstance(service, ServeHandle)
    assert isinstance(fleet, ServeHandle)
    assert as_handle(service) is service
    assert as_handle(fleet) is fleet


def test_as_handle_rejects_non_handles():
    with pytest.raises(TypeError, match="ServeHandle"):
        as_handle(object())
    with pytest.raises(TypeError, match="ServeHandle"):
        as_handle("127.0.0.1:7199")


def test_close_handle_is_a_noop_for_local_objects():
    service = PredictionService(ServeConfig(n_shards=1))
    run(close_handle(service))  # no aclose attribute: nothing to do


# -- the TCP handle -------------------------------------------------------


def test_jsonl_handle_pipelines_and_matches_in_process():
    async def main():
        async with PredictionService(ServeConfig(n_shards=2)) as service:
            server, port = await _tcp_pair(service)
            handle = await connect_handle(port=port, host="127.0.0.1")
            assert isinstance(handle, ServeHandle)
            assert as_handle(handle) is handle
            try:
                await handle.open_session("remote", SPEC)
                # In-process twin session for the oracle.
                await service.open_session("local", SPEC)
                futures = [handle.submit(PredictRequest(
                    "remote", op="step", pc=0x40 + 4 * (i % 4),
                    outcome=i % 2, seq=i)) for i in range(64)]
                remote = [r.result
                          for r in await asyncio.gather(*futures)]
                local = []
                for i in range(64):
                    r = await service.request(PredictRequest(
                        "local", op="step", pc=0x40 + 4 * (i % 4),
                        outcome=i % 2, seq=i))
                    local.append(r.result)
                assert remote == local
                assert await handle.close_session("remote") == 64
                await handle.ping()
            finally:
                await close_handle(handle)
                server.close()
                await server.wait_closed()
    run(main())


def test_handle_open_session_surfaces_server_errors():
    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            server, port = await _tcp_pair(service)
            handle = await connect_handle("127.0.0.1", port)
            try:
                await handle.open_session("s", SPEC)
                with pytest.raises(RuntimeError, match="open"):
                    await handle.open_session(
                        "s", spec_for("binary.gshare", history=6))
            finally:
                await close_handle(handle)
                server.close()
                await server.wait_closed()
    run(main())


def test_loadgen_drives_a_remote_handle():
    async def main():
        async with PredictionService(ServeConfig(n_shards=2)) as service:
            server, port = await _tcp_pair(service)
            handle = await connect_handle("127.0.0.1", port)
            try:
                model = LoadModel(n_sessions=8, spec_kind="binary.gshare",
                                  spec_params=(("history", 4),),
                                  rate_rps=2000.0, seconds=0.3,
                                  clients=4, seed=7)
                report = await run_open_loop(as_handle(handle), model)
                assert report["ok"] > 0
                assert report["lost"] == 0
                assert report["errors"] == 0
            finally:
                await close_handle(handle)
                server.close()
                await server.wait_closed()
    run(main())


def test_lost_server_resolves_pending_in_band():
    async def main():
        service = PredictionService(ServeConfig(n_shards=1))
        await service.start()
        server, port = await _tcp_pair(service)
        handle = await connect_handle("127.0.0.1", port)
        await handle.open_session("s", SPEC)
        # Drop the server out from under the handle.
        server.close()
        await server.wait_closed()
        await service.stop()
        response = await asyncio.wait_for(handle.submit(PredictRequest(
            "s", op="step", pc=0x40, outcome=1, seq=0)), timeout=10)
        # The awaiter is never stranded: the future resolves in-band,
        # either with the dying server's last "closed" reply or with
        # the handle's own transport-error synthesis after EOF.
        assert not response.ok
        assert response.error == "closed" or response.error.startswith(
            ERR_INTERNAL)
        await close_handle(handle)
    run(main())


def test_unmatched_replies_are_counted_and_do_not_skew_in_flight():
    # A duplicate or misaddressed server reply must neither strand the
    # accounting nor be silently dropped: it is counted, and the
    # in-flight gauge (derived from the pending map) stays exact.
    from repro.serve.handle import JsonlHandle
    from repro.serve.protocol import PredictResponse

    async def main():
        async def rogue(reader, writer):
            line = await reader.readline()
            request = PredictRequest.from_json(line.decode("utf-8"))
            for response in (
                # Misaddressed: no such pending key.
                PredictResponse(session_id="ghost", seq=99, result=0),
                # The real reply...
                PredictResponse(session_id=request.session_id,
                                seq=request.seq, result=7),
                # ... and a duplicate of it.
                PredictResponse(session_id=request.session_id,
                                seq=request.seq, result=8),
            ):
                writer.write((response.to_json() + "\n").encode("utf-8"))
            await writer.drain()

        server = await asyncio.start_server(rogue, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        handle = await JsonlHandle.connect("127.0.0.1", port)
        try:
            assert handle.in_flight == 0
            response = await handle.submit(PredictRequest(
                "s", op="step", pc=0x40, outcome=1, seq=0))
            assert response.result == 7
            # Let the pump read the trailing duplicate.
            for _ in range(50):
                if handle.unmatched == 2:
                    break
                await asyncio.sleep(0.01)
            assert handle.unmatched == 2
            assert handle.in_flight == 0
        finally:
            await close_handle(handle)
            server.close()
            await server.wait_closed()
    run(main())


def test_submit_after_close_is_in_band():
    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            server, port = await _tcp_pair(service)
            handle = await connect_handle("127.0.0.1", port)
            await close_handle(handle)
            response = await handle.submit(PredictRequest(
                "s", op="step", pc=0x40, outcome=1, seq=0))
            assert not response.ok
            assert "handle closed" in response.error
            server.close()
            await server.wait_closed()
    run(main())
