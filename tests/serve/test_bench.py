"""Bench smoke: tiny closed-loop runs produce a schema-2 report."""

import json

import pytest

from repro.serve.bench import (
    BENCH_SCHEMA,
    make_windows,
    run_bench,
    write_report,
)


def test_make_windows_is_deterministic():
    a = make_windows("s", "hitmiss", seed=3, window=16)
    b = make_windows("s", "hitmiss", seed=3, window=16)
    assert a == b
    assert len(a) == 4 and all(len(w) == 16 for w in a)
    assert all(r.op == "step" for w in a for r in w)


def test_bench_both_sides_and_report(tmp_path):
    report = run_bench(seconds=0.3, clients=4, window=64,
                       spec_kind="hmp.local", n_shards=2,
                       max_batch=512, max_delay_us=500,
                       queue_depth=4096, sides="both",
                       telemetry_compare=False)
    assert report["schema"] == BENCH_SCHEMA
    assert set(report["sides"]) == {"scalar", "vectorized"}
    for side in report["sides"].values():
        assert side["completed"] > 0
        assert side["throughput_rps"] > 0
        assert {"p50", "p90", "p99", "p999"} <= set(side["latency_us"])
        # Bounded accounting: quantiles come from a streaming
        # histogram over a sampled subset, not an unbounded list.
        assert 0 < side["latency_samples"] <= side["completed"]
        assert side["warmup_seconds"] > 0
    assert report["speedup"] > 0
    assert report["sides"]["scalar"]["effective_backend"] == "reference"
    for key in ("git_rev", "hostname", "python", "numpy", "cpu_count"):
        assert key in report["provenance"]

    path = write_report(report, str(tmp_path / "BENCH_serve.json"))
    loaded = json.loads(open(path).read())
    assert loaded["bench"] == "repro.serve"
    assert loaded["spec"]["kind"] == "hmp.local"


def test_bench_separates_queue_sojourn_from_service_time():
    report = run_bench(seconds=0.3, clients=4, window=64,
                       spec_kind="hmp.local", n_shards=1,
                       sides="reference", telemetry_compare=False)
    side = report["sides"]["scalar"]
    assert side["telemetry"] is True
    assert side["queue_us"]["stage"] == "queue"
    assert side["service_us"]["stage"] in ("kernel", "predict")
    # Under a closed loop the queue sojourn dominates; service time is
    # the per-request execution alone — orders of magnitude apart.
    assert side["queue_us"]["p50"] > side["service_us"]["p50"]
    assert "queue sojourn" in side["latency_note"]


@pytest.mark.slow
def test_bench_telemetry_overhead_comparison():
    report = run_bench(seconds=0.2, clients=2, window=32,
                       spec_kind="hmp.local", n_shards=1,
                       sides="vectorized", telemetry_compare=True)
    assert set(report["sides"]) == {"vectorized",
                                    "vectorized_no_telemetry"}
    dark = report["sides"]["vectorized_no_telemetry"]
    assert dark["telemetry"] is False
    assert "queue_us" not in dark  # no tracer → no stage split
    overhead = report["telemetry_overhead"]
    assert overhead["on_rps"] > 0 and overhead["off_rps"] > 0
    assert "overhead_frac" in overhead
    assert overhead["sample_shift"] >= 0


def test_bench_single_side():
    report = run_bench(seconds=0.2, clients=2, window=32,
                       spec_kind="hmp.local", n_shards=1,
                       sides="reference", telemetry_compare=False)
    assert set(report["sides"]) == {"scalar"}
    assert "speedup" not in report
    assert "telemetry_overhead" not in report
