"""Bench smoke: tiny closed-loop runs on both sides produce a report."""

import json

from repro.serve.bench import make_windows, run_bench, write_report


def test_make_windows_is_deterministic():
    a = make_windows("s", "hitmiss", seed=3, window=16)
    b = make_windows("s", "hitmiss", seed=3, window=16)
    assert a == b
    assert len(a) == 4 and all(len(w) == 16 for w in a)
    assert all(r.op == "step" for w in a for r in w)


def test_bench_both_sides_and_report(tmp_path):
    report = run_bench(seconds=0.3, clients=4, window=64,
                       spec_kind="hmp.local", n_shards=2,
                       max_batch=512, max_delay_us=500,
                       queue_depth=4096, sides="both")
    assert set(report["sides"]) == {"scalar", "vectorized"}
    for side in report["sides"].values():
        assert side["completed"] > 0
        assert side["throughput_rps"] > 0
        assert {"p50", "p90", "p99"} <= set(side["latency_us"])
    assert report["speedup"] > 0
    assert report["sides"]["scalar"]["effective_backend"] == "reference"

    path = write_report(report, str(tmp_path / "BENCH_serve.json"))
    loaded = json.loads(open(path).read())
    assert loaded["bench"] == "repro.serve"
    assert loaded["spec"]["kind"] == "hmp.local"


def test_bench_single_side():
    report = run_bench(seconds=0.2, clients=2, window=32,
                       spec_kind="hmp.local", n_shards=1,
                       sides="reference")
    assert set(report["sides"]) == {"scalar"}
    assert "speedup" not in report
