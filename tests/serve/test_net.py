"""JSONL transport: TCP round-trips, stdio loop, in-band errors."""

import asyncio
import io

from repro.api import spec_for
from repro.serve import (
    JsonlClient,
    PredictRequest,
    PredictionService,
    ServeConfig,
    serve_stdio,
    serve_tcp,
)
from repro.serve.protocol import PredictResponse


def test_tcp_round_trip():
    async def main():
        async with PredictionService(ServeConfig(n_shards=2)) as service:
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await JsonlClient.connect("127.0.0.1", port)
            spec = spec_for("hmp.local", size=64).to_json_dict()

            r = await client.roundtrip(PredictRequest(
                "s", op="open", spec=spec))
            assert r.ok
            for i in range(6):
                r = await client.roundtrip(PredictRequest(
                    "s", op="step", pc=0x40, outcome=1, seq=i))
                assert r.ok and r.result in (0, 1) and r.seq == i
            r = await client.roundtrip(PredictRequest("s", op="ping"))
            assert r.ok
            r = await client.roundtrip(PredictRequest("s", op="close"))
            assert r.ok and r.result == 6

            # Errors come back in-band, not as dropped connections.
            r = await client.roundtrip(PredictRequest(
                "gone", op="step", pc=4, outcome=1))
            assert not r.ok and r.error == "unknown-session"
            r = await client.roundtrip(PredictRequest(
                "s2", op="open"))  # open without a spec
            assert not r.ok and "spec" in r.error

            await client.close()
            server.close()
            await server.wait_closed()
    asyncio.run(main())


def test_tcp_malformed_line_is_answered():
    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            server = await serve_tcp(service, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            response = PredictResponse.from_json(line.decode())
            assert not response.ok and "bad-request" in response.error
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
    asyncio.run(main())


def test_stdio_loop():
    spec = spec_for("hmp.local", size=64).to_json_dict()
    lines = [
        PredictRequest("s", op="open", spec=spec).to_json(),
        PredictRequest("s", op="step", pc=0x40, outcome=1,
                       seq=0).to_json(),
        "",  # blank lines are skipped
        PredictRequest("s", op="close").to_json(),
    ]
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()

    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            await serve_stdio(service, stdin=stdin, stdout=stdout)

    asyncio.run(main())
    responses = [PredictResponse.from_json(line)
                 for line in stdout.getvalue().splitlines()]
    assert len(responses) == 3
    assert all(r.ok for r in responses)
    assert responses[1].result in (0, 1)
    assert responses[2].result == 1  # served count from close
