"""The fleet differential: process distribution must be unobservable.

Mirror of ``test_differential.py`` one level up the topology: the same
shuffled concurrent workload submitted to the single-process
:class:`PredictionService` and to an N-worker :class:`ServeFleet` must
produce, per session, identical prediction streams — and both must
equal the sequential scalar replay.  Routing, per-worker WALs,
micro-batching inside each worker and the process hop are throughput
machinery, never a semantics change.  Runs on both execution backends,
and covers the ``replay`` trace-window op (digests must agree
bit-for-bit across all three executions).
"""

import asyncio
import random

import pytest

from repro.api import build_predictor, spec_for
from repro.serve import PredictionService, PredictRequest, ServeConfig
from repro.serve.batch import apply_step, replay_digest
from repro.serve.fleet import ServeFleet

#: Families mixing kernel-backed and scalar-only execution, as in the
#: single-process differential.
SESSION_SPECS = {
    "hyb": spec_for("hmp.hybrid", local_size=128, gskew_size=256),
    "cht": spec_for("cht.tagless", size=128, track_distance=True),
    "gsh": spec_for("binary.gshare", history=7),
    "bnk": spec_for("bank.a"),
}

STEPS_PER_SESSION = 160


def _workload(sid: str, seed: int):
    spec = SESSION_SPECS[sid]
    rng = random.Random(seed)
    requests = []
    for i in range(STEPS_PER_SESSION):
        pc = 0x400 + 4 * rng.randrange(10)
        outcome = rng.randrange(2)
        distance = None
        if spec.family == "cht" and outcome:
            distance = 1 + rng.randrange(4)
        requests.append(PredictRequest(sid, op="step", pc=pc,
                                       outcome=outcome,
                                       distance=distance, seq=i))
    return requests


def _sequential_reference(sid: str, requests) -> list:
    predictor = build_predictor(SESSION_SPECS[sid])
    out = []
    for r in requests:
        distance = r.distance if (r.distance or 0) >= 1 else None
        out.append(apply_step(SESSION_SPECS[sid].family, predictor, r.pc,
                              int(r.outcome), distance=distance))
    return out


async def _submit_shuffled(service, workloads, rng):
    """Concurrent, shuffled interleavings; per-session order kept."""
    pending = {sid: list(reqs) for sid, reqs in workloads.items()}
    results = {sid: [] for sid in workloads}
    while any(pending.values()):
        order = [sid for sid, reqs in pending.items() if reqs]
        rng.shuffle(order)
        futures = []
        for sid in order:
            take = min(len(pending[sid]), 1 + rng.randrange(30))
            chunk, pending[sid] = pending[sid][:take], pending[sid][take:]
            futures.extend((sid, service.submit(r)) for r in chunk)
            if rng.random() < 0.3:
                await asyncio.sleep(0)
        for sid, future in futures:
            response = await future
            assert response.ok, response
            results[sid].append(response.result)
    return results


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_fleet_stream_equals_single_process_and_scalar_replay(
        backend, tmp_path):
    workloads = {sid: _workload(sid, seed=300 + i)
                 for i, sid in enumerate(SESSION_SPECS)}
    expected = {sid: _sequential_reference(sid, reqs)
                for sid, reqs in workloads.items()}
    config = ServeConfig(n_shards=2, max_batch=96, max_delay_us=300,
                         backend=backend, min_kernel_run=4)

    async def run_single():
        rng = random.Random(42)
        async with PredictionService(config) as service:
            for sid, spec in SESSION_SPECS.items():
                await service.open_session(sid, spec)
            return await _submit_shuffled(service, workloads, rng)

    async def run_fleet():
        rng = random.Random(43)  # different interleaving on purpose
        async with ServeFleet(n_workers=3, config=config,
                              state_dir=str(tmp_path)) as fleet:
            for sid, spec in SESSION_SPECS.items():
                await fleet.open_session(sid, spec)
            return await _submit_shuffled(fleet, workloads, rng)

    single = asyncio.run(run_single())
    fleet = asyncio.run(run_fleet())
    for sid in SESSION_SPECS:
        assert single[sid] == expected[sid], (
            f"single-process {sid} diverged from scalar replay "
            f"({backend})")
        assert fleet[sid] == expected[sid], (
            f"fleet {sid} diverged from scalar replay ({backend})")


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_replay_digests_agree_single_vs_fleet(backend, tmp_path):
    """One trace window per session: the order-sensitive digest must be
    identical from the single service, the fleet, and a local scalar
    replay — the cheap proof that window execution is exactly
    per-step execution."""
    spec = spec_for("hmp.hybrid", local_size=128, gskew_size=256)
    rng = random.Random(77)
    windows = {}
    for w in range(4):
        pcs = tuple(0x400 + 4 * rng.randrange(12) for _ in range(96))
        outcomes = tuple(rng.randrange(2) for _ in range(96))
        windows[f"t{w}"] = (pcs, outcomes)

    def local_digest(pcs, outcomes):
        predictor = build_predictor(spec)
        return replay_digest([
            apply_step(spec.family, predictor, pc, outcome)
            for pc, outcome in zip(pcs, outcomes)])

    config = ServeConfig(n_shards=2, max_batch=64, max_delay_us=200,
                         backend=backend, min_kernel_run=8)

    async def run(service_factory):
        async with service_factory() as service:
            digests = {}
            for sid, (pcs, outcomes) in windows.items():
                await service.open_session(sid, spec)
                response = await service.request(PredictRequest(
                    sid, op="replay", pcs=pcs, outcomes=outcomes, seq=0))
                assert response.ok, response.error
                digests[sid] = response.result
            return digests

    single = asyncio.run(run(lambda: PredictionService(config)))
    fleet = asyncio.run(run(lambda: ServeFleet(
        n_workers=2, config=config, state_dir=str(tmp_path))))
    for sid, (pcs, outcomes) in windows.items():
        want = local_digest(pcs, outcomes)
        assert single[sid] == want, f"single digest diverged ({backend})"
        assert fleet[sid] == want, f"fleet digest diverged ({backend})"
