"""Consistent-hash ring unit tests.

The ring is the fleet's placement function: these tests pin its
contract — deterministic, process-independent mapping; coverage and
rough balance over a uniform keyset; and minimal movement under node
churn (the property tests in ``tests/property/test_ring_properties.py``
push the same claims through hypothesis-generated topologies).
"""

import pytest

from repro.serve.ring import DEFAULT_REPLICAS, HashRing

KEYS = [f"sess-{i:05d}" for i in range(4000)]


def test_mapping_is_deterministic_across_instances():
    a = HashRing(["w0", "w1", "w2"])
    b = HashRing(["w2", "w0", "w1"])  # insertion order must not matter
    assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]


def test_membership_and_errors():
    ring = HashRing()
    with pytest.raises(ValueError):
        ring.node_for("anything")  # empty ring
    ring.add_node("w0")
    assert "w0" in ring and len(ring) == 1
    with pytest.raises(ValueError):
        ring.add_node("w0")  # duplicate
    with pytest.raises(ValueError):
        ring.add_node("")  # empty name
    with pytest.raises(ValueError):
        ring.remove_node("w9")  # absent
    with pytest.raises(ValueError):
        HashRing(replicas=0)
    ring.remove_node("w0")
    assert len(ring) == 0


def test_nodes_property_is_sorted():
    ring = HashRing(["w2", "w10", "w1"])
    assert ring.nodes == ("w1", "w10", "w2")


def test_distribution_covers_all_nodes_roughly_evenly():
    ring = HashRing([f"w{i}" for i in range(4)])
    counts = ring.distribution(KEYS)
    assert set(counts) == {f"w{i}" for i in range(4)}
    mean = len(KEYS) / 4
    # The documented vnode balance bound (ring.py: max/mean < ~1.35).
    assert max(counts.values()) < 1.35 * mean
    assert min(counts.values()) > 0


def test_add_node_moves_keys_only_to_the_new_node():
    ring = HashRing(["w0", "w1", "w2"])
    before = {k: ring.node_for(k) for k in KEYS}
    ring.add_node("w3")
    after = {k: ring.node_for(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    assert all(after[k] == "w3" for k in moved), (
        "a key moved between two surviving nodes")
    # Roughly 1/4 of keys should land on the newcomer, never "most".
    assert 0 < len(moved) < 0.5 * len(KEYS)


def test_remove_node_moves_only_the_removed_nodes_keys():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    before = {k: ring.node_for(k) for k in KEYS}
    ring.remove_node("w1")
    after = {k: ring.node_for(k) for k in KEYS}
    for key in KEYS:
        if before[key] != "w1":
            assert after[key] == before[key], (
                "a key not owned by the removed node moved")


def test_single_node_owns_everything():
    ring = HashRing(["only"], replicas=DEFAULT_REPLICAS)
    assert all(ring.node_for(k) == "only" for k in KEYS[:100])
