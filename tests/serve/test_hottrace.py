"""Hot-trace replay: the speculate/guard/commit happy path.

Engine-level tests drive :class:`repro.fastpath.hottrace.
HotTraceEngine` through the real batch executor
(:func:`repro.serve.batch.execute_step_arrays_ex`) and compare every
outcome against a *shadow twin* — an identical session executed
scalar-only, no speculation — so a hit is only a hit if results AND
post-state are byte-identical to never having speculated at all.
Service/fleet-level tests pin the wiring: policy in, counters out
through stats, metrics and ``aggregate_hottrace``.

The negative battery (guard aborts, squashes, drift) lives next door
in ``test_hottrace_guards.py``.
"""

import asyncio
import pickle

from repro.api import ExecutionPolicy, spec_for
from repro.fastpath.hottrace import HotTraceEngine, _canonical_state
from repro.serve import PredictRequest, PredictionService, ServeConfig
from repro.serve.batch import (
    VIA_HOTTRACE,
    VIA_SCALAR,
    execute_step_arrays_ex,
    replay_digest,
    scalar_steps,
)
from repro.serve.service import aggregate_hottrace
from repro.serve.session import Session

SPEC = spec_for("binary.gshare", history=4)

#: Capture on the second sighting, memoize anything >= 4 steps — small
#: thresholds so tests converge in a handful of windows.
POLICY = ExecutionPolicy(backend="reference", hottrace=True,
                         hot_threshold=1, min_trace_len=4)


def run(coro):
    return asyncio.run(coro)


def window(outcome, n=8, pc=0x40):
    """Fresh lane lists for one repeated-(pc, outcome) step window."""
    return [pc] * n, [outcome] * n, [-1] * n


def execute(engine, session, lanes):
    pcs, outcomes, distances = lanes
    return execute_step_arrays_ex(session, pcs, outcomes, distances,
                                  "reference", 8, engine)


def state_bytes(session):
    """Canonicalized predictor-state bytes: a committed hit replaces
    the predictor with a rehydrated object whose *raw* pickle can
    differ from a same-state original (interning-induced sharing), so
    equality is judged on the normalized encoding."""
    return _canonical_state(pickle.dumps(
        session.predictor, protocol=pickle.HIGHEST_PROTOCOL))


def make_pair():
    """(speculating session, never-speculating shadow twin)."""
    return Session("s", SPEC), Session("shadow", SPEC)


def shadow_execute(twin, lanes):
    pcs, outcomes, distances = lanes
    return scalar_steps(twin.family, twin.predictor, pcs, outcomes,
                        distances)


# -- engine-level ---------------------------------------------------------


def test_repeated_window_converges_to_hits():
    engine = HotTraceEngine(POLICY)
    session, twin = make_pair()
    vias = []
    for _ in range(6):
        lanes = window(1)
        results, via = execute(engine, session, lanes)
        assert results == shadow_execute(twin, lanes)
        assert state_bytes(session) == state_bytes(twin)
        vias.append(via)
    # Run 1 heats, run 2 captures, run 3+ replays from the memo: the
    # all-taken window saturates the counters, so post == pre and
    # every later occurrence is a fixed-point hit.
    assert vias[0] == VIA_SCALAR and vias[1] == VIA_SCALAR
    assert vias[2:] == [VIA_HOTTRACE] * 4
    c = engine.counters
    assert c.windows == 6 and c.captures == 1
    assert c.hits == 4 and c.steps_saved == 4 * 8
    assert c.aborts == 0 and c.abort_mismatch == 0


def test_fixed_point_hit_skips_rehydration():
    engine = HotTraceEngine(POLICY)
    session, _ = make_pair()
    for _ in range(3):
        execute(engine, session, window(1))
    st = session.hottrace
    (trace,) = st.traces.values()
    assert trace.post_digest == trace.pre_digest
    before = session.predictor
    results, via = execute(engine, session, window(1))
    assert via == VIA_HOTTRACE
    # Converged fixed point: the hit answers without building a new
    # predictor object at all.
    assert session.predictor is before


def test_alternating_windows_cycle_through_distinct_traces():
    engine = HotTraceEngine(POLICY)
    session, twin = make_pair()
    hits = 0
    for round_ in range(8):
        for outcome in (1, 0):
            lanes = window(outcome)
            results, via = execute(engine, session, lanes)
            assert results == shadow_execute(twin, lanes)
            assert state_bytes(session) == state_bytes(twin)
            hits += via == VIA_HOTTRACE
    # The pre-convergence transient captures some edges that never
    # recur, but the period-2 steady state replays exactly two of them
    # every round.
    hit_traces = [t for t in session.hottrace.traces.values()
                  if t.hits > 0]
    assert len(hit_traces) == 2
    assert hits >= 6
    # These are NOT fixed points: each hit rehydrates the other state.
    for trace in hit_traces:
        assert trace.post_digest != trace.pre_digest
    assert engine.counters.abort_mismatch == 0


def test_armed_oracle_shadow_checks_every_hit():
    engine = HotTraceEngine(POLICY.replace(check_invariants="on"))
    session, twin = make_pair()
    for _ in range(5):
        lanes = window(1)
        results, via = execute(engine, session, lanes)
        assert results == shadow_execute(twin, lanes)
        assert state_bytes(session) == state_bytes(twin)
    assert engine.counters.hits >= 2
    assert engine.counters.abort_mismatch == 0


def test_short_windows_are_never_memoized():
    engine = HotTraceEngine(POLICY)
    session, twin = make_pair()
    for _ in range(6):
        lanes = window(1, n=POLICY.min_trace_len - 1)
        results, via = execute(engine, session, lanes)
        assert via == VIA_SCALAR
        assert results == shadow_execute(twin, lanes)
    c = engine.counters
    assert c.windows == 0 and c.captures == 0 and c.hits == 0
    # ... but the short runs still mutated the predictor, so the
    # digest chain must not pretend to know the state.
    assert session.hottrace.state_digest is None


def test_short_window_between_hot_ones_breaks_then_relearns():
    engine = HotTraceEngine(POLICY)
    session, twin = make_pair()
    for _ in range(3):
        lanes = window(1)
        execute(engine, session, lanes)
        shadow_execute(twin, lanes)
    assert engine.counters.hits == 1
    # A short (unmemoizable) run invalidates the chain; correctness
    # must survive and the hot window must become hittable again.
    lanes = window(0, n=4)
    shadow_execute(twin, lanes)
    execute(engine, session, lanes)
    for _ in range(3):
        lanes = window(1)
        results, via = execute(engine, session, lanes)
        assert results == shadow_execute(twin, lanes)
        assert state_bytes(session) == state_bytes(twin)
    assert engine.counters.hits >= 2
    assert engine.counters.abort_mismatch == 0


def test_lru_cap_evicts_oldest_traces():
    engine = HotTraceEngine(POLICY.replace(max_traces=2))
    session, twin = make_pair()
    # Three distinct hot windows from a rotating state: more captures
    # than the cap allows.
    for _ in range(3):
        for pc in (0x40, 0x44, 0x48):
            lanes = window(1, pc=pc)
            results, _ = execute(engine, session, lanes)
            assert results == shadow_execute(twin, lanes)
    assert len(session.hottrace.traces) <= 2
    assert engine.counters.evictions >= 1
    assert state_bytes(session) == state_bytes(twin)


def test_window_digest_memo_retired_on_hit():
    # The one-shot window-digest memo (keyed by lane-object identity)
    # must not outlive its try_replay/record pair: a hit never reaches
    # record(), so the hit path retires it — otherwise a later record()
    # with recycled list ids could reuse a wrong cached digest.
    engine = HotTraceEngine(POLICY)
    session, _ = make_pair()
    for _ in range(3):
        _, via = execute(engine, session, window(1))
    assert via == VIA_HOTTRACE
    st = session.hottrace
    assert st.wd_token is None and st.wd_cache is None
    # invalidate() (out-of-band mutation, mid-window exception) drops
    # an in-flight memo too: probe without the paired record(), then
    # invalidate.
    pcs, outcomes, distances = window(0, pc=0x44)
    assert engine.try_replay(session, pcs, outcomes, distances) is None
    assert st.wd_token is not None
    HotTraceEngine.note_mutation(session)
    assert st.wd_token is None and st.wd_cache is None


def test_note_mutation_invalidates_chain():
    engine = HotTraceEngine(POLICY)
    session, _ = make_pair()
    for _ in range(3):
        execute(engine, session, window(1))
    assert session.hottrace.state_digest is not None
    HotTraceEngine.note_mutation(session)
    assert session.hottrace.state_digest is None
    # Harmless on a session that never speculated.
    HotTraceEngine.note_mutation(Session("fresh", SPEC))


def test_counters_round_trip_and_merge():
    engine = HotTraceEngine(POLICY)
    session, _ = make_pair()
    for _ in range(4):
        execute(engine, session, window(1))
    block = engine.counters.as_dict()
    assert block["hits"] == 2 and block["captures"] == 1
    other = HotTraceEngine(POLICY)
    other.counters.merge(block)
    other.counters.merge(block)
    assert other.counters.hits == 4
    assert other.counters.steps_saved == 2 * block["steps_saved"]


def test_aggregate_hottrace_sums_blocks():
    assert aggregate_hottrace([{"served": 1}, {"served": 2}]) is None
    total = aggregate_hottrace([
        {"hottrace": {"hits": 2, "windows": 5}},
        {"served": 9},
        {"hottrace": {"hits": 1, "windows": 3, "aborts": 1}},
    ])
    assert total == {"hits": 3, "windows": 8, "aborts": 1}


# -- service integration --------------------------------------------------


def _replay_request(sid, seq, outcome=1, n=8):
    return PredictRequest(sid, op="replay", seq=seq, pcs=[0x40] * n,
                          outcomes=[outcome] * n, distances=None)


def test_service_replay_windows_hit_and_export_counters():
    async def main():
        config = ServeConfig(n_shards=1, policy=POLICY)
        async with PredictionService(config) as service:
            await service.open_session("s", SPEC)
            digests = []
            for seq in range(6):
                r = await service.request(_replay_request("s", seq))
                assert r.ok
                digests.append(r.result)
            # Window 0 runs from an unsaturated predictor; from window
            # 1 on the state is converged and every occurrence — the
            # executed capture and all the memoized hits — must answer
            # the same digest.
            assert len(set(digests[1:])) == 1
            totals = service.stats()["totals"]
            block = totals["hottrace"]
            assert block["hits"] >= 3
            assert block["abort_mismatch"] == 0
            assert block["batches"] >= block["hits"]
            snap = service.metrics_registry().snapshot()
            assert snap["serve.hottrace.hits"] == block["hits"]
            assert snap["serve.hottrace.abort_mismatch"] == 0
    run(main())


def test_service_results_identical_with_hottrace_on_and_off():
    async def drive(policy):
        config = ServeConfig(n_shards=1, policy=policy)
        async with PredictionService(config) as service:
            await service.open_session("s", SPEC)
            out = []
            seq = 0
            for outcome in (1, 1, 1, 0, 1, 0, 1, 1):
                r = await service.request(
                    _replay_request("s", seq, outcome=outcome))
                assert r.ok
                out.append(r.result)
                seq += 1
                # Interleave lone update ops: out-of-band mutations the
                # engine must survive via chain invalidation.
                u = await service.request(PredictRequest(
                    "s", op="update", pc=0x44, outcome=outcome, seq=seq))
                assert u.ok
                seq += 1
            return out

    async def main():
        off = await drive(ExecutionPolicy(backend="reference"))
        on = await drive(POLICY)
        assert on == off

    run(main())


def test_fleet_policy_travels_and_stats_aggregate(tmp_path):
    from repro.serve.fleet import ServeFleet

    async def main():
        async with ServeFleet(n_workers=1,
                              config=ServeConfig(n_shards=1),
                              state_dir=str(tmp_path),
                              policy=POLICY) as fleet:
            assert fleet.config.effective_policy() is POLICY
            await fleet.open_session("s", SPEC)
            for seq in range(5):
                r = await fleet.request(_replay_request("s", seq))
                assert r.ok
            # Live counters come back over the control channel; the
            # worker is still running, so without a poll there is no
            # final report to aggregate.
            await fleet.poll_stats()
            block = fleet.stats()["totals"]["hottrace"]
            assert block["hits"] >= 2
            assert block["abort_mismatch"] == 0
            snap = fleet.metrics_registry().snapshot()
            assert snap["fleet.hottrace.hits"] == block["hits"]
    run(main())


def test_service_without_hottrace_has_no_counter_block():
    async def main():
        config = ServeConfig(n_shards=1,
                             policy=ExecutionPolicy(backend="reference"))
        async with PredictionService(config) as service:
            await service.open_session("s", SPEC)
            r = await service.request(_replay_request("s", 0))
            assert r.ok
            assert "hottrace" not in service.stats()["totals"]
            snap = service.metrics_registry().snapshot()
            assert not any(k.startswith("serve.hottrace")
                           for k in snap)
    run(main())
