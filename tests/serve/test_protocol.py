"""Wire-protocol codecs: requests/responses as JSON lines."""

import pytest

from repro.serve.protocol import (
    ERR_RETRY,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RetryAfter,
)


def test_request_round_trip():
    req = PredictRequest(session_id="s", op="step", pc=0x40, outcome=1,
                         distance=3, seq=7)
    again = PredictRequest.from_json(req.to_json())
    assert again == req


def test_request_drops_absent_fields():
    req = PredictRequest(session_id="s", op="predict", pc=4)
    payload = req.to_json_dict()
    assert "outcome" not in payload
    assert "distance" not in payload
    assert "address" not in payload
    assert "spec" not in payload


def test_request_control_ops_omit_pc():
    assert "pc" not in PredictRequest(session_id="s",
                                      op="ping").to_json_dict()


def test_request_carries_spec_dict():
    from repro.api import spec_for
    spec = spec_for("hmp.local").to_json_dict()
    req = PredictRequest(session_id="s", op="open", spec=spec)
    again = PredictRequest.from_json(req.to_json())
    assert again.spec == spec


def test_request_validates_op_and_session():
    with pytest.raises(ProtocolError):
        PredictRequest(session_id="s", op="explode")
    with pytest.raises(ProtocolError):
        PredictRequest(session_id="")


def test_request_from_bad_json():
    with pytest.raises(ProtocolError):
        PredictRequest.from_json("{nope")
    with pytest.raises(ProtocolError):
        PredictRequest.from_json('["not", "an", "object"]')
    with pytest.raises(ProtocolError):
        PredictRequest.from_json('{"op": "step"}')  # no session_id
    with pytest.raises(ProtocolError):
        PredictRequest.from_json(
            '{"session_id": "s", "pc": "forty"}')


def test_response_round_trip():
    resp = PredictResponse(session_id="s", seq=3, ok=False,
                           error=ERR_RETRY, retry_after_us=500)
    again = PredictResponse.from_json(resp.to_json())
    assert again == resp


def test_response_result_zero_survives():
    resp = PredictResponse(session_id="s", result=0)
    assert PredictResponse.from_json(resp.to_json()).result == 0


def test_retry_after_exception_carries_backoff():
    exc = RetryAfter(1500)
    assert exc.retry_after_us == 1500
    assert "1500" in str(exc)


class TestReplayOp:
    """The trace-window op: validation, JSON and compact wire forms."""

    def _window(self, n=5):
        return dict(pcs=tuple(0x400 + 4 * i for i in range(n)),
                    outcomes=tuple(i % 2 for i in range(n)))

    def test_json_round_trip(self):
        req = PredictRequest(session_id="s", op="replay", seq=9,
                             distances=(1, -1, 2, -1, -1),
                             **self._window())
        again = PredictRequest.from_json(req.to_json())
        assert again == req
        assert again.pcs == req.pcs and isinstance(again.pcs, tuple)

    def test_wire_round_trip(self):
        from repro.serve.protocol import (request_from_wire,
                                          request_to_wire)
        req = PredictRequest(session_id="s", op="replay", seq=3,
                             **self._window())
        assert request_from_wire(request_to_wire(req)) == req
        # Non-replay requests keep the compact 7-tuple wire form.
        step = PredictRequest(session_id="s", op="step", pc=4, outcome=1)
        assert len(request_to_wire(step)) == 7
        assert request_from_wire(request_to_wire(step)) == step

    def test_replay_requires_a_window(self):
        with pytest.raises(ProtocolError):
            PredictRequest(session_id="s", op="replay")
        with pytest.raises(ProtocolError):
            PredictRequest(session_id="s", op="replay", pcs=(),
                           outcomes=())

    def test_window_arrays_must_be_parallel(self):
        with pytest.raises(ProtocolError):
            PredictRequest(session_id="s", op="replay",
                           pcs=(4, 8), outcomes=(1,))
        with pytest.raises(ProtocolError):
            PredictRequest(session_id="s", op="replay",
                           pcs=(4, 8), outcomes=(1, 0),
                           distances=(1,))

    def test_non_replay_ops_reject_windows(self):
        with pytest.raises(ProtocolError):
            PredictRequest(session_id="s", op="step", pc=4, outcome=1,
                           **self._window())
