"""Wire-protocol codecs: requests/responses as JSON lines."""

import pytest

from repro.serve.protocol import (
    ERR_RETRY,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RetryAfter,
)


def test_request_round_trip():
    req = PredictRequest(session_id="s", op="step", pc=0x40, outcome=1,
                         distance=3, seq=7)
    again = PredictRequest.from_json(req.to_json())
    assert again == req


def test_request_drops_absent_fields():
    req = PredictRequest(session_id="s", op="predict", pc=4)
    payload = req.to_json_dict()
    assert "outcome" not in payload
    assert "distance" not in payload
    assert "address" not in payload
    assert "spec" not in payload


def test_request_control_ops_omit_pc():
    assert "pc" not in PredictRequest(session_id="s",
                                      op="ping").to_json_dict()


def test_request_carries_spec_dict():
    from repro.api import spec_for
    spec = spec_for("hmp.local").to_json_dict()
    req = PredictRequest(session_id="s", op="open", spec=spec)
    again = PredictRequest.from_json(req.to_json())
    assert again.spec == spec


def test_request_validates_op_and_session():
    with pytest.raises(ProtocolError):
        PredictRequest(session_id="s", op="explode")
    with pytest.raises(ProtocolError):
        PredictRequest(session_id="")


def test_request_from_bad_json():
    with pytest.raises(ProtocolError):
        PredictRequest.from_json("{nope")
    with pytest.raises(ProtocolError):
        PredictRequest.from_json('["not", "an", "object"]')
    with pytest.raises(ProtocolError):
        PredictRequest.from_json('{"op": "step"}')  # no session_id
    with pytest.raises(ProtocolError):
        PredictRequest.from_json(
            '{"session_id": "s", "pc": "forty"}')


def test_response_round_trip():
    resp = PredictResponse(session_id="s", seq=3, ok=False,
                           error=ERR_RETRY, retry_after_us=500)
    again = PredictResponse.from_json(resp.to_json())
    assert again == resp


def test_response_result_zero_survives():
    resp = PredictResponse(session_id="s", result=0)
    assert PredictResponse.from_json(resp.to_json()).result == 0


def test_retry_after_exception_carries_backoff():
    exc = RetryAfter(1500)
    assert exc.retry_after_us == 1500
    assert "1500" in str(exc)
