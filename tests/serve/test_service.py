"""PredictionService: sessions, sharding, batching, drain, controls."""

import asyncio

import pytest

from repro.api import spec_for
from repro.serve import (
    ERR_CLOSED,
    ERR_RETRY,
    ERR_UNKNOWN_SESSION,
    PredictRequest,
    PredictionService,
    ServeConfig,
    stable_shard_hash,
)


def run(coro):
    return asyncio.run(coro)


def test_stable_shard_hash_is_process_independent():
    # Pinned values: the routing must not depend on hash() salting,
    # or snapshots would restore onto the wrong shard.
    assert stable_shard_hash("alice") == stable_shard_hash("alice")
    assert stable_shard_hash("alice") != stable_shard_hash("bob")
    assert stable_shard_hash("") == 0xE3B0C44298FC1C14


def test_session_pinned_to_one_shard():
    async def main():
        config = ServeConfig(n_shards=4, max_batch=8, max_delay_us=100)
        async with PredictionService(config) as service:
            await service.open_session("s", spec_for("hmp.local"))
            home = service.shard_of("s")
            responses = await asyncio.gather(*[
                service.submit(PredictRequest("s", op="step", pc=0x40,
                                              outcome=1, seq=i))
                for i in range(32)])
            assert all(r.ok for r in responses)
            assert home.served == 32
            for shard in service.shards:
                if shard is not home:
                    assert shard.served == 0
    run(main())


def test_step_predict_update_semantics():
    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            await service.open_session("s", spec_for("hmp.local",
                                                     size=64, history=2))
            # Saturate towards miss, then a pure predict sees it.
            for i in range(8):
                r = await service.request(PredictRequest(
                    "s", op="step", pc=0x40, outcome=0, seq=i))
                assert r.ok
            lookup = await service.request(PredictRequest(
                "s", op="predict", pc=0x40))
            assert lookup.ok and lookup.result == 0  # predicted miss
            trained = await service.request(PredictRequest(
                "s", op="update", pc=0x40, outcome=1))
            assert trained.ok and trained.result is None
    run(main())


def test_update_requires_outcome():
    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            await service.open_session("s", spec_for("hmp.local"))
            r = await service.request(PredictRequest("s", op="update",
                                                     pc=0x40))
            assert not r.ok and "outcome" in r.error
    run(main())


def test_unknown_session_is_in_band():
    async def main():
        async with PredictionService(ServeConfig(n_shards=2)) as service:
            r = await service.request(PredictRequest("ghost", op="step",
                                                     pc=4, outcome=1))
            assert not r.ok and r.error == ERR_UNKNOWN_SESSION
    run(main())


def test_open_idempotent_same_spec_conflict_on_other():
    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            spec = spec_for("cht.tagless", size=64)
            await service.open_session("s", spec)
            await service.open_session("s", spec)  # idempotent
            with pytest.raises(ValueError, match="different spec"):
                await service.open_session("s", spec_for("cht.tagless",
                                                         size=128))
    run(main())


def test_close_session_returns_served_count():
    async def main():
        async with PredictionService(ServeConfig(n_shards=1)) as service:
            await service.open_session("s", spec_for("hmp.local"))
            for i in range(5):
                await service.request(PredictRequest("s", op="step",
                                                     pc=4, outcome=1))
            assert await service.close_session("s") == 5
            assert await service.close_session("s") is None
            r = await service.request(PredictRequest("s", op="step",
                                                     pc=4, outcome=1))
            assert r.error == ERR_UNKNOWN_SESSION
    run(main())


def test_submit_after_stop_resolves_closed():
    async def main():
        service = PredictionService(ServeConfig(n_shards=1))
        await service.start()
        await service.stop()
        r = await service.submit(PredictRequest("s", op="step", pc=4,
                                                outcome=1))
        assert not r.ok and r.error == ERR_CLOSED
        with pytest.raises(RuntimeError):
            await service.open_session("s", spec_for("hmp.local"))
    run(main())


def test_backpressure_rejects_with_retry_after():
    async def main():
        config = ServeConfig(n_shards=1, queue_depth=4, max_batch=4,
                             max_delay_us=0, retry_after_us=777)
        async with PredictionService(config) as service:
            await service.open_session("s", spec_for("hmp.local"))
            # Submit far more than the queue holds in one sweep, without
            # yielding, so the shard cannot drain in between.
            futures = [service.submit(PredictRequest("s", op="step",
                                                     pc=4, outcome=1,
                                                     seq=i))
                       for i in range(64)]
            responses = await asyncio.gather(*futures)
            rejected = [r for r in responses if r.error == ERR_RETRY]
            accepted = [r for r in responses if r.ok]
            assert rejected, "bounded queue never pushed back"
            assert all(r.retry_after_us == 777 for r in rejected)
            assert len(accepted) + len(rejected) == 64
            assert service.stats()["totals"]["rejected"] == len(rejected)
    run(main())


def test_drain_completes_admitted_requests():
    async def main():
        config = ServeConfig(n_shards=2, max_batch=1024,
                             max_delay_us=5000)
        service = PredictionService(config)
        await service.start()
        await service.open_session("s", spec_for("hmp.local"))
        futures = [service.submit(PredictRequest("s", op="step", pc=4,
                                                 outcome=1, seq=i))
                   for i in range(200)]
        await service.stop()  # graceful: everything admitted completes
        responses = [f.result() for f in futures]
        assert all(r.ok for r in responses)
        assert service.stats()["totals"]["served"] == 200
    run(main())


def test_micro_batches_coalesce():
    async def main():
        config = ServeConfig(n_shards=1, max_batch=256, max_delay_us=2000)
        async with PredictionService(config) as service:
            await service.open_session("s", spec_for("hmp.local"))
            responses = await asyncio.gather(*[
                service.submit(PredictRequest("s", op="step", pc=4,
                                              outcome=1, seq=i))
                for i in range(128)])
            assert all(r.ok for r in responses)
            stats = service.stats()["shards"][0]
            # 128 requests submitted in one sweep must not take 128
            # one-item batches.
            assert stats["batches"] < 64
            assert stats["max_batch"] > 1
    run(main())


def test_snapshot_restore_across_shard_counts():
    async def main():
        spec = spec_for("hmp.local", size=64, history=2)
        async with PredictionService(ServeConfig(n_shards=4)) as service:
            for sid in ("a", "b", "c"):
                await service.open_session(sid, spec)
            for i in range(16):
                await service.request(PredictRequest("a", op="step",
                                                     pc=0x40, outcome=0,
                                                     seq=i))
            payload = await service.snapshot_payload()
        assert set(payload["sessions"]) == {"a", "b", "c"}

        async with PredictionService(ServeConfig(n_shards=2)) as other:
            assert await other.restore_payload(payload) == 3
            r = await other.request(PredictRequest("a", op="predict",
                                                   pc=0x40))
            assert r.ok and r.result == 0  # trained state survived
            # Served count survived too: 16 steps + the predict above.
            assert await other.close_session("a") == 17
    run(main())


def test_stats_shape():
    async def main():
        async with PredictionService(ServeConfig(n_shards=3)) as service:
            stats = service.stats()
            assert stats["config"]["n_shards"] == 3
            assert len(stats["shards"]) == 3
            assert set(stats["totals"]) >= {"sessions", "served",
                                            "batches", "kernel_batches",
                                            "rejected"}
    run(main())
