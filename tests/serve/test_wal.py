"""Write-ahead log unit tests.

The WAL's contract is small but every fleet durability claim leans on
it: append order is replay order, reopen sees exactly the flushed
records, truncation drops exactly the snapshotted prefix, and a torn
tail from a crash mid-append is discarded instead of being replayed as
garbage.
"""

import os

from repro.serve.protocol import FRAME_HEADER
from repro.serve.wal import WriteAheadLog


def _records(n, tag="r"):
    return [("req", (f"s{i % 7}", "step", 0x400 + i, i % 2, tag))
            for i in range(n)]


def test_append_replay_roundtrip_preserves_order(tmp_path):
    path = str(tmp_path / "wal.log")
    with WriteAheadLog(path) as wal:
        wal.append(_records(5))
        wal.append(_records(3, tag="later"))
        assert wal.records == 8
        assert wal.replay() == _records(5) + _records(3, tag="later")


def test_reopen_recovers_counts_and_records(tmp_path):
    path = str(tmp_path / "wal.log")
    with WriteAheadLog(path) as wal:
        wal.append(_records(10))
    with WriteAheadLog(path) as wal:
        assert wal.records == 10
        assert wal.replay() == _records(10)
        wal.append(_records(2, tag="post"))
        assert wal.records == 12


def test_truncate_drops_exactly_the_prefix(tmp_path):
    path = str(tmp_path / "wal.log")
    with WriteAheadLog(path) as wal:
        wal.append(_records(6))
        mark = wal.mark()
        assert mark == 6
        wal.append(_records(4, tag="suffix"))
        wal.truncate(mark)
        assert wal.records == 4
        assert wal.replay() == _records(4, tag="suffix")
        # Appends continue cleanly on the rewritten file.
        wal.append(_records(1, tag="tail"))
        assert wal.replay() == (_records(4, tag="suffix")
                                + _records(1, tag="tail"))
    assert not os.path.exists(path + ".tmp")


def test_truncate_of_nothing_is_a_noop(tmp_path):
    path = str(tmp_path / "wal.log")
    with WriteAheadLog(path) as wal:
        wal.append(_records(3))
        wal.truncate(0)
        assert wal.records == 3


def test_torn_tail_is_discarded_on_open(tmp_path):
    path = str(tmp_path / "wal.log")
    with WriteAheadLog(path) as wal:
        wal.append(_records(4))
    size = os.path.getsize(path)
    with open(path, "ab") as handle:
        # A crash mid-append: a frame header promising more bytes than
        # were ever written.
        handle.write(FRAME_HEADER.pack(1 << 20))
        handle.write(b"half a record")
    with WriteAheadLog(path) as wal:
        assert wal.records == 4
        assert wal.replay() == _records(4)
    # The torn bytes are physically gone, not just skipped.
    assert os.path.getsize(path) == size


def test_empty_batch_append_is_free(tmp_path):
    path = str(tmp_path / "wal.log")
    with WriteAheadLog(path) as wal:
        wal.append([])
        assert wal.records == 0
        assert wal.replay() == []
    assert os.path.getsize(path) == 0
