"""Hard shard cancellation must never strand admitted requests.

A shard task dying at an ``await`` (service teardown without a drain
barrier, a crashing supervisor) used to leave every future already
admitted to its queue — and the one mid-coalesce — unresolved, hanging
their submitters forever.  The shard now fails all of them in-band and
re-raises the cancellation.
"""

import asyncio

import pytest

from repro.api import spec_for
from repro.serve import ERR_INTERNAL, PredictRequest, ServeConfig
from repro.serve.shard import Shard


def run(coro):
    return asyncio.run(coro)


def _slow_flush_config() -> ServeConfig:
    # A 10 s coalesce window parks the shard in its mid-batch await
    # with the first item already dequeued — the exact state a hard
    # cancellation used to strand.
    return ServeConfig(n_shards=1, max_batch=64, max_delay_us=10_000_000,
                       queue_depth=8, telemetry=False)


def test_cancel_mid_batch_resolves_every_admitted_future():
    async def main():
        shard = Shard(0, _slow_flush_config())
        shard.start()
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in range(3)]
        for i, future in enumerate(futures):
            assert shard.try_submit(
                PredictRequest("s", op="step", pc=0x40, outcome=1, seq=i),
                future)
        await asyncio.sleep(0.05)  # first item is now mid-coalesce
        shard.task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await shard.task
        for future in futures:
            assert future.done()
            response = future.result()
            assert not response.ok
            assert ERR_INTERNAL in response.error
            assert "cancelled" in response.error
    run(main())


def test_cancel_propagates_to_pending_control_barriers():
    async def main():
        shard = Shard(0, _slow_flush_config())
        shard.start()
        loop = asyncio.get_running_loop()
        item_future = loop.create_future()
        assert shard.try_submit(
            PredictRequest("s", op="step", pc=0x40, outcome=1, seq=0),
            item_future)
        barrier = asyncio.ensure_future(shard.control("snapshot"))
        await asyncio.sleep(0.05)
        shard.task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await shard.task
        # The awaiter of the queued barrier sees the cancellation, not
        # a silent hang.
        with pytest.raises(asyncio.CancelledError):
            await barrier
        assert item_future.done() and not item_future.result().ok
    run(main())


def test_drain_still_answers_everything_after_cancel_support():
    # The happy path is untouched: a drain barrier processes all
    # admitted work and every future resolves ok.
    async def main():
        config = ServeConfig(n_shards=1, max_batch=8, max_delay_us=100,
                             telemetry=False)
        shard = Shard(0, config)
        shard.start()
        await shard.control("open", ("s", spec_for("hmp.local")))
        loop = asyncio.get_running_loop()
        futures = [loop.create_future() for _ in range(4)]
        for i, future in enumerate(futures):
            assert shard.try_submit(
                PredictRequest("s", op="step", pc=0x40, outcome=1, seq=i),
                future)
        await shard.drain()
        assert all(f.result().ok for f in futures)
    run(main())
