"""The serving invariant oracle: kernel divergence must be caught.

Under ``REPRO_CHECK_INVARIANTS=1`` every kernel-executed run is
shadow-replayed scalar on a copy of the pre-batch predictor; both the
results and the post-run predictor state must match bit-for-bit.  These
tests prove the oracle *fails* when the kernel misbehaves — an oracle
that cannot fail verifies nothing.
"""

import asyncio

import pytest

from repro.api import spec_for
from repro.serve import PredictRequest, PredictionService, ServeConfig
from repro.serve.batch import (
    ServeInvariantViolation,
    execute_steps,
    invariants_enabled,
)
from repro.serve.session import Session

numpy = pytest.importorskip("numpy")


def _requests(n=32):
    return [PredictRequest("s", op="step", pc=0x40 + 4 * (i % 3),
                           outcome=i % 2, seq=i) for i in range(n)]


def test_invariants_enabled_env(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
    assert not invariants_enabled()
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
    assert not invariants_enabled()
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    assert invariants_enabled()


def test_clean_kernel_passes_under_invariants(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    session = Session("s", spec_for("hmp.local", size=64, history=2),
                      backend="vectorized")
    results, used_kernel = execute_steps(session, _requests(),
                                         "vectorized", min_kernel_run=4)
    assert used_kernel
    assert len(results) == 32


def test_corrupted_results_raise(monkeypatch):
    from repro.fastpath import batchapi
    real = batchapi.replay_steps

    def lying_kernel(family, predictor, pcs, outcomes, extras):
        out = numpy.array(real(family, predictor, pcs, outcomes, extras))
        out[5] ^= 1  # flip one prediction
        return out

    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    monkeypatch.setattr(batchapi, "replay_steps", lying_kernel)
    session = Session("s", spec_for("hmp.local", size=64, history=2),
                      backend="vectorized")
    with pytest.raises(ServeInvariantViolation, match="index 5"):
        execute_steps(session, _requests(), "vectorized",
                      min_kernel_run=4)


def test_corrupted_state_raises(monkeypatch):
    from repro.fastpath import batchapi
    real = batchapi.replay_steps

    def state_scrambling_kernel(family, predictor, pcs, outcomes, extras):
        out = real(family, predictor, pcs, outcomes, extras)
        predictor.update(0x9999, False)  # extra, unreplayed training
        return out

    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    monkeypatch.setattr(batchapi, "replay_steps", state_scrambling_kernel)
    session = Session("s", spec_for("hmp.local", size=64, history=2),
                      backend="vectorized")
    with pytest.raises(ServeInvariantViolation, match="state"):
        execute_steps(session, _requests(), "vectorized",
                      min_kernel_run=4)


def test_divergence_surfaces_in_band_not_fatally(monkeypatch):
    """Through the full service, a violation resolves the affected
    requests with an internal error and the shard survives."""
    from repro.fastpath import batchapi

    def broken_kernel(family, predictor, pcs, outcomes, extras):
        raise ServeInvariantViolation("synthetic divergence")

    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    monkeypatch.setattr(batchapi, "replay_steps", broken_kernel)

    async def main():
        config = ServeConfig(n_shards=1, backend="vectorized",
                             min_kernel_run=4)
        async with PredictionService(config) as service:
            await service.open_session("s", spec_for("hmp.local",
                                                     size=64))
            responses = await asyncio.gather(*[
                service.submit(r) for r in _requests(16)])
            assert all(not r.ok for r in responses)
            assert all("ServeInvariantViolation" in r.error
                       for r in responses)
            # The shard is still alive and serving.
            ping = await service.request(PredictRequest(
                "s", op="predict", pc=0x40))
            assert ping.ok
    asyncio.run(main())
