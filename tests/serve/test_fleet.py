"""ServeFleet core behaviour: routing, durability, elasticity.

These tests run real worker subprocesses (small fleets, short
workloads).  The heavier end-to-end suites live next door:
``test_fleet_differential.py`` (semantics vs the single process) and
``test_fleet_chaos.py`` (kill/restart recovery).
"""

import asyncio
import random

import pytest

from repro.api import build_predictor, spec_for
from repro.serve import PredictRequest, ServeConfig
from repro.serve.batch import apply_step, replay_digest
from repro.serve.fleet import ServeFleet
from repro.serve.protocol import ERR_BAD_REQUEST, ERR_CLOSED
from repro.serve.snapshot import load_snapshot

SPEC = spec_for("binary.gshare", history=7)
CONFIG = ServeConfig(n_shards=2, max_batch=64, max_delay_us=200,
                     backend="vectorized", min_kernel_run=4)


def _steps(seed, n):
    rng = random.Random(seed)
    return [(0x400 + 4 * rng.randrange(16), rng.randrange(2))
            for _ in range(n)]


def _oracle(steps):
    predictor = build_predictor(SPEC)
    return [apply_step(SPEC.family, predictor, pc, outcome)
            for pc, outcome in steps]


async def _drive(fleet, workload, seq0=0):
    """Submit every session's steps concurrently; return result lists."""
    futures = {sid: [] for sid in workload}
    for sid, steps in workload.items():
        for i, (pc, outcome) in enumerate(steps):
            futures[sid].append(fleet.submit(PredictRequest(
                sid, op="step", pc=pc, outcome=outcome, seq=seq0 + i)))
    results = {}
    for sid, fs in futures.items():
        responses = await asyncio.gather(*fs)
        assert all(r.ok for r in responses), [
            r.error for r in responses if not r.ok][:3]
        results[sid] = [r.result for r in responses]
    return results


def test_fleet_serves_sessions_and_matches_scalar_oracle(tmp_path):
    workload = {f"s{i}": _steps(40 + i, 60) for i in range(6)}

    async def main():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            for sid in workload:
                await fleet.open_session(sid, SPEC)
            owners = {fleet.owner_of(sid) for sid in workload}
            results = await _drive(fleet, workload)
            stats = fleet.stats()
            return results, owners, stats

    results, owners, stats = asyncio.run(main())
    for sid, steps in workload.items():
        assert results[sid] == _oracle(steps)
    assert owners <= {"w0", "w1"}
    totals = stats["totals"]
    assert totals["workers"] == 2 and totals["workers_alive"] == 2
    assert totals["sessions"] == len(workload)
    assert totals["served"] == 6 * 60
    assert totals["worker_deaths"] == 0


def test_replay_window_digest_matches_local_execution(tmp_path):
    steps = _steps(99, 128)
    pcs = tuple(pc for pc, _ in steps)
    outcomes = tuple(o for _, o in steps)

    async def main():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            await fleet.open_session("trace", SPEC)
            response = await fleet.request(PredictRequest(
                "trace", op="replay", pcs=pcs, outcomes=outcomes, seq=0))
            assert response.ok, response.error
            return response.result, fleet.stats()["totals"]["served"]

    digest, served = asyncio.run(main())
    assert digest == replay_digest(_oracle(steps))
    # The router counts answered *requests*; the per-step accounting
    # (session.served += window) happens inside the worker.
    assert served == 1


def test_duplicate_inflight_seq_is_rejected(tmp_path):
    async def main():
        async with ServeFleet(n_workers=1, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            await fleet.open_session("dup", SPEC)
            first = fleet.submit(PredictRequest(
                "dup", op="step", pc=0x400, outcome=1, seq=5))
            second = fleet.submit(PredictRequest(
                "dup", op="step", pc=0x404, outcome=0, seq=5))
            return await asyncio.gather(first, second)

    first, second = asyncio.run(main())
    assert first.ok
    assert not second.ok and second.error == ERR_BAD_REQUEST


def test_stopped_fleet_rejects_cleanly(tmp_path):
    async def main():
        fleet = ServeFleet(n_workers=1, config=CONFIG,
                           state_dir=str(tmp_path))
        await fleet.start(recover=False)
        await fleet.stop()
        response = await fleet.submit(PredictRequest(
            "late", op="step", pc=0x400, outcome=1, seq=0))
        return response

    response = asyncio.run(main())
    assert not response.ok and response.error == ERR_CLOSED


@pytest.mark.slow
def test_resize_migrates_only_remapped_sessions_and_keeps_state(tmp_path):
    """Grow 2→3 mid-life: moved counts stay a minority (consistent
    hashing), every session keeps its trained state, and traffic
    continues correctly on the new topology."""
    workload = {f"m{i:03d}": _steps(7 * i, 30) for i in range(40)}

    async def main():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            for sid in workload:
                await fleet.open_session(sid, SPEC)
            first = await _drive(
                fleet, {sid: steps[:15] for sid, steps in workload.items()})
            moves = await fleet.resize(3)
            assert moves["workers"] == 3 and moves["added"] == 1
            assert 0 < moves["sessions_moved"] < len(workload)
            assert len(fleet.worker_names) == 3
            second = await _drive(
                fleet, {sid: steps[15:] for sid, steps in workload.items()},
                seq0=15)
            stats = fleet.stats()
            return first, second, stats

    first, second, stats = asyncio.run(main())
    for sid, steps in workload.items():
        assert first[sid] + second[sid] == _oracle(steps), (
            f"{sid} lost trained state across the resize")
    assert stats["totals"]["rebalances"] == 1
    assert stats["totals"]["sessions"] == len(workload)


@pytest.mark.slow
def test_resize_shrink_retires_workers(tmp_path):
    workload = {f"k{i:03d}": _steps(3 * i, 10) for i in range(20)}

    async def main():
        async with ServeFleet(n_workers=3, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            for sid in workload:
                await fleet.open_session(sid, SPEC)
            await _drive(fleet, {sid: s[:5] for sid, s in workload.items()})
            moves = await fleet.resize(2)
            assert moves["workers"] == 2 and moves["retired"] == 1
            tail = await _drive(
                fleet, {sid: s[5:] for sid, s in workload.items()}, seq0=5)
            return tail

    tail = asyncio.run(main())
    for sid, steps in workload.items():
        assert tail[sid] == _oracle(steps)[5:]


@pytest.mark.slow
def test_router_restart_recovers_sessions_from_disk(tmp_path):
    """Stop the router, start a fresh one on the same state_dir: the
    manifest + snapshots + WALs rebuild every session with its trained
    state."""
    workload = {f"r{i}": _steps(11 * i, 24) for i in range(8)}

    async def phase1():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            for sid in workload:
                await fleet.open_session(sid, SPEC)
            return await _drive(
                fleet, {sid: s[:12] for sid, s in workload.items()})

    async def phase2():
        async with ServeFleet(n_workers=2, config=CONFIG,
                              state_dir=str(tmp_path)) as fleet:
            await fleet.wait_all_live()
            stats = fleet.stats()
            tail = await _drive(
                fleet, {sid: s[12:] for sid, s in workload.items()},
                seq0=12)
            return tail, stats

    head = asyncio.run(phase1())
    tail, stats = asyncio.run(phase2())
    assert stats["totals"]["sessions"] == len(workload)
    for sid, steps in workload.items():
        assert head[sid] + tail[sid] == _oracle(steps)


def test_wal_is_bounded_by_snapshot_truncation(tmp_path):
    """wal_limit is a bound, not a suggestion: a long workload must
    leave the logs truncated behind persisted snapshots."""
    n_steps = 900
    workload = {"hot": _steps(1, n_steps)}

    async def main():
        async with ServeFleet(n_workers=1, config=CONFIG,
                              state_dir=str(tmp_path),
                              wal_limit=128) as fleet:
            await fleet.open_session("hot", SPEC)
            results = await _drive(fleet, workload)
            # Let any snapshot kicked off by the last flush finish.
            for _ in range(50):
                if fleet.stats()["totals"]["wal_records"] <= 256:
                    break
                await asyncio.sleep(0.02)
            return results, fleet.stats()["totals"]["wal_records"]

    results, wal_records = asyncio.run(main())
    assert results["hot"] == _oracle(workload["hot"])
    assert wal_records < n_steps, "nothing was ever truncated"
    assert wal_records <= 256, f"WAL unbounded: {wal_records} records"
    snap = load_snapshot(str(tmp_path), "snap-w0")
    assert snap is not None and "hot" in snap["sessions"]
