"""Tests for the event bus and the engine's hook points."""

import pytest

from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.obs import EventBus, EventKind, MemorySink, instrument
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed
from tests.engine.helpers import MicroTrace


def collision_trace():
    t = MicroTrace()
    t.alu(dst=0)
    for _ in range(4):
        t.alu(dst=0, srcs=(0,))
    t.store(0x4000, data_src=0)
    t.load(dst=7, address=0x4000)
    t.alu(dst=6, srcs=(7,))
    return t.build()


class TestEventBus:
    def test_counts_without_subscribers(self):
        bus = EventBus()
        bus.emit(EventKind.SQUASH, 5, 1, 0x10)
        bus.emit(EventKind.SQUASH, 6, 2, 0x14)
        assert bus.counts == {EventKind.SQUASH: 2}

    def test_kind_subscription_filters(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kind=EventKind.MISS)
        bus.emit(EventKind.MISS, 1, level="l2")
        bus.emit(EventKind.RETIRE, 2, 7)
        assert [e.kind for e in seen] == [EventKind.MISS]
        assert seen[0].fields["level"] == "l2"

    def test_wildcard_sees_everything(self):
        bus = EventBus()
        sink = bus.attach(MemorySink())
        bus.emit(EventKind.RENAME, 0, 0)
        bus.emit(EventKind.ISSUE, 1, 0)
        assert [e.kind for e in sink.events] == \
               [EventKind.RENAME, EventKind.ISSUE]

    def test_event_as_dict_drops_unset_identity(self):
        bus = EventBus()
        sink = bus.attach(MemorySink())
        bus.emit(EventKind.MISS, 9, level="mem")
        record = sink.events[0].as_dict()
        assert record == {"kind": "miss", "cycle": 9, "level": "mem"}

    def test_close_flushes_sinks(self):
        flushed = []

        class Sink:
            def on_event(self, event):
                pass

            def close(self):
                flushed.append(True)

        bus = EventBus()
        bus.attach(Sink())
        bus.close()
        assert flushed == [True]


class TestMachineHooks:
    def test_disabled_by_default(self):
        machine = Machine(scheme=make_scheme("traditional"))
        assert machine.obs is None
        machine.run(collision_trace())  # must not raise nor emit

    def test_lifecycle_events_cover_every_uop(self):
        machine = Machine(scheme=make_scheme("traditional"))
        sink = instrument(machine).attach(MemorySink())
        result = machine.run(collision_trace())
        counts = sink.counts()
        assert counts[EventKind.RENAME] == result.retired_uops
        assert counts[EventKind.RETIRE] == result.retired_uops
        assert counts[EventKind.ISSUE] >= result.retired_uops

    def test_collision_and_squash_counts_match_result(self):
        machine = Machine(scheme=make_scheme("traditional"))
        sink = instrument(machine).attach(MemorySink())
        result = machine.run(collision_trace())
        counts = sink.counts()
        assert result.collision_penalties > 0
        assert counts[EventKind.COLLISION] == result.collision_penalties
        assert counts[EventKind.SQUASH] == result.squashed_issues

    def test_retire_event_carries_lifecycle(self):
        machine = Machine(scheme=make_scheme("traditional"))
        sink = instrument(machine).attach(MemorySink())
        machine.run(collision_trace())
        for event in sink.of_kind(EventKind.RETIRE):
            assert event.fields["rename_cycle"] <= event.cycle
            assert event.fields["issue_cycle"] <= event.cycle
            assert "uclass" in event.fields

    def test_store_lifecycle_from_mob(self):
        machine = Machine(scheme=make_scheme("traditional"))
        sink = instrument(machine).attach(MemorySink())
        machine.run(collision_trace())
        counts = sink.counts()
        assert counts[EventKind.STORE_TRACKED] == 1
        assert counts[EventKind.STORE_DATA] == 1

    def test_observed_run_matches_unobserved(self):
        trace = build_trace(profile_for("gcc"), n_uops=3000,
                            seed=trace_seed("gcc"), name="gcc")
        plain = Machine(scheme=make_scheme("inclusive")).run(trace)
        observed = Machine(scheme=make_scheme("inclusive"))
        instrument(observed).attach(MemorySink())
        result = observed.run(trace)
        assert result.cycles == plain.cycles
        assert result.squashed_issues == plain.squashed_issues


class TestPredictorHooks:
    def test_hitmiss_and_cht_families_emit(self):
        trace = build_trace(profile_for("gcc"), n_uops=3000,
                            seed=trace_seed("gcc"), name="gcc")
        from repro.hitmiss.local import LocalHMP
        machine = Machine(scheme=make_scheme("inclusive"), hmp=LocalHMP())
        sink = instrument(machine).attach(MemorySink())
        machine.run(trace)
        families = {e.fields["family"]
                    for e in sink.of_kind(EventKind.PREDICTOR_UPDATE)}
        assert "hitmiss" in families
        assert "cht" in families

    def test_branch_family_emits(self):
        from repro.predictors.bimodal import BimodalPredictor
        trace = build_trace(profile_for("gcc"), n_uops=2000,
                            seed=trace_seed("gcc"), name="gcc")
        machine = Machine(scheme=make_scheme("traditional"),
                          branch_predictor=BimodalPredictor(n_entries=512))
        sink = instrument(machine).attach(MemorySink())
        result = machine.run(trace)
        branch_updates = [e for e in sink.of_kind(EventKind.PREDICTOR_UPDATE)
                          if e.fields["family"] == "branch"]
        assert len(branch_updates) == result.branches

    def test_miss_events_match_hierarchy_counter(self):
        trace = build_trace(profile_for("gcc"), n_uops=3000,
                            seed=trace_seed("gcc"), name="gcc")
        machine = Machine(scheme=make_scheme("traditional"))
        sink = instrument(machine).attach(MemorySink())
        machine.run(trace)
        expected = machine.hierarchy.stats.get("l1_misses").value
        assert len(sink.of_kind(EventKind.MISS)) == expected


@pytest.mark.parametrize("policy", ["oblivious", "oracle"])
def test_bank_conflict_events(policy):
    from repro.common.config import BASELINE_MACHINE
    import dataclasses
    l1d = dataclasses.replace(BASELINE_MACHINE.memory.l1d, n_banks=2)
    memory = dataclasses.replace(BASELINE_MACHINE.memory, l1d=l1d)
    config = dataclasses.replace(BASELINE_MACHINE, memory=memory)
    trace = build_trace(profile_for("gcc"), n_uops=4000,
                        seed=trace_seed("gcc"), name="gcc")
    machine = Machine(config=config, scheme=make_scheme("traditional"),
                      bank_policy=policy)
    sink = instrument(machine).attach(MemorySink())
    result = machine.run(trace)
    counts = sink.counts()
    assert counts.get(EventKind.BANK_CONFLICT, 0) == result.bank_conflicts
