"""Tests for the unified metrics registry."""

import json

import pytest

from repro.common.stats import StatGroup
from repro.common.types import LoadCollisionClass
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.engine.results import SimResult
from repro.obs import MetricsRegistry
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed


def small_result():
    result = SimResult(trace_name="t", scheme="traditional")
    result.cycles = 100
    result.retired_uops = 250
    result.retired_loads = 40
    result.collision_penalties = 3
    result.load_classes[LoadCollisionClass.NOT_CONFLICTING] = 30
    result.load_classes[LoadCollisionClass.AC_PC] = 10
    result.stall_breakdown = {"operands": 12, "port": 4}
    return result


class TestCoreOps:
    def test_set_and_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.set("b.two", 2)
        reg.set("a.one", 1)
        assert list(reg.snapshot()) == ["a.one", "b.two"]

    def test_set_rejects_non_numbers(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError):
            reg.set("x", "not a number")

    def test_inc(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 4)
        assert reg.get("hits") == 5

    def test_mount_is_live(self):
        group = StatGroup("memory")
        counter = group.counter("hits")
        reg = MetricsRegistry()
        reg.mount("memory", group)
        assert reg.snapshot()["memory.hits"] == 0
        counter.add(7)
        assert reg.snapshot()["memory.hits"] == 7

    def test_mount_flattens_ratio_and_histogram(self):
        group = StatGroup("g")
        ratio = group.ratio("acc")
        ratio.add(3, 4)
        hist = group.histogram("lat")
        hist.add(2, 10)
        reg = MetricsRegistry()
        reg.mount("g", group)
        snap = reg.snapshot()
        assert snap["g.acc.num"] == 3
        assert snap["g.acc.ratio"] == pytest.approx(0.75)
        assert snap["g.lat.total"] == 10
        assert snap["g.lat.mean"] == pytest.approx(2.0)

    def test_ingest_skips_non_numeric_leaves(self):
        reg = MetricsRegistry()
        reg.ingest("meta", {"n": 3, "label": "ignored", "sub": {"k": 1}})
        snap = reg.snapshot()
        assert snap == {"meta.n": 3, "meta.sub.k": 1}

    def test_tree_nests_dotted_paths(self):
        reg = MetricsRegistry()
        reg.set("run.cycles", 9)
        reg.set("run.loads.total", 2)
        tree = reg.tree()
        assert tree["run"]["cycles"] == 9
        assert tree["run"]["loads"]["total"] == 2

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.set("a", 1)
        reg.set("b.c", 2.5)
        assert json.loads(reg.to_json()) == {"a": 1, "b.c": 2.5}


class TestDiffMerge:
    def test_diff_reports_changes_only(self):
        before = {"cycles": 100, "ipc": 2.0, "same": 5}
        after = {"cycles": 90, "ipc": 2.2, "same": 5}
        delta = MetricsRegistry.diff(before, after)
        assert delta == {"cycles": (100, 90), "ipc": (2.0, 2.2)}

    def test_diff_handles_one_sided_paths(self):
        delta = MetricsRegistry.diff({"only_a": 1}, {"only_b": 2})
        assert delta == {"only_a": (1, None), "only_b": (None, 2)}

    def test_merge_sums_leaves(self):
        a = MetricsRegistry()
        a.set("cycles", 100)
        a.set("loads", 10)
        b = MetricsRegistry()
        b.set("cycles", 50)
        b.set("stores", 3)
        a.merge(b)
        snap = a.snapshot()
        assert snap["cycles"] == 150
        assert snap["loads"] == 10
        assert snap["stores"] == 3


class TestAdapters:
    def test_from_result_core_paths(self):
        reg = MetricsRegistry.from_result(small_result())
        snap = reg.snapshot()
        assert snap["run.cycles"] == 100
        assert snap["run.retired_uops"] == 250
        assert snap["run.ipc"] == pytest.approx(2.5)
        assert snap["run.loads.classes.not-conflicting"] == 30
        assert snap["run.loads.classes.AC-PC"] == 10
        assert snap["run.stalls.operands"] == 12
        assert snap["run.loads.frac_not_conflicting"] == pytest.approx(0.75)

    def test_from_result_skips_empty_hitmiss(self):
        snap = MetricsRegistry.from_result(small_result()).snapshot()
        assert not any(p.startswith("run.hitmiss") for p in snap)

    def test_from_machine_mounts_hierarchy(self):
        trace = build_trace(profile_for("gcc"), n_uops=2000,
                            seed=trace_seed("gcc"), name="gcc")
        machine = Machine(scheme=make_scheme("inclusive"))
        result = machine.run(trace)
        snap = MetricsRegistry.from_machine(machine, result).snapshot()
        assert snap["run.cycles"] == result.cycles
        assert any(p.startswith("memory.") for p in snap)
        assert snap["predictors.cht.storage_bits"] > 0

    def test_from_result_matches_hitmiss_stats(self):
        from repro.hitmiss.local import LocalHMP
        trace = build_trace(profile_for("gcc"), n_uops=2000,
                            seed=trace_seed("gcc"), name="gcc")
        machine = Machine(scheme=make_scheme("traditional"), hmp=LocalHMP())
        result = machine.run(trace)
        snap = MetricsRegistry.from_result(result).snapshot()
        assert result.hitmiss.total > 0
        for cls, count in result.hitmiss.counts.items():
            assert snap[f"run.hitmiss.classes.{cls.value}"] == count


class TestStreamingHistogramMounts:
    def _hist(self, values, name="lat"):
        from repro.common.stats import StreamingHistogram
        hist = StreamingHistogram(name)
        for v in values:
            hist.record(v)
        return hist

    def test_mounted_histogram_flattens_to_summary_leaves(self):
        reg = MetricsRegistry()
        reg.mount("svc.latency", self._hist([10.0, 20.0, 30.0]))
        snap = reg.snapshot()
        assert snap["svc.latency.count"] == 3
        for leaf in ("mean", "min", "max", "p50", "p90", "p99", "p999"):
            assert f"svc.latency.{leaf}" in snap

    def test_diff_over_histogram_leaves(self):
        reg = MetricsRegistry()
        hist = self._hist([10.0])
        reg.mount("svc.latency", hist)
        before = reg.snapshot()
        hist.record(10.0)
        after = reg.snapshot()
        delta = MetricsRegistry.diff(before, after)
        assert delta["svc.latency.count"] == (1.0, 2.0)

    def test_merge_is_lossless_not_quantile_summing(self):
        # Merging registries must combine histogram *buckets*; summing
        # the flattened p50 leaves (the naive approach) would double
        # every quantile.
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.mount("svc.latency", self._hist([100.0] * 50))
        b.mount("svc.latency", self._hist([200.0] * 50))
        a.merge(b)
        snap = a.snapshot()
        assert snap["svc.latency.count"] == 100
        # Median of the union sits at one of the modes — not at
        # 100+200 (leaf summing) nor outside [100, 200].
        assert 95.0 <= snap["svc.latency.p50"] <= 205.0
        assert snap["svc.latency.max"] == pytest.approx(200.0)

    def test_merge_mounts_missing_histogram_copy(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        source = self._hist([5.0, 15.0])
        b.mount("svc.latency", source)
        a.merge(b)
        assert a.snapshot()["svc.latency.count"] == 2
        # A copy was mounted: mutating the source must not leak into a.
        source.record(25.0)
        assert a.snapshot()["svc.latency.count"] == 2

    def test_merge_still_sums_plain_gauges(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.set("served", 10)
        b.set("served", 5)
        b.mount("svc.latency", self._hist([1.0]))
        a.merge(b)
        snap = a.snapshot()
        assert snap["served"] == 15
        assert snap["svc.latency.count"] == 1
