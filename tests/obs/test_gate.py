"""Perf regression gate: extraction, history, comparison, CLI exits."""

import copy
import json

import pytest

from repro.obs.__main__ import main
from repro.obs.gate import (
    Violation,
    append_history,
    compare,
    extract_metrics,
    history_row,
    make_baseline,
    metric_higher_is_better,
    read_history,
)

SERVE_REPORT = {
    "bench": "repro.serve",
    "schema": 2,
    "provenance": {"git_rev": "abc1234", "hostname": "bench-host",
                   "python": "3.11.0", "numpy": "1.26.0",
                   "cpu_count": 8, "platform": "Linux", "machine": "x86_64"},
    "sides": {
        "scalar": {"throughput_rps": 30000.0,
                   "service_us": {"stage": "predict", "p50": 25.0}},
        "vectorized": {"throughput_rps": 110000.0,
                       "service_us": {"stage": "kernel", "p50": 1000.0}},
    },
}

THROUGHPUT_REPORT = {
    "benchmark": "throughput",
    "schemes": {"traditional": {"uops_per_sec": 50000.0},
                "perfect": {"uops_per_sec": 60000.0}},
    "fastpath": {"hmp_hybrid": {"reference_uops_per_sec": 1e6,
                                "vectorized_uops_per_sec": 9e6,
                                "speedup": 9.0}},
}


class TestDirection:
    def test_throughput_metrics_are_higher_better(self):
        assert metric_higher_is_better("serve.scalar.throughput_rps")
        assert metric_higher_is_better("schemes.perfect.uops_per_sec")

    def test_latency_metrics_are_lower_better(self):
        assert not metric_higher_is_better("serve.scalar.service_us.p50")
        assert not metric_higher_is_better("trace.total_us")


class TestExtraction:
    def test_serve_report(self):
        metrics = extract_metrics(SERVE_REPORT)
        assert metrics["serve.vectorized.throughput_rps"] == 110000.0
        assert metrics["serve.scalar.service_us.p50"] == 25.0

    def test_throughput_report(self):
        metrics = extract_metrics(THROUGHPUT_REPORT)
        assert metrics["schemes.traditional.uops_per_sec"] == 50000.0
        assert metrics["fastpath.hmp_hybrid.vectorized_uops_per_sec"] \
            == 9e6

    def test_unknown_report_raises(self):
        with pytest.raises(ValueError):
            extract_metrics({"something": "else"})


class TestHistory:
    def test_rows_carry_full_provenance(self, tmp_path):
        path = str(tmp_path / "BENCH_history.jsonl")
        append_history(path, history_row(SERVE_REPORT, source="a.json"))
        append_history(path, history_row(THROUGHPUT_REPORT,
                                         source="b.json"))
        rows = read_history(path)
        assert len(rows) == 2
        # The serve report embeds provenance: the row must describe the
        # *bench* machine, not whoever ran the gate.
        assert rows[0]["provenance"]["hostname"] == "bench-host"
        assert rows[0]["provenance"]["git_rev"] == "abc1234"
        assert rows[0]["kind"] == "serve" and rows[0]["source"] == "a.json"
        # The throughput report has none: collected at gate time.
        for key in ("git_rev", "hostname", "python", "numpy",
                    "cpu_count"):
            assert key in rows[1]["provenance"]

    def test_read_missing_history_is_empty(self, tmp_path):
        assert read_history(str(tmp_path / "nope.jsonl")) == []


class TestCompare:
    def test_identical_rerun_passes(self):
        baseline = make_baseline(SERVE_REPORT)
        assert compare(extract_metrics(SERVE_REPORT), baseline) == []

    def test_2x_throughput_regression_fails(self):
        baseline = make_baseline(SERVE_REPORT, tolerance=0.4)
        slow = copy.deepcopy(SERVE_REPORT)
        slow["sides"]["vectorized"]["throughput_rps"] /= 2.0
        violations = compare(extract_metrics(slow), baseline)
        assert [v.metric for v in violations] == \
            ["serve.vectorized.throughput_rps"]
        assert "-50.0%" in str(violations[0])

    def test_2x_latency_regression_fails(self):
        baseline = make_baseline(SERVE_REPORT, tolerance=0.4)
        slow = copy.deepcopy(SERVE_REPORT)
        slow["sides"]["scalar"]["service_us"]["p50"] *= 2.0
        violations = compare(extract_metrics(slow), baseline)
        assert [v.metric for v in violations] == \
            ["serve.scalar.service_us.p50"]

    def test_within_tolerance_passes(self):
        baseline = make_baseline(SERVE_REPORT, tolerance=0.5)
        slightly = copy.deepcopy(SERVE_REPORT)
        slightly["sides"]["vectorized"]["throughput_rps"] *= 0.7
        assert compare(extract_metrics(slightly), baseline) == []

    def test_per_metric_override_wins(self):
        baseline = make_baseline(SERVE_REPORT, tolerance=0.5)
        baseline["per_metric"] = {
            "serve.vectorized.throughput_rps": 0.1}
        slightly = copy.deepcopy(SERVE_REPORT)
        slightly["sides"]["vectorized"]["throughput_rps"] *= 0.7
        violations = compare(extract_metrics(slightly), baseline)
        assert [v.metric for v in violations] == \
            ["serve.vectorized.throughput_rps"]

    def test_new_metric_without_baseline_is_ignored(self):
        baseline = make_baseline(SERVE_REPORT)
        metrics = extract_metrics(SERVE_REPORT)
        metrics["serve.new_side.throughput_rps"] = 1.0
        assert compare(metrics, baseline) == []

    def test_violation_str_is_informative(self):
        v = Violation("m.p50_us", baseline=100.0, measured=260.0,
                      tolerance=0.5, higher_is_better=False)
        text = str(v)
        assert "m.p50_us" in text and "+160.0%" in text and "up" in text


class TestGateCli:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_first_run_creates_baseline_then_identical_passes(
            self, tmp_path, capsys):
        report = self._write(tmp_path, "r.json", SERVE_REPORT)
        history = str(tmp_path / "hist.jsonl")
        baseline = str(tmp_path / "base.json")
        assert main(["gate", report, "--history", history,
                     "--baseline", baseline]) == 0
        assert "baseline" in capsys.readouterr().out
        # Identical re-run against the new baseline: exit 0.
        assert main(["gate", report, "--history", history,
                     "--baseline", baseline]) == 0
        assert len(read_history(history)) == 2

    def test_synthetic_2x_regression_exits_nonzero(self, tmp_path,
                                                   capsys):
        report = self._write(tmp_path, "good.json", SERVE_REPORT)
        slow_report = copy.deepcopy(SERVE_REPORT)
        for side in slow_report["sides"].values():
            side["throughput_rps"] /= 2.0
        slow = self._write(tmp_path, "slow.json", slow_report)
        history = str(tmp_path / "hist.jsonl")
        baseline = str(tmp_path / "base.json")
        assert main(["gate", report, "--history", history,
                     "--baseline", baseline, "--tolerance", "0.3"]) == 0
        assert main(["gate", slow, "--history", history,
                     "--baseline", baseline, "--tolerance", "0.3"]) == 1
        out = capsys.readouterr().out
        assert "throughput_rps" in out
        rows = read_history(history)
        assert len(rows) == 2  # failures still append to the trajectory

    def test_history_only_mode_without_baseline(self, tmp_path, capsys):
        report = self._write(tmp_path, "r.json", THROUGHPUT_REPORT)
        history = str(tmp_path / "hist.jsonl")
        assert main(["gate", report, "--history", history]) == 0
        assert "history-only" in capsys.readouterr().out
        assert len(read_history(history)) == 1

    def test_no_append_leaves_history_untouched(self, tmp_path):
        report = self._write(tmp_path, "r.json", SERVE_REPORT)
        history = str(tmp_path / "hist.jsonl")
        baseline = str(tmp_path / "base.json")
        assert main(["gate", report, "--history", history,
                     "--baseline", baseline, "--no-append"]) == 0
        assert read_history(history) == []

    def test_unrecognised_report_exits_2(self, tmp_path):
        report = self._write(tmp_path, "junk.json", {"not": "a bench"})
        assert main(["gate", report,
                     "--history", str(tmp_path / "h.jsonl")]) == 2
