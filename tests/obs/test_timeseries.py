"""Time-series exporter: JSONL stream, Prometheus text, sampling loop."""

import json
import threading
import time

from repro.obs.timeseries import (
    TimeSeriesExporter,
    prometheus_name,
    read_timeseries,
    to_prometheus,
)


class TestPrometheusFormat:
    def test_name_sanitisation(self):
        assert prometheus_name("serve.queue_depth") == \
            "repro_serve_queue_depth"
        assert prometheus_name("trace.stage_us.kernel.p99") == \
            "repro_trace_stage_us_kernel_p99"
        assert prometheus_name("weird-name!x", prefix="p") == \
            "p_weird_name_x"

    def test_exposition_shape(self):
        text = to_prometheus({"a.one": 1.5, "b.two": 2},
                             timestamp_ms=1234)
        lines = text.strip().splitlines()
        assert "# TYPE repro_a_one gauge" in lines
        assert "repro_a_one 1.5 1234" in lines
        assert "repro_b_two 2 1234" in lines
        assert text.endswith("\n")


class TestExporter:
    def test_sample_once_appends_jsonl_and_rewrites_prom(self, tmp_path):
        jsonl = tmp_path / "m.jsonl"
        prom = tmp_path / "m.prom"
        state = {"v": 0.0}

        def source():
            state["v"] += 1.0
            return {"counter": state["v"]}

        exporter = TimeSeriesExporter(source, interval_ms=10_000,
                                      jsonl_path=str(jsonl),
                                      prom_path=str(prom))
        exporter.sample_once()
        exporter.sample_once()
        rows = read_timeseries(str(jsonl))
        assert [r["metrics"]["counter"] for r in rows] == [1.0, 2.0]
        assert all("t" in r for r in rows)
        # prom file is a full rewrite: only the latest value present.
        text = prom.read_text()
        assert "repro_counter 2" in text and "repro_counter 1" not in text

    def test_background_loop_samples_and_final_flush(self, tmp_path):
        jsonl = tmp_path / "m.jsonl"
        calls = []

        def source():
            calls.append(time.monotonic())
            return {"x": float(len(calls))}

        exporter = TimeSeriesExporter(source, interval_ms=20,
                                      jsonl_path=str(jsonl))
        with exporter:
            time.sleep(0.15)
        assert len(calls) >= 3  # ~7 expected; generous for slow CI
        rows = read_timeseries(str(jsonl))
        # stop() takes one final sample, so the file matches the calls.
        assert len(rows) == len(calls)
        assert rows[-1]["metrics"]["x"] == float(len(calls))

    def test_stop_is_idempotent_and_joins_thread(self, tmp_path):
        exporter = TimeSeriesExporter(lambda: {"x": 1.0},
                                      interval_ms=10,
                                      jsonl_path=str(tmp_path / "m.jsonl"))
        exporter.start()
        exporter.stop()
        exporter.stop()
        assert not any(t.name == "repro-obs-timeseries"
                       for t in threading.enumerate())

    def test_source_errors_do_not_kill_the_loop(self, tmp_path):
        jsonl = tmp_path / "m.jsonl"
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] % 2 == 0:
                raise RuntimeError("transient")
            return {"n": float(state["n"])}

        exporter = TimeSeriesExporter(flaky, interval_ms=10,
                                      jsonl_path=str(jsonl))
        exporter.start()
        time.sleep(0.1)
        exporter.stop(final_sample=False)
        assert exporter.n_errors >= 1
        rows = read_timeseries(str(jsonl))
        assert rows, "loop kept sampling through source errors"
        assert all(r["metrics"]["n"] % 2 == 1 for r in rows)


class TestReader:
    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps({"t": 1.0, "metrics": {"a": 2}})
                        + "\n\n")
        rows = read_timeseries(str(path))
        assert len(rows) == 1 and rows[0]["metrics"]["a"] == 2


class TestMonotonicStamps:
    """Rates must come from the monotonic stamp: wall time can step
    backwards (NTP correction) and used to poison every consumer that
    differenced ``t``."""

    def test_rows_carry_both_stamps(self, tmp_path):
        jsonl = tmp_path / "m.jsonl"
        exporter = TimeSeriesExporter(lambda: {"x": 1.0},
                                      interval_ms=10_000,
                                      jsonl_path=str(jsonl))
        exporter.sample_once()
        exporter.sample_once()
        rows = read_timeseries(str(jsonl))
        assert all("t" in r and "mt" in r for r in rows)
        assert rows[1]["mt"] > rows[0]["mt"]

    def test_backwards_wall_step_keeps_monotonic_ordered(
            self, tmp_path, monkeypatch):
        jsonl = tmp_path / "m.jsonl"
        walls = iter([1000.0, 400.0])  # the clock steps back 10 min
        monkeypatch.setattr("repro.obs.timeseries.time.time",
                            lambda: next(walls))
        exporter = TimeSeriesExporter(lambda: {"serve.served": 7.0},
                                      interval_ms=10_000,
                                      jsonl_path=str(jsonl))
        first = exporter.sample_once()
        second = exporter.sample_once()
        # Wall time is recorded as-is (informational)...
        assert second["t"] < first["t"]
        # ...but the monotonic stamp still advances.
        assert second["mt"] > first["mt"]
        rows = read_timeseries(str(jsonl))
        assert rows[1]["mt"] > rows[0]["mt"]
