"""Run-provenance collection and machine identity."""

import subprocess

from repro.obs.provenance import (
    collect_provenance,
    numpy_version,
    same_machine,
)


class TestCollect:
    def test_has_all_fields(self):
        prov = collect_provenance()
        for key in ("git_rev", "hostname", "platform", "machine",
                    "python", "numpy", "cpu_count"):
            assert key in prov, key
        assert isinstance(prov["cpu_count"], int)
        assert prov["python"].count(".") >= 1

    def test_git_rev_matches_repo(self):
        prov = collect_provenance()
        head = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True)
        if head.returncode == 0:
            assert prov["git_rev"] == head.stdout.strip()

    def test_numpy_version_is_string(self):
        assert isinstance(numpy_version(), str)

    def test_json_safe(self):
        import json
        json.dumps(collect_provenance())


class TestSameMachine:
    def test_identical_is_same(self):
        prov = collect_provenance()
        assert same_machine(prov, dict(prov))

    def test_different_host_is_not(self):
        a = collect_provenance()
        b = dict(a)
        b["hostname"] = a["hostname"] + "-other"
        assert not same_machine(a, b)

    def test_different_cpu_count_is_not(self):
        a = collect_provenance()
        b = dict(a)
        b["cpu_count"] = int(a["cpu_count"]) + 64
        assert not same_machine(a, b)
