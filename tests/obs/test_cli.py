"""Tests for the ``python -m repro.obs`` command-line interface."""

import json

import pytest

from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.obs import observed_run
from repro.obs.__main__ import main
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "run"
    machine = Machine(scheme=make_scheme("inclusive"))
    trace = build_trace(profile_for("gcc"), n_uops=2000,
                        seed=trace_seed("gcc"), name="gcc")
    observed_run(machine, trace, str(out))
    return out


def test_summarize_directory(run_dir, capsys):
    assert main(["summarize", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "gcc/inclusive" in out
    assert "[run]" in out and "cycles" in out
    assert "uops/sec" in out


def test_summarize_metrics_file(run_dir, capsys):
    assert main(["summarize", str(run_dir / "metrics.json")]) == 0
    out = capsys.readouterr().out
    assert "[run]" in out and "ipc" in out


def test_summarize_events_log(run_dir, capsys):
    assert main(["summarize", str(run_dir / "events.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    assert "retire" in out


def test_diff_two_runs(run_dir, tmp_path, capsys):
    other = tmp_path / "other"
    machine = Machine(scheme=make_scheme("traditional"))
    trace = build_trace(profile_for("gcc"), n_uops=2000,
                        seed=trace_seed("gcc"), name="gcc")
    observed_run(machine, trace, str(other))
    assert main(["diff", str(run_dir), str(other)]) == 0
    out = capsys.readouterr().out
    assert "run.cycles" in out  # schemes differ, cycles must differ
    assert "delta" in out


def test_diff_identical_runs_is_quiet(run_dir, capsys):
    assert main(["diff", str(run_dir), str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "no metric differences" in out


def test_export_writes_chrome_trace(run_dir, tmp_path, capsys):
    out = str(tmp_path / "perfetto.json")
    assert main(["export", str(run_dir / "events.jsonl"),
                 "-o", out, "--lanes", "4"]) == 0
    with open(out, encoding="utf-8") as handle:
        doc = json.load(handle)
    assert doc["traceEvents"]
    lanes = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert lanes <= set(range(4))


def test_run_command(tmp_path, capsys):
    out = str(tmp_path / "cli_run")
    assert main(["run", "--trace", "gcc", "--uops", "1500",
                 "--scheme", "traditional", "--out", out,
                 "--no-chrome"]) == 0
    text = capsys.readouterr().out
    assert "manifest.json" in text
    assert (tmp_path / "cli_run" / "events.jsonl").exists()
    assert not (tmp_path / "cli_run" / "trace.json").exists()


def test_summarize_missing_artifacts(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(FileNotFoundError):
        main(["summarize", str(empty)])


def _spans_file(tmp_path, n=6):
    from repro.obs.trace import RequestTracer
    tracer = RequestTracer(sample_shift=0)
    for i in range(n):
        span = tracer.start("cli", i)
        for stage, offset in (("decode", 5), ("queue", 200),
                              ("batch", 210), ("kernel", 700),
                              ("reply", 705)):
            span.mark(stage, span.start_us + offset)
        tracer.finish(span)
    path = tmp_path / "spans.jsonl"
    tracer.write_jsonl(str(path))
    return path


def test_trace_summary_view(tmp_path, capsys):
    path = _spans_file(tmp_path)
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    for stage in ("decode", "queue", "batch", "kernel", "reply"):
        assert stage in out
    assert "slowest" in out
    assert "p99_us" in out


def test_trace_chrome_export(tmp_path, capsys):
    path = _spans_file(tmp_path)
    out_path = tmp_path / "requests.trace.json"
    assert main(["trace", str(path), "--out", str(out_path)]) == 0
    document = json.loads(out_path.read_text())
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in slices} == {"decode", "queue", "batch",
                                           "kernel", "reply"}
