"""PhaseProfiler: phase accounting for the simulator's own wall-clock."""

import time

import pytest

from repro.obs.profile import PhaseProfiler


class TestPhases:
    def test_phase_records_elapsed(self):
        prof = PhaseProfiler()
        with prof.phase("work"):
            time.sleep(0.01)
        assert prof.timings["work"] >= 0.01
        assert prof.timings["work"] < 1.0

    def test_reentering_a_phase_accumulates(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("loop"):
                time.sleep(0.002)
        assert set(prof.timings) == {"loop"}
        assert prof.timings["loop"] >= 0.006

    def test_phases_are_independent_buckets(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            pass
        with prof.phase("b"):
            time.sleep(0.005)
        assert prof.timings["b"] > prof.timings["a"] >= 0.0

    def test_exception_inside_phase_still_counts(self):
        prof = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with prof.phase("broken"):
                time.sleep(0.002)
                raise RuntimeError("boom")
        assert prof.timings["broken"] >= 0.002

    def test_nested_phases_both_record(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                time.sleep(0.002)
        assert prof.timings["outer"] >= prof.timings["inner"] >= 0.002


class TestTotals:
    def test_accounted_is_sum_of_phases(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            time.sleep(0.002)
        with prof.phase("b"):
            time.sleep(0.002)
        assert prof.accounted == pytest.approx(
            prof.timings["a"] + prof.timings["b"])

    def test_total_covers_accounted(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            time.sleep(0.002)
        assert prof.total >= prof.accounted

    def test_as_dict_is_a_copy(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            pass
        out = prof.as_dict()
        out["a"] = 999.0
        assert prof.timings["a"] != 999.0

    def test_repr_names_phases(self):
        prof = PhaseProfiler()
        with prof.phase("simulate"):
            pass
        assert "simulate" in repr(prof)
