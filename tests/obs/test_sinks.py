"""Tests for the sinks, the run manifest and ``observed_run``."""

import json

from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.obs import (
    ChromeTraceSink,
    EventBus,
    EventKind,
    JsonlSink,
    PhaseProfiler,
    RunManifest,
    events_to_chrome_trace,
    instrument,
    observed_run,
    read_jsonl,
)
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed


def gcc_trace(n_uops=3000):
    return build_trace(profile_for("gcc"), n_uops=n_uops,
                       seed=trace_seed("gcc"), name="gcc")


def observed(tmp_path, scheme="inclusive", n_uops=3000):
    machine = Machine(scheme=make_scheme(scheme))
    return observed_run(machine, gcc_trace(n_uops), str(tmp_path / "run"))


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        bus.attach(JsonlSink(path))
        bus.emit(EventKind.SQUASH, 4, 2, 0x10, cause="collision")
        bus.emit(EventKind.MISS, 7, level="l2", latency=12)
        bus.close()
        records = read_jsonl(path)
        assert records == [
            {"kind": "squash", "cycle": 4, "seq": 2, "pc": 16,
             "cause": "collision"},
            {"kind": "miss", "cycle": 7, "level": "l2", "latency": 12},
        ]

    def test_log_counts_match_result_counters(self, tmp_path):
        """Acceptance: JSONL event counts == the SimResult counters."""
        path = str(tmp_path / "events.jsonl")
        machine = Machine(scheme=make_scheme("inclusive"))
        bus = instrument(machine)
        bus.attach(JsonlSink(path))
        result = machine.run(gcc_trace())
        bus.close()
        kinds = {}
        for record in read_jsonl(path):
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        assert kinds.get(EventKind.COLLISION, 0) == result.collision_penalties
        assert kinds.get(EventKind.SQUASH, 0) == result.squashed_issues
        assert kinds[EventKind.RETIRE] == result.retired_uops
        assert kinds.get(EventKind.FORWARD, 0) == result.forwarded_loads


class TestChromeTrace:
    def test_document_structure(self, tmp_path):
        machine = Machine(scheme=make_scheme("traditional"))
        sink = ChromeTraceSink(n_lanes=8)
        instrument(machine).attach(sink)
        result = machine.run(gcc_trace(2000))
        doc = sink.document()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == result.retired_uops
        for entry in slices[:50]:
            assert entry["dur"] >= 1
            assert entry["ts"] >= 0
            assert 0 <= entry["tid"] < 8
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)

    def test_instants_for_speculation_events(self):
        sink = ChromeTraceSink()
        bus = EventBus()
        bus.attach(sink)
        bus.emit(EventKind.COLLISION, 10, 3, 0x40, visible=True)
        bus.emit(EventKind.RENAME, 11, 4)  # implicit; not rendered
        doc = sink.document()
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == EventKind.COLLISION

    def test_export_from_jsonl_records(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        bus.attach(JsonlSink(path))
        bus.emit(EventKind.RETIRE, 9, 1, 0x8, uclass="LOAD",
                 rename_cycle=4, issue_cycle=5, complete_cycle=8,
                 squashes=0, collided=False)
        bus.close()
        doc = events_to_chrome_trace(read_jsonl(path), n_lanes=4)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == 4 and slices[0]["dur"] == 5
        assert slices[0]["name"] == "LOAD"


class TestRunManifest:
    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = RunManifest(name="demo", config={"width": 8},
                               seed=1234, n_uops=1000, cycles=400,
                               wall_seconds=0.5,
                               phases={"simulate": 0.5},
                               metrics={"run.cycles": 400},
                               event_counts={"retire": 1000})
        manifest.write(path)
        loaded = RunManifest.load(path)
        assert loaded.name == "demo"
        assert loaded.seed == 1234
        assert loaded.uops_per_sec == manifest.uops_per_sec == 2000.0
        assert loaded.metrics == {"run.cycles": 400}
        assert loaded.event_counts == {"retire": 1000}
        assert loaded.schema == 1


class TestPhaseProfiler:
    def test_phases_accumulate(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            pass
        with prof.phase("a"):
            pass
        with prof.phase("b"):
            pass
        assert set(prof.timings) == {"a", "b"}
        assert prof.accounted >= 0.0
        assert prof.as_dict()["a"] >= 0.0


class TestObservedRun:
    def test_writes_all_artifacts(self, tmp_path):
        result, manifest = observed(tmp_path)
        out = tmp_path / "run"
        for name in ("events.jsonl", "trace.json", "metrics.json",
                     "manifest.json"):
            assert (out / name).exists(), name
        assert manifest.cycles == result.cycles
        assert manifest.n_uops == result.retired_uops
        assert manifest.metrics["run.cycles"] == result.cycles
        assert "simulate" in manifest.phases and "export" in manifest.phases
        assert manifest.config["window_size"] > 0

    def test_event_counts_cross_check(self, tmp_path):
        result, manifest = observed(tmp_path)
        log = read_jsonl(str(tmp_path / "run" / "events.jsonl"))
        by_kind = {}
        for record in log:
            by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
        assert by_kind == manifest.event_counts
        assert by_kind.get(EventKind.COLLISION, 0) == \
            result.collision_penalties

    def test_trace_json_is_valid(self, tmp_path):
        observed(tmp_path, n_uops=1500)
        with open(tmp_path / "run" / "trace.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["traceEvents"], "empty chrome trace"
        assert all("ph" in e and "pid" in e for e in doc["traceEvents"])
