"""Span/RequestTracer semantics and the trace export formats."""

import json

import pytest

from repro.obs.trace import (
    SPAN_PID,
    STAGES,
    RequestTracer,
    Span,
    read_spans,
    render_span_summary,
    spans_to_chrome_trace,
    summarize_spans,
)


def make_span(trace_id=1, session="s", seq=0, start=1000,
              stages=(("decode", 1010), ("queue", 1500),
                      ("batch", 1520), ("kernel", 1900),
                      ("reply", 1910))):
    span = Span(trace_id, session, seq, start_us=start)
    for stage, t in stages:
        span.mark(stage, t)
    return span


class TestSpan:
    def test_mark_closes_stage_gap_free(self):
        span = make_span()
        durations = span.stage_durations()
        assert [d[0] for d in durations] == ["decode", "queue", "batch",
                                             "kernel", "reply"]
        # Gap-free: each stage starts where the previous ended.
        prev_end = span.start_us
        for _, start, duration in durations:
            assert start == prev_end
            prev_end = start + duration
        assert prev_end == span.end_us

    def test_queue_and_service_are_separate_stages(self):
        span = make_span()
        by_stage = {s: d for s, _, d in span.stage_durations()}
        assert by_stage["queue"] == 490   # sojourn
        assert by_stage["kernel"] == 380  # service
        assert span.total_us == 910

    def test_non_monotonic_mark_clamps_to_zero(self):
        span = Span(1, "s", 0, start_us=100)
        span.mark("a", 90)  # clock went "backwards" (clamped, not negative)
        assert span.stage_durations() == [("a", 100, 0)]

    def test_round_trip(self):
        span = make_span()
        clone = Span.from_dict(json.loads(json.dumps(span.as_dict())))
        assert clone.as_dict() == span.as_dict()
        assert clone.stage_durations() == span.stage_durations()


class TestTracerSampling:
    def test_shift_zero_traces_everything(self):
        tracer = RequestTracer(sample_shift=0)
        spans = [tracer.start("s", i) for i in range(10)]
        assert all(s is not None for s in spans)
        assert tracer.counters()["sample_every"] == 1

    def test_shift_two_traces_one_in_four(self):
        tracer = RequestTracer(sample_shift=2)
        spans = [tracer.start("s", i) for i in range(64)]
        assert sum(1 for s in spans if s is not None) == 16
        assert tracer.counters()["requests_seen"] == 64
        assert tracer.counters()["sample_every"] == 4

    def test_force_overrides_sampling(self):
        tracer = RequestTracer(sample_shift=10)
        assert tracer.start("s", 0, force=True) is not None

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            RequestTracer(sample_shift=-1)


class TestTracerAggregation:
    def _traced(self, n=8):
        tracer = RequestTracer(sample_shift=0, keep=4)
        for i in range(n):
            span = tracer.start("s", i)
            base = 1000 * i
            for stage, offset in (("decode", 5), ("queue", 105),
                                  ("batch", 110), ("predict", 210),
                                  ("reply", 215)):
                span.mark(stage, span.start_us + offset)
            tracer.finish(span)
        return tracer

    def test_ring_is_bounded_but_hists_see_all(self):
        tracer = self._traced(8)
        assert len(tracer.spans) == 4  # keep=4 ring
        assert tracer.finished == 8
        assert tracer.stage_hists["queue"].count == 8

    def test_summary_has_canonical_stage_order(self):
        summary = self._traced().summary()
        stages = [s for s in summary if s != "total"]
        assert stages == [s for s in STAGES if s in stages]
        assert summary["queue"]["p50"] == pytest.approx(100, rel=0.05)
        assert summary["total"]["count"] == 8

    def test_finish_is_idempotent(self):
        tracer = RequestTracer(sample_shift=0)
        span = tracer.start("s", 0)
        span.mark("reply")
        tracer.finish(span)
        tracer.finish(span)
        assert tracer.finished == 1
        assert tracer.stage_hists["reply"].count == 1

    def test_finish_none_is_noop(self):
        tracer = RequestTracer(sample_shift=0)
        tracer.finish(None)
        assert tracer.finished == 0


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = TestTracerAggregation()._traced(3)
        path = tmp_path / "spans.jsonl"
        assert tracer.write_jsonl(str(path)) == 3
        spans = read_spans(str(path))
        assert len(spans) == 3
        assert spans[0].marks == list(tracer.spans[0].marks)

    def test_chrome_trace_has_stage_slices(self):
        spans = [make_span(trace_id=i, seq=i) for i in range(3)]
        doc = spans_to_chrome_trace(spans)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"decode", "queue",
                                               "batch", "kernel",
                                               "reply"}
        assert all(e["pid"] == SPAN_PID for e in slices)
        # ts is origin-relative so Perfetto opens at t=0.
        assert min(e["ts"] for e in slices) == 0
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)

    def test_summarize_and_render(self):
        spans = [make_span(trace_id=i) for i in range(4)]
        summary = summarize_spans(spans)
        assert summary["queue"]["count"] == 4
        text = render_span_summary(summary, n_spans=4)
        assert "queue" in text and "p99_us" in text
        assert render_span_summary({}) == "spans: (none recorded)"
