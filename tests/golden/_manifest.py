"""What the golden fixtures contain and how they are rendered.

One place defines the fixture manifest so the regression test
(``test_golden.py``) and the regeneration script (``regen.py``) can
never disagree about settings, rendering, or coverage.

The budget is deliberately tiny — fixtures must stay cheap to recompute
on every test run and small enough to review in a diff — but every
figure family is represented: machine-driven (fig5, fig7), CHT replay
(fig9), HMP replay (fig10), and bank prediction (fig12), plus one raw
seeded trace so drift in the generator itself is caught before it
cascades into the figures.

Figures run under the ambient fastpath backend: the committed bytes
were produced by the scalar reference, so re-running the suite with
``REPRO_BACKEND=vectorized`` doubles as an end-to-end equivalence
check against the same fixtures.
"""

import json
import os

from repro.experiments.bank_metric import run_fig12
from repro.experiments.cht_accuracy import run_fig9
from repro.experiments.classification import run_fig5
from repro.experiments.harness import ExperimentSettings, get_trace
from repro.experiments.hitmiss_stats import run_fig10
from repro.experiments.ordering_speedup import run_fig7

#: Small on purpose; never change without regenerating every fixture.
GOLDEN_SETTINGS = ExperimentSettings(n_uops=1200, traces_per_group=1)

GOLDEN_TRACE = ("cd", 300)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")


def trace_record() -> dict:
    """A small seeded trace, fully serialized (every uop field)."""
    trace = get_trace(*GOLDEN_TRACE)
    return {
        "name": trace.name,
        "group": trace.group,
        "seed": trace.seed,
        "uops": [
            {
                "seq": uop.seq,
                "pc": uop.pc,
                "uclass": uop.uclass.name,
                "srcs": list(uop.srcs),
                "dst": uop.dst,
                "mem": (None if uop.mem is None
                        else {"address": uop.mem.address,
                              "size": uop.mem.size}),
                "sta_seq": uop.sta_seq,
                "taken": uop.taken,
                "mispredicted": uop.mispredicted,
            }
            for uop in trace.uops
        ],
    }


FIXTURES = {
    "trace_cd_300": trace_record,
    "fig5": lambda: run_fig5(GOLDEN_SETTINGS),
    "fig7": lambda: run_fig7(GOLDEN_SETTINGS),
    "fig9": lambda: run_fig9(GOLDEN_SETTINGS),
    "fig10": lambda: run_fig10(GOLDEN_SETTINGS),
    "fig12": lambda: run_fig12(GOLDEN_SETTINGS),
}


def render(payload) -> str:
    """The canonical byte-for-byte fixture rendering."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURE_DIR, name + ".json")
