"""Regenerate the golden fixtures.

Usage::

    PYTHONPATH=src python tests/golden/regen.py

Only run this when an output change is *intended* (a new figure field,
a deliberate model fix); review the fixture diff like any other code
change.  An unintended diff here means the refactor changed results.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                "..", "..", "src"))

from tests.golden import _manifest  # noqa: E402


def main() -> int:
    os.makedirs(_manifest.FIXTURE_DIR, exist_ok=True)
    for name, compute in _manifest.FIXTURES.items():
        path = _manifest.fixture_path(name)
        text = _manifest.render(compute())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {os.path.relpath(path)} ({len(text)} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
