"""Golden-fixture regression tests: harness output is byte-identical.

Each committed fixture under ``fixtures/`` is the canonical rendering
of one harness output at a tiny seeded budget.  Refactors (like the
vectorized fast path) must reproduce every byte; an intended change is
made visible by regenerating the fixtures
(``PYTHONPATH=src python tests/golden/regen.py``) and reviewing the
diff.
"""

import json
import os

import pytest

from tests.golden import _manifest

_REGEN = "PYTHONPATH=src python tests/golden/regen.py"


@pytest.mark.parametrize("name", sorted(_manifest.FIXTURES))
def test_output_matches_fixture_bytes(name):
    path = _manifest.fixture_path(name)
    assert os.path.exists(path), \
        f"missing golden fixture {path}; generate it with: {_REGEN}"
    with open(path, "rb") as handle:
        expected = handle.read()
    got = _manifest.render(_manifest.FIXTURES[name]()).encode("utf-8")
    assert got == expected, (
        f"golden fixture {name!r} drifted. If this change is intended, "
        f"regenerate with: {_REGEN} and review the fixture diff.")


def test_fixture_files_are_canonical_json():
    """Committed bytes are exactly the canonical rendering of their own
    parsed content — nobody hand-edited a fixture."""
    for name in _manifest.FIXTURES:
        with open(_manifest.fixture_path(name), encoding="utf-8") as handle:
            text = handle.read()
        assert _manifest.render(json.loads(text)) == text


def test_trace_fixture_is_small_enough_to_review():
    payload = json.loads(
        open(_manifest.fixture_path("trace_cd_300"),
             encoding="utf-8").read())
    # The builder finishes its last macro bundle, so the stream runs a
    # little past the budget — but must stay review-sized.
    n_budget = _manifest.GOLDEN_TRACE[1]
    assert n_budget <= len(payload["uops"]) <= 2 * n_budget
