"""Smoke/shape tests for the per-figure experiment harnesses.

Each harness runs with a tiny budget; assertions target the *shape*
properties the paper reports, not absolute values.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.bank_metric import run_fig12
from repro.experiments.classification import (
    render_fig5,
    render_fig6,
    run_fig5,
    run_fig6,
)
from repro.experiments.cht_accuracy import run_fig9
from repro.experiments.harness import ExperimentSettings, format_table
from repro.experiments.hitmiss_stats import run_fig10
from repro.experiments.ordering_speedup import render_fig7, run_fig7

TINY = ExperimentSettings(n_uops=4000, traces_per_group=1)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(TINY)


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(TINY, windows=(8, 32, 128))


@pytest.fixture(scope="module")
def fig7():
    return run_fig7(TINY)


class TestFig5:
    def test_groups_present(self, fig5):
        assert "SysmarkNT" in fig5["groups"]
        assert "SpecInt95" in fig5["groups"]

    def test_fractions_valid(self, fig5):
        for group, mix in fig5["groups"].items():
            total = mix["ac"] + mix["anc"] + mix["no_conflict"]
            assert total == pytest.approx(1.0), group

    def test_predictor_helps_majority(self, fig5):
        """The paper's takeaway: 50 %+ of loads benefit from a collision
        predictor (AC + ANC)."""
        nt = fig5["groups"]["SysmarkNT"]
        assert nt["ac"] + nt["anc"] > 0.4

    def test_render(self, fig5):
        text = render_fig5(fig5)
        assert "Figure 5" in text and "SysmarkNT" in text


class TestFig6:
    def test_ac_grows_with_window(self, fig6):
        sweep = {s["window"]: s for s in fig6["sweep"]}
        assert sweep[128]["ac"] > sweep[8]["ac"]

    def test_no_conflict_shrinks_with_window(self, fig6):
        sweep = {s["window"]: s for s in fig6["sweep"]}
        assert sweep[128]["no_conflict"] < sweep[8]["no_conflict"]

    def test_render(self, fig6):
        assert "Figure 6" in render_fig6(fig6)


class TestFig7:
    def test_all_schemes_reported(self, fig7):
        for speedups in fig7["per_trace"].values():
            assert set(speedups) == {"postponing", "opportunistic",
                                     "inclusive", "exclusive", "perfect"}

    def test_perfect_dominates(self, fig7):
        avg = fig7["average"]
        assert avg["perfect"] >= avg["exclusive"] - 0.01
        assert avg["perfect"] >= avg["opportunistic"] - 0.01

    def test_exclusive_at_least_inclusive(self, fig7):
        avg = fig7["average"]
        assert avg["exclusive"] >= avg["inclusive"] - 0.02

    def test_all_schemes_gain_over_traditional(self, fig7):
        avg = fig7["average"]
        for scheme in ("opportunistic", "inclusive", "exclusive",
                       "perfect"):
            assert avg[scheme] > 1.0, scheme

    def test_render(self, fig7):
        assert "Figure 7" in render_fig7(fig7)


class TestFig9:
    def test_shape(self):
        data = run_fig9(TINY)
        kinds = {r["kind"] for r in data["rows"]}
        assert kinds == {"full", "tagless", "tagged-only", "combined"}
        for row in data["rows"]:
            total = sum(row[c] for c in ("AC-PC", "AC-PNC", "ANC-PC",
                                         "ANC-PNC"))
            assert total == pytest.approx(1.0)

    def test_sticky_safer_than_full(self):
        """Tagged-only (sticky) must have fewer AC-PNC than Full at the
        same size — the Figure 9 headline."""
        data = run_fig9(TINY)
        rows = {(r["kind"], r["entries"]): r for r in data["rows"]}
        assert rows[("tagged-only", 2048)]["AC-PNC"] <= \
               rows[("full", 2048)]["AC-PNC"] + 0.01
        assert rows[("combined", 2048)]["AC-PNC"] <= \
               rows[("tagged-only", 2048)]["AC-PNC"] + 0.01


class TestFig10:
    def test_rows_and_ranges(self):
        data = run_fig10(ExperimentSettings(n_uops=4000,
                                            traces_per_group=1))
        assert len(data["rows"]) == 8  # 4 groups x 2 predictors
        for row in data["rows"]:
            assert 0.0 <= row["misses"] <= 1.0
            assert row["am_pm"] <= row["misses"] + 1e-9


class TestFig12:
    def test_metric_at_zero_penalty_is_rate(self):
        data = run_fig12(TINY)
        for group in data["groups"].values():
            for row in group["rows"]:
                assert row["curve"][0] == pytest.approx(
                    row["prediction_rate"])

    def test_curves_decrease(self):
        data = run_fig12(TINY)
        for group in data["groups"].values():
            for row in group["rows"]:
                curve = row["curve"]
                assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_addr_predictor_most_accurate(self):
        data = run_fig12(TINY)
        for group in data["groups"].values():
            accs = {r["predictor"]: r["accuracy"] for r in group["rows"]}
            assert accs["Addr"] >= max(accs["A"], accs["B"], accs["C"]) \
                   - 0.02


class TestHarness:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.25]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.500" in text

    def test_experiments_registry_complete(self):
        figures = {f"fig{i}" for i in range(5, 13)}
        assert figures <= set(EXPERIMENTS)
        extensions = {n for n in EXPERIMENTS if n.startswith("ext-")}
        assert {"ext-penalty", "ext-prior-art", "ext-smt"} <= extensions
