"""End-to-end integration tests on generated workload traces.

These run the full stack — workload profile → trace builder → OoO
engine → results — and check the invariants and paper-level trends that
must hold regardless of tuning.
"""

import pytest

from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import SCHEME_NAMES, make_scheme
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed

N_UOPS = 6000


@pytest.fixture(scope="module")
def nt_trace():
    return build_trace(profile_for("cd"), n_uops=N_UOPS,
                       seed=trace_seed("cd"), name="cd")


@pytest.fixture(scope="module")
def scheme_results(nt_trace):
    return {name: Machine(scheme=make_scheme(name)).run(nt_trace)
            for name in SCHEME_NAMES}


class TestConservationInvariants:
    def test_all_uops_retired(self, scheme_results, nt_trace):
        for name, result in scheme_results.items():
            assert result.retired_uops == len(nt_trace), name

    def test_all_loads_classified(self, scheme_results, nt_trace):
        n_loads = sum(1 for _ in nt_trace.loads())
        for name, result in scheme_results.items():
            assert result.retired_loads == n_loads, name
            assert result.classified_loads == n_loads, name

    def test_class_fractions_sum_to_one(self, scheme_results):
        for name, result in scheme_results.items():
            total = (result.frac_not_conflicting
                     + result.frac_actually_colliding + result.frac_anc)
            assert total == pytest.approx(1.0), name

    def test_hitmiss_covers_all_loads(self, scheme_results, nt_trace):
        n_loads = sum(1 for _ in nt_trace.loads())
        for name, result in scheme_results.items():
            assert result.hitmiss.total == n_loads, name


class TestSchemeOrderingInvariants:
    def test_perfect_never_penalised(self, scheme_results):
        assert scheme_results["perfect"].collision_penalties == 0

    def test_perfect_is_fastest(self, scheme_results):
        best = scheme_results["perfect"].cycles
        for name, result in scheme_results.items():
            assert result.cycles >= best, name

    def test_traditional_is_slowest_of_sta_respecting(self, scheme_results):
        """Postponing and the predictor schemes should not lose to the
        fully conservative baseline by more than noise."""
        baseline = scheme_results["traditional"].cycles
        assert scheme_results["postponing"].cycles <= baseline * 1.02

    def test_paper_ordering_holds(self, scheme_results):
        """Figure 7's ordering: traditional <= postponing < inclusive <=
        exclusive <= perfect (as speedups)."""
        cycles = {k: v.cycles for k, v in scheme_results.items()}
        assert cycles["perfect"] <= cycles["exclusive"]
        assert cycles["exclusive"] <= cycles["inclusive"] * 1.01
        assert cycles["inclusive"] < cycles["traditional"]
        assert cycles["opportunistic"] < cycles["traditional"]

    def test_predictors_reduce_penalties_vs_opportunistic(
            self, scheme_results):
        assert scheme_results["inclusive"].collision_penalties < \
               scheme_results["opportunistic"].collision_penalties


class TestCrossGroupBehaviour:
    @pytest.mark.parametrize("name", ["gcc", "applu", "jack"])
    def test_groups_run_clean(self, name):
        trace = build_trace(profile_for(name), n_uops=4000,
                            seed=trace_seed(name), name=name)
        result = Machine(scheme=make_scheme("traditional")).run(trace)
        assert result.retired_uops == len(trace)
        assert 0.0 < result.ipc < 6.0

    def test_specfp_less_colliding_than_nt(self):
        def ac(name):
            trace = build_trace(profile_for(name), n_uops=8000,
                                seed=trace_seed(name), name=name)
            result = Machine(scheme=make_scheme("traditional")).run(trace)
            return result.frac_actually_colliding
        assert ac("applu") < ac("cd")


class TestDeterminism:
    def test_same_run_twice(self, nt_trace):
        a = Machine(scheme=make_scheme("inclusive")).run(nt_trace)
        b = Machine(scheme=make_scheme("inclusive")).run(nt_trace)
        assert a.cycles == b.cycles
        assert a.collision_penalties == b.collision_penalties
        assert a.load_classes == b.load_classes

    def test_trace_rebuild_identical(self):
        a = build_trace(profile_for("cd"), n_uops=2000, seed=1)
        b = build_trace(profile_for("cd"), n_uops=2000, seed=1)
        assert [(u.pc, u.uclass, u.srcs) for u in a.uops] == \
               [(u.pc, u.uclass, u.srcs) for u in b.uops]
