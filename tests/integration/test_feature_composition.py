"""All optional engine features enabled at once must compose cleanly."""

from dataclasses import replace

import pytest

from repro.bank.address_based import AddressBankPredictor
from repro.common.config import BASELINE_MACHINE, CacheConfig
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.hitmiss.local import LocalHMP
from repro.hitmiss.timing import TimingHMP
from repro.memory.hierarchy import MemoryHierarchy
from repro.predictors.bimodal import BimodalPredictor
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed


def full_featured_machine():
    """Every optional subsystem switched on simultaneously."""
    mem = replace(BASELINE_MACHINE.memory,
                  l1d=CacheConfig(size_bytes=16 * 1024, n_banks=2))
    config = replace(
        BASELINE_MACHINE, memory=mem,
        latency=replace(BASELINE_MACHINE.latency, forward_latency=2))
    hierarchy = MemoryHierarchy(config.memory)
    machine = Machine(
        config=config,
        scheme=make_scheme("exclusive"),
        hmp=TimingHMP(LocalHMP(), mshr=hierarchy.mshr,
                      serviced=hierarchy.serviced),
        hierarchy=hierarchy,
        branch_predictor=BimodalPredictor(1024),
        bank_policy="predicted",
        bank_predictor=AddressBankPredictor(),
        collect_occupancy=True,
    )
    machine.collect_stall_breakdown = True
    machine.record_timeline = True
    return machine


@pytest.fixture(scope="module")
def run():
    trace = build_trace(profile_for("cd"), n_uops=6000,
                        seed=trace_seed("cd"), name="cd")
    return trace, full_featured_machine().run(trace)


class TestComposition:
    def test_completes_and_conserves(self, run):
        trace, result = run
        assert result.retired_uops == len(trace)
        assert result.classified_loads == result.retired_loads

    def test_every_instrument_populated(self, run):
        _, result = run
        assert result.timeline
        assert result.stall_breakdown
        assert result.window_occupancy.total > 0
        assert result.issue_width_used.total > 0
        assert result.hitmiss.total > 0
        assert result.branches > 0

    def test_forwarding_active(self, run):
        _, result = run
        assert result.forwarded_loads > 0

    def test_still_beats_traditional(self, run):
        trace, result = run
        baseline = Machine(scheme=make_scheme("traditional")).run(trace)
        # The fully-featured exclusive machine must not be slower than
        # the plain traditional baseline.
        assert result.cycles < baseline.cycles

    def test_deterministic(self, run):
        trace, first = run
        second = full_featured_machine().run(trace)
        assert second.cycles == first.cycles
        assert second.collision_penalties == first.collision_penalties
        assert second.bank_conflicts == first.bank_conflicts

    def test_report_renders(self, run):
        from repro.engine.report import performance_report
        _, result = run
        text = performance_report(result)
        assert "window occupancy" in text
        assert "stalled uop-cycles" in text


class TestFourBankEngine:
    def test_four_banks_with_address_predictor(self):
        mem = replace(BASELINE_MACHINE.memory,
                      l1d=CacheConfig(size_bytes=16 * 1024, n_banks=4))
        config = replace(BASELINE_MACHINE, memory=mem)
        trace = build_trace(profile_for("gcc"), n_uops=4000,
                            seed=trace_seed("gcc"), name="gcc")
        results = {}
        for policy, predictor in (
                ("oblivious", None),
                ("predicted", AddressBankPredictor(n_banks=4)),
                ("oracle", None)):
            results[policy] = Machine(
                config=config, scheme=make_scheme("perfect"),
                bank_policy=policy,
                bank_predictor=predictor).run(trace)
            assert results[policy].retired_uops == len(trace)
        assert results["oracle"].bank_conflicts == 0
        assert results["predicted"].bank_conflicts <= \
               results["oblivious"].bank_conflicts
