"""Tests for the correlated ([Beke99]-style) address predictor."""

import random

import pytest

from repro.predictors.address import StrideAddressPredictor
from repro.predictors.correlated import CorrelatedAddressPredictor


def accuracy(predictor, deltas, n=300, warmup=60, base=0x1000):
    addr = base
    correct = total = 0
    for i in range(n):
        nxt = addr + deltas[i % len(deltas)]
        pred = predictor.predict(0x100)
        if i >= warmup:
            total += 1
            correct += pred == nxt
        predictor.update(0x100, nxt)
        addr = nxt
    return correct / total


class TestStrideEquivalence:
    def test_constant_address(self):
        p = CorrelatedAddressPredictor()
        for _ in range(6):
            p.update(0x100, 0x4000)
        assert p.predict(0x100) == 0x4000

    def test_plain_stride(self):
        assert accuracy(CorrelatedAddressPredictor(), [64]) > 0.95

    def test_dominates_stride_predictor_on_strides(self):
        corr = accuracy(CorrelatedAddressPredictor(), [8])
        stride = accuracy(StrideAddressPredictor(), [8])
        assert corr >= stride - 0.02


class TestCorrelation:
    def test_alternating_deltas(self):
        """The [Beke99] motivation: A,B,A,B delta patterns."""
        assert accuracy(CorrelatedAddressPredictor(), [64, 192]) > 0.9

    def test_stride_predictor_fails_alternating(self):
        """Sanity: the plain stride table cannot learn this."""
        assert accuracy(StrideAddressPredictor(), [64, 192]) < 0.2

    def test_period_three_pattern(self):
        p = CorrelatedAddressPredictor(history_length=2)
        assert accuracy(p, [8, 8, 128]) > 0.85

    def test_longer_history_catches_longer_period(self):
        short = accuracy(
            CorrelatedAddressPredictor(history_length=1), [4, 4, 4, 96])
        longer = accuracy(
            CorrelatedAddressPredictor(history_length=3), [4, 4, 4, 96])
        assert longer >= short


class TestRobustness:
    def test_random_addresses_mostly_abstain(self):
        rng = random.Random(0)
        p = CorrelatedAddressPredictor()
        predictions = 0
        for _ in range(300):
            if p.predict(0x100) is not None:
                predictions += 1
            p.update(0x100, rng.randrange(1 << 24))
        assert predictions < 100

    def test_confidence_in_unit_interval(self):
        p = CorrelatedAddressPredictor()
        addr = 0
        for _ in range(50):
            assert 0.0 <= p.confidence(0x100) <= 1.0
            addr += 64
            p.update(0x100, addr)

    def test_tag_conflict_reallocates(self):
        p = CorrelatedAddressPredictor(l1_entries=1)
        for _ in range(6):
            p.update(0x100, 0x4000)
        p.update(0x20004, 0x8000)  # same slot, different tag
        assert p.predict(0x100) is None

    def test_reset(self):
        p = CorrelatedAddressPredictor()
        for _ in range(6):
            p.update(0x100, 0x4000)
        p.reset()
        assert p.predict(0x100) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedAddressPredictor(history_length=0)
        with pytest.raises(ValueError):
            CorrelatedAddressPredictor(l1_entries=1000)

    def test_storage_positive(self):
        assert CorrelatedAddressPredictor().storage_bits > 0


class TestAsBankPredictor:
    def test_plugs_into_bank_adapter(self):
        from repro.bank.address_based import AddressBankPredictor
        bank = AddressBankPredictor(
            address_predictor=CorrelatedAddressPredictor())
        addr = 0x1000
        deltas = [64, 192]
        for i in range(100):
            nxt = addr + deltas[i % 2]
            bank.update(0x100, (nxt // 64) % 2, nxt)
            addr = nxt
        correct = total = 0
        for i in range(20):
            nxt = addr + deltas[i % 2]
            pred = bank.predict(0x100)
            total += 1
            if pred.predicted and pred.bank == (nxt // 64) % 2:
                correct += 1
            bank.update(0x100, (nxt // 64) % 2, nxt)
            addr = nxt
        assert correct / total > 0.8
