"""Tests for the predictor combination policies."""

import pytest

from repro.predictors.base import AlwaysPredictor, BinaryPredictor, Prediction
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.chooser import (
    ConfidenceFilter,
    MajorityChooser,
    WeightedChooser,
    vote_breakdown,
)


class _Fixed(BinaryPredictor):
    """A component with a fixed outcome and confidence, counting updates."""

    def __init__(self, outcome, confidence=1.0):
        self.outcome = outcome
        self.confidence = confidence
        self.updates = 0

    def predict(self, pc):
        return Prediction(outcome=self.outcome, confidence=self.confidence)

    def update(self, pc, outcome):
        self.updates += 1

    def reset(self):
        self.updates = 0

    @property
    def storage_bits(self):
        return 8


class TestMajorityChooser:
    def test_requires_odd_count(self):
        with pytest.raises(ValueError):
            MajorityChooser([_Fixed(True), _Fixed(False)])

    def test_two_of_three_wins(self):
        c = MajorityChooser([_Fixed(True), _Fixed(True), _Fixed(False)])
        assert c.predict(0x1).outcome

    def test_unanimous_full_confidence(self):
        c = MajorityChooser([_Fixed(True)] * 3)
        assert c.predict(0x1).confidence == pytest.approx(1.0)

    def test_split_low_confidence(self):
        c = MajorityChooser([_Fixed(True), _Fixed(True), _Fixed(False)])
        assert c.predict(0x1).confidence == pytest.approx(1.0 / 3.0)

    def test_update_trains_all(self):
        comps = [_Fixed(True), _Fixed(True), _Fixed(False)]
        c = MajorityChooser(comps)
        c.update(0x1, True)
        assert all(comp.updates == 1 for comp in comps)

    def test_storage_sums(self):
        c = MajorityChooser([_Fixed(True)] * 3)
        assert c.storage_bits == 24


class TestWeightedChooser:
    def test_weight_overrides_majority(self):
        # One heavy True voter beats two light False voters.
        c = WeightedChooser([_Fixed(True), _Fixed(False), _Fixed(False)],
                            weights=[3.0, 1.0, 1.0])
        assert c.predict(0x1).outcome

    def test_abstains_below_threshold(self):
        c = WeightedChooser([_Fixed(True), _Fixed(False)],
                            weights=[1.0, 1.0], threshold=0.5)
        assert not c.predict(0x1).valid

    def test_confidence_scaling(self):
        # A confident False outweighs an unconfident True.
        c = WeightedChooser([_Fixed(True, confidence=0.1),
                             _Fixed(False, confidence=1.0)],
                            confidence_scaled=True)
        assert not c.predict(0x1).outcome

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            WeightedChooser([_Fixed(True)], weights=[1.0, 2.0])

    def test_confidence_normalised(self):
        c = WeightedChooser([_Fixed(True), _Fixed(True)])
        p = c.predict(0x1)
        assert 0.0 <= p.confidence <= 1.0


class TestConfidenceFilter:
    def test_passes_confident(self):
        f = ConfidenceFilter(_Fixed(True, confidence=0.9),
                             min_confidence=0.5)
        assert f.predict(0x1).valid and f.predict(0x1).outcome

    def test_abstains_unconfident(self):
        f = ConfidenceFilter(_Fixed(True, confidence=0.2),
                             min_confidence=0.5)
        assert not f.predict(0x1).valid

    def test_trains_component(self):
        inner = _Fixed(True)
        f = ConfidenceFilter(inner)
        f.update(0x1, False)
        assert inner.updates == 1


class TestVoteBreakdown:
    def test_counts(self):
        comps = [_Fixed(True), _Fixed(False), _Fixed(True)]
        assert vote_breakdown(comps, 0x1) == (2, 1)


class TestIntegrationWithRealComponents:
    def test_majority_of_bimodals_learns(self):
        c = MajorityChooser([BimodalPredictor(64) for _ in range(3)])
        pc = 0x40
        for _ in range(8):
            c.update(pc, True)
        assert c.predict(pc).outcome
