"""Tests for the JRS resetting-counter confidence estimator."""

import random

import pytest

from repro.predictors.base import AlwaysPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.confidence import (
    ConfidenceEstimator,
    ConfidentPredictor,
)


class TestEstimator:
    def test_starts_unconfident(self):
        e = ConfidenceEstimator()
        assert e.confidence(0x100) == 0.0
        assert not e.is_confident(0x100)

    def test_streak_builds_confidence(self):
        e = ConfidenceEstimator(counter_bits=4, threshold=8)
        for _ in range(8):
            e.record(0x100, correct=True)
        assert e.is_confident(0x100)
        assert e.confidence(0x100) == pytest.approx(8 / 15)

    def test_one_miss_resets(self):
        """The defining JRS property: any wrong prediction clears the
        streak entirely."""
        e = ConfidenceEstimator(counter_bits=4, threshold=8)
        for _ in range(15):
            e.record(0x100, correct=True)
        e.record(0x100, correct=False)
        assert e.confidence(0x100) == 0.0
        assert not e.is_confident(0x100)

    def test_saturates(self):
        e = ConfidenceEstimator(counter_bits=2, threshold=3)
        for _ in range(10):
            e.record(0x100, correct=True)
        assert e.confidence(0x100) == 1.0

    def test_pcs_independent(self):
        e = ConfidenceEstimator()
        for _ in range(10):
            e.record(0x100, correct=True)
        assert e.confidence(0x9000) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfidenceEstimator(counter_bits=0)
        with pytest.raises(ValueError):
            ConfidenceEstimator(counter_bits=2, threshold=9)

    def test_reset(self):
        e = ConfidenceEstimator()
        for _ in range(10):
            e.record(0x100, correct=True)
        e.reset()
        assert e.confidence(0x100) == 0.0


class TestConfidentPredictor:
    def test_measured_confidence_replaces_structural(self):
        """An always-right constant predictor gains confidence with use;
        a cold one has none despite the constant's structural 1.0."""
        p = ConfidentPredictor(AlwaysPredictor(True))
        assert p.predict(0x100).confidence == 0.0
        for _ in range(16):
            p.update(0x100, True)
        assert p.predict(0x100).confidence == 1.0

    def test_wrong_predictions_destroy_confidence(self):
        p = ConfidentPredictor(AlwaysPredictor(True))
        for _ in range(16):
            p.update(0x100, True)
        p.update(0x100, False)
        assert p.predict(0x100).confidence == 0.0

    def test_confidence_separates_predictable_from_random(self):
        """On a mixed site population, the estimator's confidence ranks
        the predictable PCs above the noisy ones."""
        rng = random.Random(3)
        p = ConfidentPredictor(BimodalPredictor(256),
                               ConfidenceEstimator(threshold=4))
        stable_pc, noisy_pc = 0x100, 0x2000
        for _ in range(200):
            p.update(stable_pc, True)
            p.update(noisy_pc, rng.random() < 0.5)
        assert p.predict(stable_pc).confidence > \
               p.predict(noisy_pc).confidence

    def test_inner_still_learns(self):
        p = ConfidentPredictor(BimodalPredictor(256))
        for _ in range(8):
            p.update(0x100, True)
        assert p.predict(0x100).outcome

    def test_reset(self):
        p = ConfidentPredictor(BimodalPredictor(256))
        for _ in range(8):
            p.update(0x100, True)
        p.reset()
        assert p.predict(0x100).confidence == 0.0

    def test_works_in_bank_predictor(self):
        """JRS-confident components drop into the bank chooser stack."""
        from repro.bank.history import HistoryBankPredictor
        components = [ConfidentPredictor(BimodalPredictor(256))
                      for _ in range(3)]
        bank = HistoryBankPredictor(components, abstain_threshold=0.5)
        # Cold: zero measured confidence everywhere -> abstain.
        assert not bank.predict(0x100).predicted
        for _ in range(40):
            bank.update(0x100, 1)
        prediction = bank.predict(0x100)
        assert prediction.predicted and prediction.bank == 1
