"""Tests for saturating counters and sticky bits."""

import pytest

from repro.predictors.counters import SaturatingCounter, StickyBit


class TestSaturatingCounter:
    def test_initial_prediction_false(self):
        assert not SaturatingCounter(2).prediction

    def test_threshold_crossing(self):
        c = SaturatingCounter(2)  # threshold 2
        c.train(True)
        assert not c.prediction
        c.train(True)
        assert c.prediction

    def test_saturation_high(self):
        c = SaturatingCounter(2)
        for _ in range(10):
            c.train(True)
        assert c.value == 3
        assert c.is_saturated

    def test_saturation_low(self):
        c = SaturatingCounter(2, initial=3)
        for _ in range(10):
            c.train(False)
        assert c.value == 0
        assert c.is_saturated

    def test_hysteresis(self):
        """A saturated counter survives one contrary outcome."""
        c = SaturatingCounter(2, initial=3)
        c.train(False)
        assert c.prediction  # still predicts True at value 2

    def test_one_bit_counter(self):
        c = SaturatingCounter(1)
        c.train(True)
        assert c.prediction
        c.train(False)
        assert not c.prediction

    def test_custom_threshold(self):
        c = SaturatingCounter(2, threshold=3)
        c.train(True)
        c.train(True)
        assert not c.prediction  # value 2 < threshold 3
        c.train(True)
        assert c.prediction

    def test_confidence_bounds(self):
        c = SaturatingCounter(3)
        for _ in range(8):
            assert 0.0 <= c.confidence <= 1.0
            c.train(True)
        assert c.confidence == 1.0  # saturated

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)
        with pytest.raises(ValueError):
            SaturatingCounter(2, initial=4)
        with pytest.raises(ValueError):
            SaturatingCounter(2, threshold=0)

    def test_reset(self):
        c = SaturatingCounter(2, initial=3)
        c.reset()
        assert c.value == 0
        with pytest.raises(ValueError):
            c.reset(9)


class TestStickyBit:
    def test_starts_clear(self):
        assert not StickyBit().prediction

    def test_sets_on_true(self):
        s = StickyBit()
        s.train(True)
        assert s.prediction

    def test_never_unlearns(self):
        """The defining property: once set, contrary outcomes are ignored."""
        s = StickyBit()
        s.train(True)
        for _ in range(100):
            s.train(False)
        assert s.prediction

    def test_reset_clears(self):
        s = StickyBit(True)
        s.reset()
        assert not s.prediction

    def test_confidence(self):
        s = StickyBit()
        assert s.confidence == 0.0
        s.train(True)
        assert s.confidence == 1.0
