"""Tests for the table-based binary predictors (bimodal/local/gshare/gskew).

All four share the BinaryPredictor protocol, so a common battery runs
against each, plus per-predictor tests for their distinguishing
behaviours (history capture, aliasing, skewing).
"""

import pytest

from repro.predictors.base import AlwaysPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor

ALL_PREDICTORS = [
    lambda: BimodalPredictor(n_entries=256),
    lambda: LocalPredictor(n_entries=256, history_bits=6),
    lambda: GSharePredictor(history_bits=8),
    lambda: GSkewPredictor(history_bits=8, bank_entries=256),
]

IDS = ["bimodal", "local", "gshare", "gskew"]


@pytest.mark.parametrize("factory", ALL_PREDICTORS, ids=IDS)
class TestCommonProtocol:
    def test_learns_constant_behaviour(self, factory):
        p = factory()
        pc = 0x40100
        for _ in range(16):
            p.update(pc, True)
        assert p.predict(pc).outcome

    def test_learns_constant_false(self, factory):
        p = factory()
        pc = 0x40100
        for _ in range(16):
            p.update(pc, False)
        assert not p.predict(pc).outcome

    def test_reset_restores_cold_state(self, factory):
        p = factory()
        pc = 0x40100
        for _ in range(16):
            p.update(pc, True)
        p.reset()
        cold = factory()
        assert p.predict(pc).outcome == cold.predict(pc).outcome

    def test_storage_bits_positive(self, factory):
        assert factory().storage_bits > 0

    def test_confidence_in_unit_interval(self, factory):
        p = factory()
        for i in range(32):
            pred = p.predict(0x400 + 4 * i)
            assert 0.0 <= pred.confidence <= 1.0
            p.update(0x400 + 4 * i, i % 2 == 0)


class TestBimodal:
    def test_entries_independent(self):
        p = BimodalPredictor(n_entries=1024)
        # Train two (non-aliasing) PCs to opposite outcomes.
        pc_a, pc_b = 0x1000, 0x2004
        for _ in range(4):
            p.update(pc_a, True)
            p.update(pc_b, False)
        assert p.predict(pc_a).outcome
        assert not p.predict(pc_b).outcome

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(n_entries=1000)


class TestLocal:
    def test_learns_alternating_pattern(self):
        """The signature local-predictor skill: periodic per-PC patterns."""
        p = LocalPredictor(n_entries=256, history_bits=8)
        pc = 0x5000
        pattern = [True, False] * 40
        # Warm up.
        for outcome in pattern:
            p.update(pc, outcome)
        # Now it should track the alternation.
        correct = 0
        expected = True
        for _ in range(20):
            if p.predict(pc).outcome == expected:
                correct += 1
            p.update(pc, expected)
            expected = not expected
        assert correct >= 18

    def test_learns_period_four(self):
        p = LocalPredictor(n_entries=256, history_bits=8)
        pc = 0x5000
        pattern = [True, False, False, False]
        for _ in range(40):
            for outcome in pattern:
                p.update(pc, outcome)
        correct = 0
        for _ in range(5):
            for outcome in pattern:
                if p.predict(pc).outcome == outcome:
                    correct += 1
                p.update(pc, outcome)
        assert correct >= 18

    def test_storage_accounts_history_and_pattern(self):
        p = LocalPredictor(n_entries=128, history_bits=8, counter_bits=2)
        assert p.storage_bits == 128 * 8 + 256 * 2


class TestGShare:
    def test_global_history_disambiguates(self):
        """One PC, two outcomes selected by the preceding outcome stream."""
        p = GSharePredictor(history_bits=4)
        pc = 0x6000
        # Outcome of `pc` equals the outcome observed two events earlier.
        stream = [True, False] * 100
        prev = [True, True]
        for outcome in stream:
            p.update(pc, outcome)
        # After warmup, accuracy on the alternating stream should be high.
        correct = 0
        expected = True
        for _ in range(20):
            if p.predict(pc).outcome == expected:
                correct += 1
            p.update(pc, expected)
            expected = not expected
        assert correct >= 18


class TestGSkew:
    def test_three_banks(self):
        assert GSkewPredictor().N_BANKS == 3

    def test_majority_confidence_levels(self):
        p = GSkewPredictor(history_bits=6, bank_entries=64)
        pred = p.predict(0x7000)
        assert pred.confidence in (0.5, 1.0)

    def test_partial_update_preserves_dissent(self):
        """On a correct prediction the dissenting bank is not trained."""
        p = GSkewPredictor(history_bits=4, bank_entries=64)
        pc = 0x7000
        for _ in range(12):
            p.update(pc, True)
        # All banks for this (pc, history) should now agree on True;
        # prediction is confident.
        assert p.predict(pc).outcome


class TestAlwaysPredictor:
    def test_constant(self):
        t = AlwaysPredictor(True)
        f = AlwaysPredictor(False)
        assert t.predict(0x1).outcome and not f.predict(0x1).outcome

    def test_update_noop(self):
        p = AlwaysPredictor(True)
        p.update(0x1, False)
        assert p.predict(0x1).outcome

    def test_zero_storage(self):
        assert AlwaysPredictor(True).storage_bits == 0
