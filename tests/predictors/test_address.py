"""Tests for the stride/last-address predictor."""

import pytest

from repro.predictors.address import StrideAddressPredictor


class TestColdBehaviour:
    def test_unknown_pc_abstains(self):
        p = StrideAddressPredictor()
        assert p.predict(0x400) is None
        assert p.confidence(0x400) == 0.0

    def test_needs_confirmations(self):
        p = StrideAddressPredictor(predict_threshold=2)
        pc = 0x400
        p.update(pc, 100)
        assert p.predict(pc) is None  # one observation: no stride yet
        p.update(pc, 108)
        assert p.predict(pc) is None  # stride differs from initial 0


class TestStrideLearning:
    def test_constant_address(self):
        """Stride 0 (e.g. a stack slot) converges quickly."""
        p = StrideAddressPredictor(predict_threshold=2)
        pc = 0x400
        for _ in range(4):
            p.update(pc, 0x7FFF0010)
        assert p.predict(pc) == 0x7FFF0010

    def test_positive_stride(self):
        p = StrideAddressPredictor(predict_threshold=2)
        pc = 0x500
        addr = 0x1000
        p.update(pc, addr)
        for _ in range(6):
            addr += 64
            p.update(pc, addr)
        assert p.predict(pc) == addr + 64

    def test_negative_stride(self):
        p = StrideAddressPredictor(predict_threshold=2)
        pc = 0x500
        addr = 0x9000
        p.update(pc, addr)
        for _ in range(6):
            addr -= 8
            p.update(pc, addr)
        assert p.predict(pc) == addr - 8

    def test_stride_change_adopted_after_drain(self):
        p = StrideAddressPredictor(predict_threshold=2, confidence_bits=2)
        pc = 0x600
        addr = 0
        p.update(pc, addr)
        for _ in range(8):
            addr += 4
            p.update(pc, addr)
        assert p.predict(pc) == addr + 4
        # Switch to stride 128; old stride must eventually be replaced.
        for _ in range(12):
            addr += 128
            p.update(pc, addr)
        assert p.predict(pc) == addr + 128


class TestInstability:
    def test_random_addresses_abstain(self):
        import random
        rng = random.Random(3)
        p = StrideAddressPredictor(predict_threshold=2)
        pc = 0x700
        for _ in range(50):
            p.update(pc, rng.randrange(1 << 20))
        # Unstable strides never confirm: the predictor abstains.
        assert p.predict(pc) is None

    def test_tag_mismatch_reallocates(self):
        p = StrideAddressPredictor(n_entries=1, predict_threshold=2)
        # Two different PCs share the single entry: the second evicts.
        for _ in range(4):
            p.update(0x100, 0x1000)
        p.update(0x20004, 0x2000)
        assert p.predict(0x100) is None

    def test_reset(self):
        p = StrideAddressPredictor()
        for _ in range(4):
            p.update(0x100, 0x1000)
        p.reset()
        assert p.predict(0x100) is None


class TestMeta:
    def test_storage_positive(self):
        assert StrideAddressPredictor().storage_bits > 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            StrideAddressPredictor(n_entries=1000)
