"""Tests for job execution: ordering, failure surfacing, reporting."""

import multiprocessing

import pytest

from repro.parallel import (
    ExecutionPlan,
    FailedJob,
    JobFailure,
    SERIAL_PLAN,
    SimJob,
    active_plan,
    derive_seed,
    execution,
    run_jobs,
)
from tests.parallel import _grid_jobs


def _squares(xs, delays=None):
    delays = delays or [0.0] * len(xs)
    return [SimJob.make(_grid_jobs.square, key=("sq", x), x=x, delay=d)
            for x, d in zip(xs, delays)]


class TestSimJob:
    def test_make_requires_registration(self):
        with pytest.raises(ValueError, match="not a registered sim_job"):
            SimJob.make(lambda: None, key=("x",))

    def test_params_sorted_for_stable_identity(self):
        a = SimJob.make(_grid_jobs.square, key=("k",), x=1, delay=0.0)
        b = SimJob.make(_grid_jobs.square, key=("k",), delay=0.0, x=1)
        assert a == b

    def test_derived_seed_injected_when_declared(self):
        job = SimJob.make(_grid_jobs.seeded, key=("s", "a"), label="a")
        assert job.run() == job.derived_seed

    def test_derived_seed_stable_and_distinct(self):
        a = SimJob.make(_grid_jobs.seeded, key=("s", "a"), label="a")
        b = SimJob.make(_grid_jobs.seeded, key=("s", "b"), label="b")
        assert a.derived_seed == a.derived_seed
        assert a.derived_seed != b.derived_seed
        assert 0 <= a.derived_seed < 2 ** 63

    def test_derive_seed_is_cross_process_stable(self):
        # A hard-coded expectation: hash() salting must not sneak in.
        assert derive_seed("x", 1) == derive_seed("x", 1)
        assert derive_seed("x", 1) != derive_seed("x", 2)


class TestSerialExecution:
    def test_results_in_submission_order(self):
        results = run_jobs(_squares([3, 1, 2]))
        assert results == [9, 1, 4]

    def test_empty_grid(self):
        assert run_jobs([]) == []

    def test_failure_carries_job_key_and_traceback(self):
        jobs = _squares([1]) + [SimJob.make(_grid_jobs.fail,
                                            key=("fail", 7), x=7)]
        with pytest.raises(JobFailure) as excinfo:
            run_jobs(jobs)
        message = str(excinfo.value)
        assert "('fail', 7)" in message          # the job key
        assert "ValueError: boom on 7" in message  # original traceback
        assert "test-fail" in message
        assert excinfo.value.job.key == ("fail", 7)


class TestPooledExecution:
    def test_results_in_submission_order_despite_completion_order(self):
        # The first job sleeps longest: completion order is the reverse
        # of submission order, results must not be.
        jobs = _squares([4, 3, 2, 1],
                        delays=[0.3, 0.2, 0.1, 0.0])
        results = run_jobs(jobs, plan=ExecutionPlan(workers=4))
        assert results == [16, 9, 4, 1]

    def test_pooled_matches_serial(self):
        jobs = _squares(list(range(6)))
        serial = run_jobs(jobs, plan=SERIAL_PLAN)
        pooled = run_jobs(jobs, plan=ExecutionPlan(workers=2))
        assert pooled == serial

    def test_failure_surfaces_worker_traceback(self):
        jobs = [SimJob.make(_grid_jobs.fail, key=("fail", 42), x=42)] \
            + _squares([1, 2])
        with pytest.raises(JobFailure) as excinfo:
            run_jobs(jobs, plan=ExecutionPlan(workers=2))
        message = str(excinfo.value)
        assert "('fail', 42)" in message
        assert "ValueError: boom on 42" in message
        assert "Traceback" in message  # the *worker's* traceback text

    def test_single_job_grid_runs_serially(self):
        # No pool spin-up cost for a one-job grid.
        assert run_jobs(_squares([5]),
                        plan=ExecutionPlan(workers=8)) == [25]


class TestExecutionContext:
    def test_default_plan_is_serial(self):
        assert active_plan() == SERIAL_PLAN

    def test_context_installs_and_restores(self):
        plan = ExecutionPlan(workers=3, cache_dir="/tmp/nowhere")
        with execution(plan):
            assert active_plan() is plan
            inner = ExecutionPlan(workers=0)
            with execution(inner):
                assert active_plan() is inner
            assert active_plan() is plan
        assert active_plan() == SERIAL_PLAN

    def test_report_collects_job_records(self):
        with execution(ExecutionPlan()) as report:
            run_jobs(_squares([1, 2, 3]))
        assert report.n_jobs == 3
        assert report.n_cache_hits == 0
        assert all(r.worker == "serial" for r in report.records)
        assert [r.key for r in report.records] \
            == [("sq", 1), ("sq", 2), ("sq", 3)]

    def test_report_tagging_and_breakdown(self):
        with execution(ExecutionPlan()) as report:
            run_jobs(_squares([1]))
            report.tag("figA")
            run_jobs(_squares([2]))
            report.tag("figB")
        assert [r.figure for r in report.records] == ["figA", "figB"]
        breakdown = report.worker_breakdown()
        assert breakdown["serial"]["jobs"] == 2
        as_dict = report.as_dict()
        assert as_dict["n_jobs"] == 2
        assert len(as_dict["jobs"]) == 2

    def test_no_cache_plan_disables_cache_dir(self):
        plan = ExecutionPlan(workers=0, cache_dir="/tmp/x",
                             use_cache=False)
        assert plan.effective_cache_dir is None

    def test_cache_hits_recorded(self, tmp_path):
        plan = ExecutionPlan(workers=0, cache_dir=str(tmp_path))
        with execution(plan) as cold:
            run_jobs(_squares([1, 2]))
        assert cold.n_cache_hits == 0
        with execution(plan) as warm:
            run_jobs(_squares([1, 2]))
        assert warm.n_cache_hits == 2
        assert warm.cache_hit_rate == 1.0


def _flaky_job(tmp_path, fail_times, tag="a"):
    return SimJob.make(_grid_jobs.flaky, key=("flaky", tag),
                       counter_file=str(tmp_path / f"count-{tag}"),
                       fail_times=fail_times)


class TestRetries:
    def test_serial_retry_then_succeed(self, tmp_path):
        plan = ExecutionPlan(workers=0, max_retries=2,
                             retry_backoff=0.0)
        with execution(plan) as report:
            results = run_jobs([_flaky_job(tmp_path, fail_times=2)])
        assert results == [3]  # succeeded on the third attempt
        assert report.retries == 2
        assert report.records[0].attempts == 3
        assert report.records[0].status == "ok"

    def test_pooled_retry_then_succeed(self, tmp_path):
        plan = ExecutionPlan(workers=2, max_retries=2,
                             retry_backoff=0.01)
        with execution(plan) as report:
            results = run_jobs([_flaky_job(tmp_path, 2, "p")]
                               + _squares([1, 2]))
        assert results == [3, 1, 4]
        assert report.retries == 2

    def test_retries_exhausted_still_fails(self, tmp_path):
        plan = ExecutionPlan(workers=0, max_retries=1,
                             retry_backoff=0.0)
        with execution(plan):
            with pytest.raises(JobFailure) as excinfo:
                run_jobs([_flaky_job(tmp_path, fail_times=5)])
        assert excinfo.value.attempts == 2
        assert "after 2 attempt(s)" in str(excinfo.value)

    def test_default_plan_does_not_retry(self, tmp_path):
        # Historical behaviour is the default: first failure aborts.
        with pytest.raises(JobFailure) as excinfo:
            run_jobs([_flaky_job(tmp_path, fail_times=1)])
        assert excinfo.value.attempts == 1


class TestPartialResults:
    def test_failed_jobs_become_placeholders(self):
        plan = ExecutionPlan(workers=0, allow_partial=True)
        jobs = _squares([2]) \
            + [SimJob.make(_grid_jobs.fail, key=("fail", 9), x=9)] \
            + _squares([3])
        with execution(plan) as report:
            results = run_jobs(jobs)
        assert results[0] == 4 and results[2] == 9
        placeholder = results[1]
        assert isinstance(placeholder, FailedJob)
        assert placeholder.key == ("fail", 9)
        assert "boom on 9" in placeholder.error
        assert report.degraded
        assert [f["key"] for f in report.failures] == [["fail", 9]]
        statuses = [r.status for r in report.records]
        assert statuses == ["ok", "failed", "ok"]

    def test_as_dict_round_trips(self):
        placeholder = FailedJob(kind="k", key=("a", 1), error="e",
                                attempts=2)
        assert placeholder.as_dict()["status"] == "failed"


class TestCancellation:
    def test_keyboard_interrupt_leaves_no_orphan_workers(self):
        # Ctrl-C lands in a worker mid-grid while other jobs are still
        # running; the runner must re-raise it *and* tear the whole
        # pool down (no orphaned worker processes keep burning CPU).
        import time as _time

        jobs = [SimJob.make(_grid_jobs.interrupt, key=("int",),
                            after=0.1)] \
            + _squares([1, 2, 3], delays=[30.0, 30.0, 30.0])
        start = _time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            run_jobs(jobs, plan=ExecutionPlan(workers=4))
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert not [c for c in multiprocessing.active_children()
                    if c.is_alive()]
        # Teardown must have *killed* the 30s sleepers, not waited
        # them out.
        assert _time.monotonic() - start < 15.0

    def test_keyboard_interrupt_serial_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            run_jobs([SimJob.make(_grid_jobs.interrupt, key=("int",))])
