"""Tests for job execution: ordering, failure surfacing, reporting."""

import pytest

from repro.parallel import (
    ExecutionPlan,
    JobFailure,
    SERIAL_PLAN,
    SimJob,
    active_plan,
    derive_seed,
    execution,
    run_jobs,
)
from tests.parallel import _grid_jobs


def _squares(xs, delays=None):
    delays = delays or [0.0] * len(xs)
    return [SimJob.make(_grid_jobs.square, key=("sq", x), x=x, delay=d)
            for x, d in zip(xs, delays)]


class TestSimJob:
    def test_make_requires_registration(self):
        with pytest.raises(ValueError, match="not a registered sim_job"):
            SimJob.make(lambda: None, key=("x",))

    def test_params_sorted_for_stable_identity(self):
        a = SimJob.make(_grid_jobs.square, key=("k",), x=1, delay=0.0)
        b = SimJob.make(_grid_jobs.square, key=("k",), delay=0.0, x=1)
        assert a == b

    def test_derived_seed_injected_when_declared(self):
        job = SimJob.make(_grid_jobs.seeded, key=("s", "a"), label="a")
        assert job.run() == job.derived_seed

    def test_derived_seed_stable_and_distinct(self):
        a = SimJob.make(_grid_jobs.seeded, key=("s", "a"), label="a")
        b = SimJob.make(_grid_jobs.seeded, key=("s", "b"), label="b")
        assert a.derived_seed == a.derived_seed
        assert a.derived_seed != b.derived_seed
        assert 0 <= a.derived_seed < 2 ** 63

    def test_derive_seed_is_cross_process_stable(self):
        # A hard-coded expectation: hash() salting must not sneak in.
        assert derive_seed("x", 1) == derive_seed("x", 1)
        assert derive_seed("x", 1) != derive_seed("x", 2)


class TestSerialExecution:
    def test_results_in_submission_order(self):
        results = run_jobs(_squares([3, 1, 2]))
        assert results == [9, 1, 4]

    def test_empty_grid(self):
        assert run_jobs([]) == []

    def test_failure_carries_job_key_and_traceback(self):
        jobs = _squares([1]) + [SimJob.make(_grid_jobs.fail,
                                            key=("fail", 7), x=7)]
        with pytest.raises(JobFailure) as excinfo:
            run_jobs(jobs)
        message = str(excinfo.value)
        assert "('fail', 7)" in message          # the job key
        assert "ValueError: boom on 7" in message  # original traceback
        assert "test-fail" in message
        assert excinfo.value.job.key == ("fail", 7)


class TestPooledExecution:
    def test_results_in_submission_order_despite_completion_order(self):
        # The first job sleeps longest: completion order is the reverse
        # of submission order, results must not be.
        jobs = _squares([4, 3, 2, 1],
                        delays=[0.3, 0.2, 0.1, 0.0])
        results = run_jobs(jobs, plan=ExecutionPlan(workers=4))
        assert results == [16, 9, 4, 1]

    def test_pooled_matches_serial(self):
        jobs = _squares(list(range(6)))
        serial = run_jobs(jobs, plan=SERIAL_PLAN)
        pooled = run_jobs(jobs, plan=ExecutionPlan(workers=2))
        assert pooled == serial

    def test_failure_surfaces_worker_traceback(self):
        jobs = [SimJob.make(_grid_jobs.fail, key=("fail", 42), x=42)] \
            + _squares([1, 2])
        with pytest.raises(JobFailure) as excinfo:
            run_jobs(jobs, plan=ExecutionPlan(workers=2))
        message = str(excinfo.value)
        assert "('fail', 42)" in message
        assert "ValueError: boom on 42" in message
        assert "Traceback" in message  # the *worker's* traceback text

    def test_single_job_grid_runs_serially(self):
        # No pool spin-up cost for a one-job grid.
        assert run_jobs(_squares([5]),
                        plan=ExecutionPlan(workers=8)) == [25]


class TestExecutionContext:
    def test_default_plan_is_serial(self):
        assert active_plan() == SERIAL_PLAN

    def test_context_installs_and_restores(self):
        plan = ExecutionPlan(workers=3, cache_dir="/tmp/nowhere")
        with execution(plan):
            assert active_plan() is plan
            inner = ExecutionPlan(workers=0)
            with execution(inner):
                assert active_plan() is inner
            assert active_plan() is plan
        assert active_plan() == SERIAL_PLAN

    def test_report_collects_job_records(self):
        with execution(ExecutionPlan()) as report:
            run_jobs(_squares([1, 2, 3]))
        assert report.n_jobs == 3
        assert report.n_cache_hits == 0
        assert all(r.worker == "serial" for r in report.records)
        assert [r.key for r in report.records] \
            == [("sq", 1), ("sq", 2), ("sq", 3)]

    def test_report_tagging_and_breakdown(self):
        with execution(ExecutionPlan()) as report:
            run_jobs(_squares([1]))
            report.tag("figA")
            run_jobs(_squares([2]))
            report.tag("figB")
        assert [r.figure for r in report.records] == ["figA", "figB"]
        breakdown = report.worker_breakdown()
        assert breakdown["serial"]["jobs"] == 2
        as_dict = report.as_dict()
        assert as_dict["n_jobs"] == 2
        assert len(as_dict["jobs"]) == 2

    def test_no_cache_plan_disables_cache_dir(self):
        plan = ExecutionPlan(workers=0, cache_dir="/tmp/x",
                             use_cache=False)
        assert plan.effective_cache_dir is None

    def test_cache_hits_recorded(self, tmp_path):
        plan = ExecutionPlan(workers=0, cache_dir=str(tmp_path))
        with execution(plan) as cold:
            run_jobs(_squares([1, 2]))
        assert cold.n_cache_hits == 0
        with execution(plan) as warm:
            run_jobs(_squares([1, 2]))
        assert warm.n_cache_hits == 2
        assert warm.cache_hit_rate == 1.0
