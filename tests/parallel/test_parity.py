"""Serial/parallel/cached runs must be observably identical.

The contract (docs/parallel.md): ``--workers N`` and ``--cache-dir``
are execution knobs, never result knobs.  These tests pin it end to
end through the real CLI: byte-identical ``--json`` artifacts, and a
warm cache that answers without constructing a single ``Machine``.
"""

import filecmp
import json

import pytest

import repro.experiments.classification as classification
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.harness import _master_trace

SMALL = ["--uops", "2500", "--traces-per-group", "1"]


def _run(figure, json_path, *extra):
    rc = experiments_main([figure, *SMALL, "--json", str(json_path),
                           *extra])
    assert rc == 0


@pytest.mark.parametrize("figure", ["classification", "hitmiss_speedup"])
def test_json_byte_identical_serial_vs_workers(figure, tmp_path, capsys):
    serial = tmp_path / "serial.json"
    parallel = tmp_path / "parallel.json"
    _run(figure, serial)
    _run(figure, parallel, "--workers", "4")
    capsys.readouterr()
    assert filecmp.cmp(str(serial), str(parallel), shallow=False), \
        "--workers changed the result payload"
    # Sanity: the artifact actually contains figure data.
    data = json.loads(serial.read_text())
    assert data


def test_json_byte_identical_serial_vs_cached(tmp_path, capsys):
    plain = tmp_path / "plain.json"
    cold = tmp_path / "cold.json"
    warm = tmp_path / "warm.json"
    cache = tmp_path / "cache"
    _run("classification", plain)
    _run("classification", cold, "--cache-dir", str(cache))
    _run("classification", warm, "--cache-dir", str(cache))
    capsys.readouterr()
    assert filecmp.cmp(str(plain), str(cold), shallow=False)
    assert filecmp.cmp(str(cold), str(warm), shallow=False)


def test_warm_cache_constructs_zero_machines(tmp_path, monkeypatch,
                                             capsys):
    cache = tmp_path / "cache"
    cold = tmp_path / "cold.json"
    warm = tmp_path / "warm.json"
    _run("classification", cold, "--cache-dir", str(cache))

    class ForbiddenMachine:
        def __init__(self, *args, **kwargs):
            raise AssertionError(
                "Machine constructed during a fully warm cached run")

    # Every classification simulation goes through this name; a warm
    # run must serve all jobs from disk and never reach it.
    monkeypatch.setattr(classification, "Machine", ForbiddenMachine)
    _master_trace.cache_clear()  # drop in-process memo, hit the disk
    _run("classification", warm, "--cache-dir", str(cache))
    capsys.readouterr()
    assert filecmp.cmp(str(cold), str(warm), shallow=False)


def test_manifest_written_next_to_cache(tmp_path, capsys):
    cache = tmp_path / "cache"
    _run("classification", tmp_path / "a.json", "--cache-dir",
         str(cache))
    _run("classification", tmp_path / "b.json", "--cache-dir",
         str(cache))
    capsys.readouterr()
    manifest = json.loads((cache / "last_run_manifest.json").read_text())
    parallel = manifest["extra"]["parallel"]
    assert parallel["n_jobs"] > 0
    assert parallel["cache_hit_rate"] == 1.0  # second run fully warm
    assert manifest["wall_seconds"] > 0


def test_no_cache_flag_bypasses_cache_dir(tmp_path, capsys):
    cache = tmp_path / "cache"
    _run("classification", tmp_path / "a.json", "--cache-dir",
         str(cache), "--no-cache")
    capsys.readouterr()
    assert not cache.exists()
