"""Tests for the content-addressed result cache and its invalidation."""

import os
import pickle

import pytest

import repro.parallel.cache as cache_mod
from repro.experiments.harness import ExperimentSettings
from repro.parallel import (
    ResultCache,
    SimJob,
    cache_key,
    canonical,
    key_material,
    load_or_build_trace,
)
from repro.trace.workloads import profile_for, trace_seed


def _job(**overrides):
    fields = dict(kind="classify", key=("classify", "cd"),
                  params=(("n_uops", 3000), ("name", "cd"),
                          ("window", 32)))
    fields.update(overrides)
    return SimJob(**fields)


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(3) == 3
        assert canonical("x") == "x"
        assert canonical(None) is None

    def test_mappings_key_sorted(self):
        assert (canonical({"b": 1, "a": 2})
                == canonical({"a": 2, "b": 1}))

    def test_dataclasses_carry_type_name(self):
        rendered = canonical(ExperimentSettings(n_uops=1000))
        assert "ExperimentSettings" in rendered["__dataclass__"]
        assert rendered["fields"]["n_uops"] == 1000

    def test_material_is_deterministic(self):
        assert key_material("a", 1) == key_material("a", 1)
        assert key_material("a", 1) != key_material("a", 2)


class TestCacheKey:
    def test_different_settings_different_key(self):
        job = _job()
        key_a, _ = cache_key(job, ExperimentSettings(n_uops=3000))
        key_b, _ = cache_key(job, ExperimentSettings(n_uops=5000))
        assert key_a != key_b

    def test_different_params_different_key(self):
        key_a, _ = cache_key(_job(), None)
        key_b, _ = cache_key(_job(params=(("n_uops", 4000),
                                          ("name", "cd"),
                                          ("window", 32))), None)
        assert key_a != key_b

    def test_package_version_in_material(self):
        _, material = cache_key(_job(), None)
        assert cache_mod.PACKAGE_VERSION in material


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, material = cache_key(_job(), None)
        cache.store(key, material, {"cycles": 123})
        hit, payload = cache.load(key, material)
        assert hit and payload == {"cycles": 123}
        assert cache.stats() == {"hits": 1, "misses": 0, "stores": 1}

    def test_cold_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, material = cache_key(_job(), None)
        hit, payload = cache.load(key, material)
        assert not hit and payload is None

    def test_stale_settings_miss(self, tmp_path):
        """A result stored under one ExperimentSettings never serves
        a lookup made under different settings."""
        cache = ResultCache(str(tmp_path))
        job = _job()
        key_a, mat_a = cache_key(job, ExperimentSettings(n_uops=3000))
        cache.store(key_a, mat_a, "stale")
        key_b, mat_b = cache_key(job, ExperimentSettings(n_uops=9000))
        hit, _ = cache.load(key_b, mat_b)
        assert not hit

    def test_package_upgrade_invalidates(self, tmp_path, monkeypatch):
        """Entries written by an older package version must miss."""
        cache = ResultCache(str(tmp_path))
        key, material = cache_key(_job(), None)
        cache.store(key, material, "old-version-result")
        monkeypatch.setattr(cache_mod, "PACKAGE_VERSION", "99.0.0")
        new_key, new_material = cache_key(_job(), None)
        assert new_key != key  # version is part of the address
        hit, _ = cache.load(new_key, new_material)
        assert not hit
        # Even a forged lookup at the old address is rejected: the
        # envelope's version field no longer matches the running code.
        hit, _ = cache.load(key, material)
        assert not hit

    def test_corrupted_pickle_warns_and_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, material = cache_key(_job(), None)
        cache.store(key, material, "good")
        path = os.path.join(str(tmp_path), key[:2], key + ".pkl")
        with open(path, "wb") as handle:
            handle.write(b"\x80\x04 this is not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
            hit, payload = cache.load(key, material)
        assert not hit and payload is None

    def test_truncated_pickle_warns_and_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, material = cache_key(_job(), None)
        cache.store(key, material, list(range(100)))
        path = os.path.join(str(tmp_path), key[:2], key + ".pkl")
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.warns(RuntimeWarning):
            hit, _ = cache.load(key, material)
        assert not hit

    def test_material_collision_rejected(self, tmp_path):
        """Same hash file but different material (copied between cache
        dirs, hand-edited, ...) is treated as a miss, not served."""
        cache = ResultCache(str(tmp_path))
        key, material = cache_key(_job(), None)
        envelope = {"schema": cache_mod.CACHE_SCHEMA,
                    "version": cache_mod.PACKAGE_VERSION,
                    "material": material + "-tampered",
                    "payload": "evil"}
        path = os.path.join(str(tmp_path), key[:2], key + ".pkl")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        hit, _ = cache.load(key, material)
        assert not hit

    def test_store_is_atomic_no_tmp_left(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key, material = cache_key(_job(), None)
        cache.store(key, material, "x")
        leftovers = [name for _, _, names in os.walk(str(tmp_path))
                     for name in names if ".tmp." in name]
        assert leftovers == []

    def test_mid_write_process_kill_is_atomic(self, tmp_path):
        """A writer killed between temp write and rename leaves the
        entry absent (never half-written); the sweep reclaims the
        temp dropping once the writer is dead."""
        import subprocess
        import sys

        script = (
            "import os, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.parallel import ResultCache\n"
            "cache = ResultCache(sys.argv[2])\n"
            "cache.fault_hook = lambda point, path: os._exit(86)\n"
            "cache.store('ab' + '0' * 62, 'material', {'v': 1})\n"
        )
        src = os.path.join(os.path.dirname(cache_mod.__file__),
                           "..", "..")
        proc = subprocess.run(
            [sys.executable, "-c", script, os.path.abspath(src),
             str(tmp_path)], timeout=60)
        assert proc.returncode == 86  # it really died at the hook
        pkls = [n for _, _, names in os.walk(str(tmp_path))
                for n in names if n.endswith(".pkl")]
        tmps = [n for _, _, names in os.walk(str(tmp_path))
                for n in names if ".tmp." in n]
        assert pkls == []  # the entry never became visible
        assert len(tmps) == 1  # the orphaned temp file survived
        removed = ResultCache(str(tmp_path)).sweep_stale_tmp()
        assert len(removed) == 1
        assert not any(".tmp." in n for _, _, names
                       in os.walk(str(tmp_path)) for n in names)

    def test_sweep_spares_live_writers(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        mine = tmp_path / f"entry.pkl.tmp.{os.getpid()}"
        mine.write_bytes(b"partial")
        dead = tmp_path / "entry.pkl.tmp.999999999"
        dead.write_bytes(b"partial")
        unrelated = tmp_path / "notes.txt"
        unrelated.write_text("keep me")
        removed = cache.sweep_stale_tmp()
        assert removed == [str(dead)]
        assert mine.exists()  # this process is alive: never raced
        assert unrelated.exists()


class TestTraceCache:
    def test_corrupted_trace_entry_rebuilds(self, tmp_path):
        """End-to-end fallback: corrupt the cached trace on disk, then
        load again — a warning fires and the trace is rebuilt
        identically."""
        cache = ResultCache(str(tmp_path))
        profile = profile_for("cd")
        first = load_or_build_trace(profile, n_uops=1500,
                                    seed=trace_seed("cd"), name="cd",
                                    cache=cache)
        assert cache.stores == 1
        # Smash every entry in the cache directory.
        for root, _, names in os.walk(str(tmp_path)):
            for name in names:
                with open(os.path.join(root, name), "wb") as handle:
                    handle.write(b"garbage")
        with pytest.warns(RuntimeWarning, match="re-simulation"):
            rebuilt = load_or_build_trace(profile, n_uops=1500,
                                          seed=trace_seed("cd"),
                                          name="cd", cache=cache)
        assert rebuilt.uops == first.uops

    def test_cached_trace_identical_to_fresh_build(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        profile = profile_for("gcc")
        built = load_or_build_trace(profile, n_uops=1500,
                                    seed=trace_seed("gcc"), name="gcc",
                                    cache=cache)
        reloaded = load_or_build_trace(profile, n_uops=1500,
                                       seed=trace_seed("gcc"),
                                       name="gcc", cache=cache)
        assert cache.hits == 1
        assert reloaded.uops == built.uops
        assert reloaded.name == built.name
        assert reloaded.seed == built.seed
