"""Tiny registered job runners used by the runner tests.

They live in a real module (not a test body) because pooled workers
resolve runners by re-importing the module recorded on the job — a
closure defined inside a test function could never cross the process
boundary.
"""

import time

from repro.parallel import sim_job


@sim_job("test-square")
def square(x: int, delay: float = 0.0) -> int:
    """Square ``x``; ``delay`` lets tests scramble completion order."""
    if delay:
        time.sleep(delay)
    return x * x


@sim_job("test-fail")
def fail(x: int) -> int:
    raise ValueError(f"boom on {x}")


@sim_job("test-seeded")
def seeded(label: str, derived_seed: int) -> int:
    """Echo the injected per-job seed back to the caller."""
    return derived_seed


@sim_job("test-flaky")
def flaky(counter_file: str, fail_times: int) -> int:
    """Fail the first ``fail_times`` calls, then succeed.

    Attempts are counted in a file so the count survives process
    boundaries (each pooled retry may land in a different worker).
    """
    import os

    count = 0
    if os.path.exists(counter_file):
        with open(counter_file, "r", encoding="utf-8") as handle:
            count = int(handle.read() or 0)
    count += 1
    with open(counter_file, "w", encoding="utf-8") as handle:
        handle.write(str(count))
    if count <= fail_times:
        raise ValueError(f"flaky failure #{count}")
    return count


@sim_job("test-from-file")
def from_file(value_file: str) -> int:
    """Return the integer currently stored in ``value_file``.

    Stands in for "what the current code computes": rewriting the file
    between runs simulates a code edit that changes the result without
    changing the cache key.
    """
    with open(value_file, "r", encoding="utf-8") as handle:
        return int(handle.read())


@sim_job("test-interrupt")
def interrupt(after: float = 0.0) -> None:
    """Simulate the user hitting Ctrl-C inside a worker."""
    if after:
        time.sleep(after)
    raise KeyboardInterrupt
