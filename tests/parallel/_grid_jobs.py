"""Tiny registered job runners used by the runner tests.

They live in a real module (not a test body) because pooled workers
resolve runners by re-importing the module recorded on the job — a
closure defined inside a test function could never cross the process
boundary.
"""

import time

from repro.parallel import sim_job


@sim_job("test-square")
def square(x: int, delay: float = 0.0) -> int:
    """Square ``x``; ``delay`` lets tests scramble completion order."""
    if delay:
        time.sleep(delay)
    return x * x


@sim_job("test-fail")
def fail(x: int) -> int:
    raise ValueError(f"boom on {x}")


@sim_job("test-seeded")
def seeded(label: str, derived_seed: int) -> int:
    """Echo the injected per-job seed back to the caller."""
    return derived_seed
