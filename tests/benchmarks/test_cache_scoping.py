"""Regression tests for the benchmark suite's cache scoping.

:class:`~repro.parallel.cache.ResultCache` keys embed the package
version, which ordinary code edits never change, so a persistent cache
directory reused across benchmark runs serves results computed by *old*
code.  ``benchmarks/conftest.py`` therefore scopes every benchmark's
cache to a per-test pytest tmp path.  These tests pin both the hazard
(first class) and the fix (second class).
"""

import pathlib
import sys

from repro.parallel import SERIAL_PLAN, SimJob, active_plan, run_jobs

from tests.parallel import _grid_jobs

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:  # `benchmarks` lives at the repo root
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.conftest import bench_cache, scoped_cache  # noqa: E402


def _job(value_file):
    return SimJob.make(_grid_jobs.from_file, key=("from-file",),
                       value_file=str(value_file))


class TestStaleCacheHazard:
    def test_reused_persistent_dir_serves_stale_results(self, tmp_path):
        """The failure mode the fixture exists to prevent: after a
        "code edit" (same cache key, different answer), a reused
        directory still returns the pre-edit result."""
        value = tmp_path / "value.txt"
        value.write_text("1")
        with scoped_cache(tmp_path / "persistent"):
            assert run_jobs([_job(value)]) == [1]
        value.write_text("2")  # the code edit
        with scoped_cache(tmp_path / "persistent"):
            assert run_jobs([_job(value)]) == [1]  # stale, not 2

    def test_fresh_dir_recomputes_after_code_edit(self, tmp_path):
        value = tmp_path / "value.txt"
        value.write_text("1")
        with scoped_cache(tmp_path / "run-a"):
            assert run_jobs([_job(value)]) == [1]
        value.write_text("2")
        with scoped_cache(tmp_path / "run-b"):
            assert run_jobs([_job(value)]) == [2]


class TestConftestFixture:
    def test_fixture_is_autouse_and_per_test(self):
        """Every benchmark test must get its own fresh cache without
        opting in; a session-scoped or opt-in fixture would reopen the
        stale-reuse window."""
        marker = getattr(bench_cache, "_fixture_function_marker", None) \
            or bench_cache._pytestfixturefunction  # pytest < 8.4
        assert marker.autouse
        assert marker.scope == "function"

    def test_scoped_cache_installs_and_removes_the_plan(self, tmp_path):
        outer = active_plan()
        with scoped_cache(tmp_path / "cache") as cache_dir:
            plan = active_plan()
            assert plan.effective_cache_dir == cache_dir
            assert pathlib.Path(cache_dir).parent == tmp_path
            # Timing semantics unchanged: serial, no retries/timeouts.
            assert plan.workers == SERIAL_PLAN.workers
            assert plan.max_retries == SERIAL_PLAN.max_retries
            assert plan.job_timeout == SERIAL_PLAN.job_timeout
        assert active_plan() is outer

    def test_jobs_inside_the_context_use_the_tmp_cache(self, tmp_path):
        value = tmp_path / "value.txt"
        value.write_text("7")
        with scoped_cache(tmp_path / "cache") as cache_dir:
            assert run_jobs([_job(value)]) == [7]
        entries = list(pathlib.Path(cache_dir).rglob("*.pkl"))
        assert entries, "job result was not stored in the scoped cache"
