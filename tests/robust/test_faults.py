"""Deterministic fault injection: plans, chaos specs, saboteur wiring."""

import pytest

from repro.cht.full import FullCHT
from repro.common.config import MemoryConfig
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.hitmiss.oracle import AlwaysHitHMP
from repro.memory.hierarchy import MemoryHierarchy
from repro.parallel import ResultCache, SimJob
from repro.robust import (
    FaultPlan,
    FaultyBankPredictor,
    FaultyCHT,
    FaultyHMP,
    LatencyFaultHierarchy,
    apply_fault_plan,
    corrupt_cache,
    parse_chaos_spec,
)
from repro.bank.base import BankPrediction, BankPredictor
from tests.parallel import _grid_jobs


def _jobs(n=16):
    return [SimJob.make(_grid_jobs.square, key=("sq", x), x=x)
            for x in range(n)]


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, kill_fraction=0.5, stall_fraction=0.5)
        first = [(plan.kills(j, 1), plan.stalls(j)) for j in _jobs()]
        second = [(plan.kills(j, 1), plan.stalls(j)) for j in _jobs()]
        assert first == second
        assert any(k for k, _ in first)
        assert not all(k for k, _ in first)

    def test_different_seeds_fault_different_jobs(self):
        a = FaultPlan(seed=1, kill_fraction=0.5)
        b = FaultPlan(seed=2, kill_fraction=0.5)
        assert [a.kills(j, 1) for j in _jobs(64)] \
            != [b.kills(j, 1) for j in _jobs(64)]

    def test_kill_attempts_spares_the_retry(self):
        plan = FaultPlan(seed=0, kill_fraction=1.0, kill_attempts=1)
        job = _jobs(1)[0]
        assert plan.kills(job, 1)
        assert not plan.kills(job, 2)

    def test_target_kinds_confine_process_faults(self):
        plan = FaultPlan(seed=0, kill_fraction=1.0,
                         target_kinds=("some-other-kind",))
        job = _jobs(1)[0]
        assert not plan.targets(job)
        assert not plan.kills(job, 1)
        assert not plan.stalls(job)

    def test_pre_job_fault_never_fires_outside_a_worker(self):
        # kill_fraction=1.0 would os._exit(); surviving this call *is*
        # the assertion that the serial path is a safe harbour.
        plan = FaultPlan(seed=0, kill_fraction=1.0)
        plan.pre_job_fault(_jobs(1)[0], attempt=1, in_worker=False)

    def test_wants_flags_and_as_dict(self):
        assert not FaultPlan().wants_process_faults
        assert not FaultPlan().wants_machine_faults
        assert FaultPlan(kill_fraction=0.1).wants_process_faults
        assert FaultPlan(flip_hmp=0.1).wants_machine_faults
        assert FaultPlan(extra_load_latency=5).wants_machine_faults
        out = FaultPlan(seed=3, target_kinds=("a",)).as_dict()
        assert out["seed"] == 3
        assert out["target_kinds"] == ["a"]


class TestParseChaosSpec:
    def test_defaults_per_fault(self):
        plan = parse_chaos_spec("worker-kill,cache-corrupt", seed=9)
        assert plan.seed == 9
        assert plan.kill_fraction == 0.3
        assert plan.corrupt_cache_fraction == 0.5
        assert plan.stall_fraction == 0.0

    def test_explicit_values_and_kinds(self):
        plan = parse_chaos_spec(
            "worker-kill=0.5, worker-stall=0.25, stall-seconds=0.01, "
            "flip-cht=0.1, flip-hmp=0.2, flip-bank=0.3, latency=7, "
            "kind=classification, kind=ordering-speedups")
        assert plan.kill_fraction == 0.5
        assert plan.stall_fraction == 0.25
        assert plan.stall_seconds == 0.01
        assert plan.flip_cht == 0.1
        assert plan.flip_hmp == 0.2
        assert plan.flip_bank == 0.3
        assert plan.extra_load_latency == 7
        assert plan.target_kinds == ("classification",
                                     "ordering-speedups")

    def test_unknown_fault_is_rejected_with_roster(self):
        with pytest.raises(ValueError, match="choose from"):
            parse_chaos_spec("worker-kil")

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            parse_chaos_spec("worker-kill=1.5")

    def test_non_numeric_fraction(self):
        with pytest.raises(ValueError, match="numeric"):
            parse_chaos_spec("worker-kill=lots")

    def test_kind_requires_a_value(self):
        with pytest.raises(ValueError, match="needs a job kind"):
            parse_chaos_spec("kind=")


class TestCorruptCache:
    def _populate(self, tmp_path, n=8):
        cache = ResultCache(str(tmp_path))
        keys = []
        for i in range(n):
            key, material = f"{i:02x}{'0' * 62}", f"material-{i}"
            cache.store(key, material, {"value": i})
            keys.append((key, material))
        return cache, keys

    def test_corrupts_deterministically(self, tmp_path):
        self._populate(tmp_path)
        first = corrupt_cache(str(tmp_path), fraction=0.5, seed=4)
        second = corrupt_cache(str(tmp_path), fraction=0.5, seed=4)
        assert first == second
        assert 0 < len(first) < 8

    def test_full_fraction_corrupts_everything(self, tmp_path):
        self._populate(tmp_path)
        assert len(corrupt_cache(str(tmp_path), fraction=1.0)) == 8

    def test_missing_dir_is_a_noop(self, tmp_path):
        assert corrupt_cache(str(tmp_path / "nope")) == []

    def test_cache_degrades_corrupted_entries_to_misses(self, tmp_path):
        cache, keys = self._populate(tmp_path)
        corrupt_cache(str(tmp_path), fraction=1.0)
        for key, material in keys:
            with pytest.warns(RuntimeWarning, match="corrupted"):
                hit, payload = cache.load(key, material)
            assert not hit and payload is None
        # Re-store over the garbage and the entry is healthy again.
        cache.store(*keys[0], payload={"value": 0})
        hit, payload = cache.load(*keys[0])
        assert hit and payload == {"value": 0}


class _FixedBank(BankPredictor):
    n_banks = 4

    def predict(self, pc):
        return BankPrediction(bank=1)

    def update(self, pc, bank, address=None):
        pass


class TestPredictorFaultWrappers:
    def test_hmp_flips_every_prediction_at_fraction_one(self):
        faulty = FaultyHMP(AlwaysHitHMP(), flip_fraction=1.0)
        assert faulty.predict_hit(0x40) is False  # AlwaysHit flipped
        assert faulty.flips == 1
        faulty.update(0x40, hit=True)  # delegation must not raise

    def test_hmp_never_flips_at_fraction_zero(self):
        faulty = FaultyHMP(AlwaysHitHMP(), flip_fraction=0.0)
        assert all(faulty.predict_hit(pc) for pc in range(0, 400, 4))
        assert faulty.flips == 0

    def test_cht_flip_inverts_collision_bit(self):
        clean = FullCHT(n_entries=64, ways=2)
        faulty = FaultyCHT(FullCHT(n_entries=64, ways=2),
                           flip_fraction=1.0)
        assert faulty.lookup(0x80).colliding \
            is not clean.lookup(0x80).colliding
        assert faulty.flips == 1
        faulty.train(0x80, collided=True)
        assert faulty.storage_bits == clean.storage_bits

    def test_bank_derangement_stays_in_range(self):
        faulty = FaultyBankPredictor(_FixedBank(), flip_fraction=1.0)
        prediction = faulty.predict(0x10)
        assert prediction.predicted
        assert prediction.bank != 1
        assert 0 <= prediction.bank < 4
        assert faulty.flips == 1

    def test_latency_fault_adds_cycles(self):
        hierarchy = MemoryHierarchy(MemoryConfig())
        baseline = hierarchy.load(0x1000, now=0).latency
        faulty = LatencyFaultHierarchy(MemoryHierarchy(MemoryConfig()),
                                       extra=11)
        outcome = faulty.load(0x1000, now=0)
        assert outcome.latency == baseline + 11
        assert faulty.injected == 1
        assert faulty.config is faulty._inner.config  # delegation

    def test_apply_fault_plan_wraps_components(self):
        machine = Machine(scheme=make_scheme("inclusive"))
        plan = FaultPlan(flip_hmp=0.1, flip_cht=0.1,
                         extra_load_latency=3)
        apply_fault_plan(machine, plan)
        assert isinstance(machine.hmp, FaultyHMP)
        assert isinstance(machine.scheme.cht, FaultyCHT)
        assert isinstance(machine.hierarchy, LatencyFaultHierarchy)

    def test_apply_noop_plan_leaves_machine_alone(self):
        machine = Machine(scheme=make_scheme("inclusive"))
        hmp, cht = machine.hmp, machine.scheme.cht
        apply_fault_plan(machine, FaultPlan())
        assert machine.hmp is hmp
        assert machine.scheme.cht is cht


class TestFaultedRunsStayCorrect:
    def test_flipped_predictions_cannot_break_invariants(self):
        # Predictor flips perturb speculation only; the machine's
        # recovery must absorb them with zero invariant violations.
        from repro.experiments.harness import get_trace
        from repro.robust import checked_run

        machine = Machine(scheme=make_scheme("inclusive"))
        apply_fault_plan(machine, FaultPlan(seed=5, flip_cht=0.2,
                                            flip_hmp=0.2,
                                            extra_load_latency=3))
        _, checker = checked_run(machine, get_trace("gcc", 2000))
        assert checker.ok
        assert machine.scheme.cht.flips > 0
