"""Chaos parity: faulted grids heal and still produce exact results.

The acceptance bar for the self-healing runner: a grid executed under a
:class:`~repro.robust.faults.FaultPlan` returns results byte-identical
to a clean serial run for every unaffected job, and the run report
records every retry, rebuild and fallback taken along the way.
"""

import json

import pytest

from repro.parallel import (
    ExecutionPlan,
    FailedJob,
    ResultCache,
    SERIAL_PLAN,
    SimJob,
    execution,
    run_jobs,
)
from repro.robust import FaultPlan
from tests.parallel import _grid_jobs


def _squares(n=8):
    return [SimJob.make(_grid_jobs.square, key=("sq", x), x=x)
            for x in range(n)]


def _as_json(results):
    return json.dumps(results, sort_keys=True, default=str)


class TestKillChaosParity:
    def test_killed_workers_heal_to_identical_results(self):
        clean = run_jobs(_squares(), plan=SERIAL_PLAN)
        chaos = ExecutionPlan(
            workers=2,
            fault_plan=FaultPlan(seed=3, kill_fraction=1.0,
                                 kill_attempts=1))
        with execution(chaos) as report:
            faulted = run_jobs(_squares())
        assert _as_json(faulted) == _as_json(clean)
        # The healing ledger records what the chaos cost.
        assert report.pool_rebuilds >= 1
        assert not report.degraded
        healing = report.healing_summary()
        assert healing["degraded"] is False
        assert healing["pool_rebuilds"] == report.pool_rebuilds
        assert healing["failures"] == []
        # Healed jobs record the extra attempt.
        assert any(r.attempts > 1 for r in report.records)
        assert all(r.status == "ok" for r in report.records)

    def test_target_kinds_shield_other_job_kinds(self):
        # Kills confined to a kind not present in the grid: the pool
        # must never die.
        plan = ExecutionPlan(
            workers=2,
            fault_plan=FaultPlan(seed=3, kill_fraction=1.0,
                                 target_kinds=("test-seeded",)))
        with execution(plan) as report:
            results = run_jobs(_squares())
        assert results == [x * x for x in range(8)]
        assert report.pool_rebuilds == 0
        assert report.retries == 0

    def test_repeated_pool_deaths_fall_back_to_serial(self):
        # Kills fire on every attempt: the pool can never make
        # progress, so after the rebuild budget the runner must finish
        # the grid serially (where process faults never fire).
        plan = ExecutionPlan(
            workers=2, max_pool_rebuilds=1,
            fault_plan=FaultPlan(seed=3, kill_fraction=1.0,
                                 kill_attempts=99))
        with execution(plan) as report:
            results = run_jobs(_squares(4))
        assert results == [x * x for x in range(4)]
        assert report.serial_fallbacks == 1
        assert report.pool_rebuilds == 1
        assert not report.degraded


class TestStallChaos:
    def test_timeout_watchdog_reaps_stalled_workers(self):
        # Every job stalls longer than the timeout on every attempt, so
        # each exhausts its retries; allow_partial turns the losses
        # into placeholders instead of aborting the grid.
        plan = ExecutionPlan(
            workers=2, job_timeout=0.3, heartbeat=0.05, max_retries=1,
            retry_backoff=0.01, allow_partial=True,
            fault_plan=FaultPlan(seed=3, stall_fraction=1.0,
                                 stall_seconds=30.0))
        with execution(plan) as report:
            results = run_jobs(_squares(2))
        assert all(isinstance(r, FailedJob) for r in results)
        assert report.timeouts >= 1
        assert report.degraded
        assert len(report.failures) == 2
        # attempts counts every (re)start, including free resubmits of
        # collateral jobs after a timeout kill — at least the charged
        # retry budget, possibly more.
        assert all(f["attempts"] >= 2 for f in report.failures)


class TestCacheCorruptionChaos:
    def test_corrupted_entries_recompute_to_identical_results(
            self, tmp_path):
        from repro.robust import corrupt_cache

        plan = ExecutionPlan(workers=0, cache_dir=str(tmp_path))
        with execution(plan):
            cold = run_jobs(_squares())
        corrupted = corrupt_cache(str(tmp_path), fraction=1.0)
        assert corrupted
        with execution(plan) as warm_report, \
                pytest.warns(RuntimeWarning, match="corrupted"):
            warm = run_jobs(_squares())
        assert _as_json(warm) == _as_json(cold)
        assert warm_report.n_cache_hits == 0  # all degraded to misses
        # The rewritten entries are healthy again.
        with execution(plan) as healed_report:
            run_jobs(_squares())
        assert healed_report.n_cache_hits == len(_squares())

    def test_mid_write_kill_never_leaves_half_entries(self, tmp_path):
        # Chaos-kill a worker exactly between the temp-file write and
        # the atomic rename (the only window a naive implementation
        # gets wrong) — see tests/parallel/test_cache.py for the
        # subprocess version that really dies there.
        cache = ResultCache(str(tmp_path))

        class Die(Exception):
            pass

        def kill_here(point, path):
            raise Die(point)

        cache.fault_hook = kill_here
        with pytest.raises(Die):
            cache.store("ab" + "0" * 62, "material", {"v": 1})
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []  # no .pkl and no .tmp dropping
