"""The invariant oracle: clean runs pass, every saboteur is caught."""

import dataclasses

import pytest

from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.experiments.harness import get_trace
from repro.obs.events import EventBus, EventKind
from repro.robust import (
    InvariantChecker,
    InvariantViolation,
    LyingOrdering,
    SabotagedMOB,
    SkipSquashMachine,
    checked_run,
)
from tests.engine.helpers import MicroTrace

SCHEMES = ("traditional", "opportunistic", "postponing", "inclusive",
           "exclusive", "perfect")


class TestCleanRuns:
    """A healthy machine must report zero violations on every scheme."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scheme_runs_clean(self, scheme):
        trace = get_trace("gcc", 2000)
        machine = Machine(scheme=make_scheme(scheme))
        result, checker = checked_run(machine, trace)
        assert checker.ok
        assert checker.n_events > 0
        assert result.cycles > 0

    def test_checked_run_is_pure_observer(self):
        trace = get_trace("gcc", 2000)
        bare = Machine(scheme=make_scheme("opportunistic")).run(trace)
        machine = Machine(scheme=make_scheme("opportunistic"))
        checked, checker = checked_run(machine, trace)
        assert checked.cycles == bare.cycles
        assert checked.retired_uops == bare.retired_uops
        # The private bus is fully unwired afterwards.
        assert machine.obs is None
        assert machine.hierarchy.obs is None

    def test_checker_summary_shape(self):
        trace = get_trace("gcc", 1000)
        _, checker = checked_run(Machine(), trace)
        summary = checker.summary()
        assert summary["events_checked"] == checker.n_events
        assert summary["uops_renamed"] == summary["uops_retired"]
        assert summary["violations"] == []


class TestSaboteursAreCaught:
    """Each seeded fault class must trip its dedicated invariant."""

    def test_forwarding_from_younger_store_is_caught(self):
        # A broken store queue that forwards from a *younger* completed
        # store: load A misses slowly, the dependent load at 0x100
        # dispatches late, and by then the younger store to 0x100 has
        # completed — the sabotaged MOB serves it anyway.
        config = dataclasses.replace(
            BASELINE_MACHINE,
            latency=dataclasses.replace(BASELINE_MACHINE.latency,
                                        forward_latency=2))
        trace = (MicroTrace()
                 .load(dst=1, address=0x9000)
                 .load(dst=2, address=0x100, addr_src=1)
                 .store(address=0x100)
                 .build())
        machine = Machine(config, scheme=make_scheme("opportunistic"))
        machine.mob_factory = \
            lambda obs=None: SabotagedMOB("forward-younger", obs=obs)
        with pytest.raises(InvariantViolation) as excinfo:
            checked_run(machine, trace)
        assert excinfo.value.invariant == "forward-from-older"
        assert excinfo.value.window  # post-mortem context travels along

    def test_skipped_collision_squash_is_caught(self):
        # A visible collision (load issued past a store whose data is
        # still pending) must squash the load; this machine detects the
        # collision but executes straight through.
        trace = (MicroTrace()
                 .load(dst=1, address=0x9100)
                 .store(address=0x200, data_src=1)
                 .load(dst=2, address=0x200)
                 .build())
        machine = SkipSquashMachine(scheme=make_scheme("traditional"))
        with pytest.raises(InvariantViolation) as excinfo:
            checked_run(machine, trace)
        assert excinfo.value.invariant == "collision-squash"

    def test_leaking_mob_is_caught(self):
        # remove_retired never reclaims: with a 16-entry pool the MOB
        # occupancy must exceed the in-flight bound within 40 stores.
        config = dataclasses.replace(BASELINE_MACHINE, register_pool=16,
                                     window_size=16)
        trace = MicroTrace()
        for i in range(40):
            trace.store(address=0x1000 + 64 * i)
        machine = Machine(config)
        machine.mob_factory = lambda obs=None: SabotagedMOB("leak", obs=obs)
        with pytest.raises(InvariantViolation) as excinfo:
            checked_run(machine, trace.build())
        assert excinfo.value.invariant == "mob-bound"

    def test_scheme_breaking_its_guarantee_is_caught(self):
        # A scheme advertising the Traditional never-violates guarantee
        # while dispatching loads past unknown STAs.
        trace = (MicroTrace()
                 .load(dst=1, address=0x9200)
                 .store(address=0x300, addr_src=1)
                 .load(dst=2, address=0x300)
                 .build())
        machine = Machine(scheme=LyingOrdering())
        with pytest.raises(InvariantViolation) as excinfo:
            checked_run(machine, trace)
        assert excinfo.value.invariant == "scheme-violation"

    def test_non_strict_mode_collects_instead_of_raising(self):
        trace = (MicroTrace()
                 .load(dst=1, address=0x9200)
                 .store(address=0x300, addr_src=1)
                 .load(dst=2, address=0x300)
                 .build())
        machine = Machine(scheme=LyingOrdering())
        result, checker = checked_run(machine, trace, strict=False)
        assert result.retired_uops == len(trace.uops)
        assert not checker.ok
        assert any(v.invariant == "scheme-violation"
                   for v in checker.violations)
        assert checker.summary()["violations"]

    def test_sabotage_mode_is_validated(self):
        with pytest.raises(ValueError, match="unknown sabotage mode"):
            SabotagedMOB("made-up-mode")


def _checker(**kwargs):
    bus = EventBus()
    checker = InvariantChecker(**kwargs).attach(bus)
    return bus, checker


class TestSyntheticStreams:
    """Unit-level checks: hand-built event streams trip each invariant."""

    def test_out_of_order_retirement(self):
        bus, _ = _checker()
        bus.emit(EventKind.RETIRE, 10, seq=5)
        with pytest.raises(InvariantViolation, match="program order"):
            bus.emit(EventKind.RETIRE, 11, seq=3)

    def test_double_rename(self):
        bus, _ = _checker()
        bus.emit(EventKind.RENAME, 1, seq=1, uclass="INT")
        with pytest.raises(InvariantViolation, match="renamed twice"):
            bus.emit(EventKind.RENAME, 2, seq=1, uclass="INT")

    def test_retire_of_unrenamed_uop(self):
        bus, _ = _checker()
        bus.emit(EventKind.RENAME, 1, seq=0, uclass="INT")
        with pytest.raises(InvariantViolation, match="never renamed"):
            bus.emit(EventKind.RETIRE, 5, seq=1)

    def test_conservation_at_finish(self):
        bus, checker = _checker()
        bus.emit(EventKind.RENAME, 1, seq=0, uclass="INT")
        with pytest.raises(InvariantViolation, match="lost in flight"):
            checker.finish()

    def test_hidden_collision_without_violation_trap(self):
        bus, _ = _checker()
        bus.emit(EventKind.COLLISION, 4, seq=2, visible=False)
        with pytest.raises(InvariantViolation,
                           match="without an ordering-violation trap"):
            bus.emit(EventKind.RETIRE, 9, seq=2)

    def test_violation_without_replay(self):
        bus, _ = _checker()
        bus.emit(EventKind.COLLISION, 4, seq=2, visible=False)
        bus.emit(EventKind.VIOLATION, 5, seq=2)
        with pytest.raises(InvariantViolation, match="without re-issuing"):
            bus.emit(EventKind.RETIRE, 9, seq=2)

    def test_violation_then_replay_is_clean(self):
        bus, checker = _checker()
        bus.emit(EventKind.COLLISION, 4, seq=2, visible=False)
        bus.emit(EventKind.VIOLATION, 5, seq=2)
        bus.emit(EventKind.ISSUE, 6, seq=2)
        bus.emit(EventKind.RETIRE, 9, seq=2)
        assert checker.ok

    def test_forward_from_untracked_store(self):
        bus, _ = _checker()
        with pytest.raises(InvariantViolation, match="never tracked"):
            bus.emit(EventKind.FORWARD, 7, seq=9, store_seq=3)

    def test_std_linked_to_untracked_sta(self):
        bus, _ = _checker()
        with pytest.raises(InvariantViolation, match="never tracked"):
            bus.emit(EventKind.STORE_DATA, 3, seq=8, sta_seq=7)

    def test_double_std_linkage(self):
        bus, _ = _checker()
        bus.emit(EventKind.STORE_TRACKED, 1, seq=4)
        bus.emit(EventKind.STORE_DATA, 2, seq=5, sta_seq=4)
        with pytest.raises(InvariantViolation, match="two STD linkages"):
            bus.emit(EventKind.STORE_DATA, 3, seq=6, sta_seq=4)

    def test_perfect_scheme_must_not_collide(self):
        bus, _ = _checker(scheme=make_scheme("perfect"))
        with pytest.raises(InvariantViolation, match="no\\s+collisions"):
            bus.emit(EventKind.COLLISION, 4, seq=2, visible=True)

    def test_violation_window_is_bounded(self):
        bus, checker = _checker(window_size=4, strict=False)
        for seq in range(10):
            bus.emit(EventKind.RETIRE, seq, seq=seq)
        bus.emit(EventKind.RETIRE, 99, seq=0)  # out of order
        assert not checker.ok
        assert len(checker.violations[0].window) <= 4
        assert len(checker.event_window()) <= 4

    def test_post_mortem_renders_window_and_context(self):
        bus, checker = _checker(strict=False)
        bus.emit(EventKind.RETIRE, 10, seq=5)
        bus.emit(EventKind.RETIRE, 11, seq=3)
        text = checker.violations[0].post_mortem()
        assert "retire-order" in text
        assert "events:" in text
