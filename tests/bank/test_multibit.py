"""Tests for the bit-wise multi-bank predictor."""

import pytest

from repro.bank.multibit import BitwiseBankPredictor, expected_pipes_occupied


class TestGeometry:
    def test_needs_power_of_two(self):
        with pytest.raises(ValueError):
            BitwiseBankPredictor(n_banks=6)

    def test_needs_at_least_two(self):
        with pytest.raises(ValueError):
            BitwiseBankPredictor(n_banks=1)

    def test_bank_range_validated(self):
        p = BitwiseBankPredictor(n_banks=4)
        with pytest.raises(ValueError):
            p.update(0x100, bank=4)


class TestPrediction:
    def test_learns_constant_bank_four_way(self):
        p = BitwiseBankPredictor(n_banks=4, confidence_floor=0.5)
        for _ in range(16):
            p.update(0x100, bank=3)
        assert p.predict_banks(0x100) == [3]
        assert p.predict(0x100).bank == 3

    def test_learns_bank_with_one_varying_bit(self):
        """Bank alternates 0/1: bit0 unpredictable-ish, bit1 constant 0.
        The candidate set must stay within {0, 1}."""
        p = BitwiseBankPredictor(n_banks=4, confidence_floor=0.95)
        bank = 0
        for _ in range(200):
            p.update(0x100, bank)
            bank ^= 1
        candidates = p.predict_banks(0x100)
        assert set(candidates) <= {0, 1}

    def test_random_bit_duplicates(self):
        """A bank bit trained on noise hovers near the counter midpoint
        (low confidence), expanding the candidate set."""
        import random
        rng = random.Random(0)
        p = BitwiseBankPredictor(n_banks=4, confidence_floor=0.99)
        for _ in range(400):
            p.update(0x999, rng.randrange(4))
        # Across a window of queries the predictor must duplicate at
        # least sometimes (noise keeps counters unsaturated).
        widths = []
        for _ in range(20):
            p.update(0x999, rng.randrange(4))
            widths.append(len(p.predict_banks(0x999)))
        assert max(widths) >= 2

    def test_abstains_when_ambiguous(self):
        import random
        rng = random.Random(1)
        p = BitwiseBankPredictor(n_banks=4, confidence_floor=0.99)
        abstained = False
        for _ in range(300):
            p.update(0x999, rng.randrange(4))
            if p.predict(0x999).bank is None:
                abstained = True
        assert abstained

    def test_eight_banks(self):
        p = BitwiseBankPredictor(n_banks=8)
        for _ in range(16):
            p.update(0x100, bank=5)
        assert 5 in p.predict_banks(0x100)


class TestDuplicationCost:
    def test_expected_pipes_shrink_with_training(self):
        p = BitwiseBankPredictor(n_banks=4, confidence_floor=0.5)
        pcs = [0x100, 0x200]
        cold = expected_pipes_occupied(p, pcs)
        for _ in range(32):
            p.update(0x100, 2)
            p.update(0x200, 1)
        warm = expected_pipes_occupied(p, pcs)
        assert warm <= cold
        assert warm == pytest.approx(1.0)

    def test_empty_pc_list(self):
        assert expected_pipes_occupied(BitwiseBankPredictor(), []) == 0.0


class TestReset:
    def test_reset_restores_cold(self):
        p = BitwiseBankPredictor(n_banks=4)
        for _ in range(16):
            p.update(0x100, 3)
        p.reset()
        cold = BitwiseBankPredictor(n_banks=4)
        assert p.predict_banks(0x100) == cold.predict_banks(0x100)

    def test_storage_scales_with_bits(self):
        two = BitwiseBankPredictor(n_banks=2).storage_bits
        eight = BitwiseBankPredictor(n_banks=8).storage_bits
        assert eight == 3 * two
