"""Tests for the sliced-pipe duplication policy and simulator."""

import pytest

from repro.bank.address_based import AddressBankPredictor
from repro.bank.base import ABSTAIN, BankPrediction
from repro.bank.policy import DuplicationPolicy, SlicedPipeSimulator


class TestDuplicationPolicy:
    def test_abstention_duplicates(self):
        policy = DuplicationPolicy()
        assert policy.should_duplicate(ABSTAIN, contended=True)

    def test_low_confidence_duplicates(self):
        policy = DuplicationPolicy(confidence_floor=0.5,
                                   duplicate_when_uncontended=False)
        low = BankPrediction(bank=0, confidence=0.2)
        high = BankPrediction(bank=0, confidence=0.9)
        assert policy.should_duplicate(low, contended=True)
        assert not policy.should_duplicate(high, contended=True)

    def test_uncontended_duplicates(self):
        """Spare ports: send the load everywhere, never flush."""
        policy = DuplicationPolicy(duplicate_when_uncontended=True)
        confident = BankPrediction(bank=0, confidence=1.0)
        assert policy.should_duplicate(confident, contended=False)
        assert not policy.should_duplicate(confident, contended=True)


class TestSlicedPipeSimulator:
    def _stream(self, n=400, stride=64):
        """Perfectly stride-predictable loads from one PC."""
        return [(0x100, 0x1000 + i * stride) for i in range(n)]

    def test_accurate_predictor_approaches_half(self):
        sim = SlicedPipeSimulator(
            AddressBankPredictor(),
            DuplicationPolicy(duplicate_when_uncontended=False),
            contention_rate=1.0)
        result = sim.run(self._stream())
        # Warmup aside, most loads pair: metric near 1 (ideal 2x).
        assert result.metric > 0.8
        assert result.speedup_vs_single_port > 1.5

    def test_duplication_only_is_single_ported(self):
        class NeverPredict(AddressBankPredictor):
            def predict(self, pc):
                return ABSTAIN
        sim = SlicedPipeSimulator(NeverPredict(), contention_rate=1.0)
        result = sim.run(self._stream())
        assert result.duplicated == result.loads
        assert result.speedup_vs_single_port == pytest.approx(1.0)

    def test_mispredictions_cost(self):
        class WrongBank(AddressBankPredictor):
            def predict(self, pc):
                return BankPrediction(bank=0, confidence=1.0)
        # Stride 64 alternates banks: bank-0-always is wrong half the time.
        sim = SlicedPipeSimulator(
            WrongBank(),
            DuplicationPolicy(duplicate_when_uncontended=False),
            contention_rate=1.0, mispredict_penalty=3.0)
        result = sim.run(self._stream())
        assert result.mispredicted > 0
        assert result.metric < 0.5

    def test_contention_validation(self):
        with pytest.raises(ValueError):
            SlicedPipeSimulator(AddressBankPredictor(), contention_rate=1.5)

    def test_stats_recorded(self):
        sim = SlicedPipeSimulator(AddressBankPredictor(),
                                  contention_rate=1.0)
        sim.run(self._stream(100))
        assert sim.stats.loads == 100
