"""Tests for bank prediction: stats, history predictors, address adapter."""

import random

import pytest

from repro.bank.address_based import AddressBankPredictor
from repro.bank.base import ABSTAIN, BankPrediction, BankStats
from repro.bank.history import (
    HistoryBankPredictor,
    make_predictor_a,
    make_predictor_b,
    make_predictor_c,
)
from repro.predictors.bimodal import BimodalPredictor


class TestBankStats:
    def test_prediction_rate(self):
        s = BankStats()
        s.record(BankPrediction(bank=0), actual_bank=0)
        s.record(ABSTAIN, actual_bank=1)
        assert s.prediction_rate == pytest.approx(0.5)

    def test_accuracy_and_ratio(self):
        s = BankStats()
        for _ in range(3):
            s.record(BankPrediction(bank=1), actual_bank=1)
        s.record(BankPrediction(bank=0), actual_bank=1)
        assert s.accuracy == pytest.approx(0.75)
        assert s.ratio == pytest.approx(3.0)

    def test_ratio_infinite_when_perfect(self):
        s = BankStats()
        s.record(BankPrediction(bank=0), 0)
        assert s.ratio == float("inf")

    def test_merge(self):
        a, b = BankStats(), BankStats()
        a.record(BankPrediction(bank=0), 0)
        b.record(ABSTAIN, 0)
        a.merge(b)
        assert a.loads == 2 and a.predicted == 1

    def test_empty(self):
        s = BankStats()
        assert s.prediction_rate == 0.0 and s.accuracy == 0.0


class TestHistoryBankPredictor:
    def test_learns_constant_bank(self):
        p = HistoryBankPredictor([BimodalPredictor(64) for _ in range(3)],
                                 abstain_threshold=0.0)
        for _ in range(8):
            p.update(0x100, bank=1)
        assert p.predict(0x100).bank == 1

    def test_learns_alternating_banks(self):
        """Stride-64 array walks alternate banks — the common pattern."""
        p = make_predictor_a(abstain_threshold=0.0)
        pc = 0x100
        bank = 0
        for _ in range(200):
            p.update(pc, bank)
            bank ^= 1
        correct = 0
        for _ in range(40):
            pred = p.predict(pc)
            if pred.predicted and pred.bank == bank:
                correct += 1
            p.update(pc, bank)
            bank ^= 1
        assert correct >= 32

    def test_abstains_more_on_random_banks(self):
        """Abstention must rise when the bank stream is unpredictable.

        The absolute abstention rate is modest (2-bit counters give
        coarse confidence), so the property tested is relative: random
        streams abstain far more often than deterministic ones.
        """
        def abstentions(outcome_fn):
            p = make_predictor_a(abstain_threshold=0.9)
            pc = 0x100
            count = 0
            for i in range(300):
                if not p.predict(pc).predicted:
                    count += 1
                p.update(pc, outcome_fn(i))
            return count

        rng = random.Random(0)
        random_abstains = abstentions(lambda i: rng.randrange(2))
        alternating_abstains = abstentions(lambda i: i % 2)
        assert random_abstains > 30
        assert random_abstains > 3 * alternating_abstains

    def test_two_banks_only(self):
        p = make_predictor_a()
        with pytest.raises(ValueError):
            p.update(0x100, bank=2)

    def test_reset(self):
        p = make_predictor_b(abstain_threshold=0.0)
        for _ in range(8):
            p.update(0x100, 1)
        p.reset()
        cold = make_predictor_b(abstain_threshold=0.0)
        assert p.predict(0x100).bank == cold.predict(0x100).bank


class TestPaperConfigurations:
    def test_a_b_c_storage_budgets(self):
        """Components sized per section 4.3 (~0.5/0.5/0.75 KB)."""
        for maker in (make_predictor_a, make_predictor_b, make_predictor_c):
            assert maker().storage_bits < 4 * 8192  # well under 4KB total

    def test_c_predicts_more_than_a(self):
        """Predictor C trades accuracy for rate (the paper's contrast)."""
        rng = random.Random(1)
        a, c = make_predictor_a(), make_predictor_c()
        stats_a, stats_c = BankStats(), BankStats()
        pcs = [0x100 + 16 * i for i in range(8)]
        banks = {pc: 0 for pc in pcs}
        for step in range(2000):
            pc = rng.choice(pcs)
            # Half the PCs alternate deterministically, half are noisy.
            if pc % 32 == 0:
                bank = banks[pc] = banks[pc] ^ 1
            else:
                bank = rng.randrange(2)
            stats_a.record(a.predict(pc), bank)
            stats_c.record(c.predict(pc), bank)
            a.update(pc, bank)
            c.update(pc, bank)
        assert stats_c.prediction_rate > stats_a.prediction_rate


class TestAddressBankPredictor:
    def test_cold_abstains(self):
        assert not AddressBankPredictor().predict(0x100).predicted

    def test_constant_address(self):
        p = AddressBankPredictor()
        for _ in range(5):
            p.update(0x100, bank=1, address=0x40)
        pred = p.predict(0x100)
        assert pred.predicted and pred.bank == 1

    def test_strided_addresses(self):
        """Stride-64 loads alternate banks; the address predictor nails
        the *next* bank, not just the common one."""
        p = AddressBankPredictor()
        addr = 0x1000
        for _ in range(8):
            p.update(0x100, bank=(addr // 64) % 2, address=addr)
            addr += 64
        pred = p.predict(0x100)
        assert pred.predicted
        assert pred.bank == (addr // 64) % 2

    def test_requires_address_for_training(self):
        with pytest.raises(ValueError):
            AddressBankPredictor().update(0x100, bank=0, address=None)

    def test_bank_count_validation(self):
        with pytest.raises(ValueError):
            AddressBankPredictor(n_banks=3)

    def test_four_banks(self):
        p = AddressBankPredictor(n_banks=4)
        for _ in range(5):
            p.update(0x100, bank=3, address=0xC0)
        assert p.predict(0x100).bank == 3

    def test_reset(self):
        p = AddressBankPredictor()
        for _ in range(5):
            p.update(0x100, bank=1, address=0x40)
        p.reset()
        assert not p.predict(0x100).predicted
