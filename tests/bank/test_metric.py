"""Tests for the section 4.3 analytic metric."""

import pytest

from repro.bank.metric import (
    IDEAL_GAIN,
    accuracy_from_ratio,
    break_even_penalty,
    gain_per_load,
    load_execution_time,
    metric,
    metric_curve,
    ratio_from_accuracy,
)


class TestExactRelations:
    def test_perfect_predictor_halves_time(self):
        """P=1, R=inf-ish, penalty 0: each load takes 0.5 units."""
        t = load_execution_time(1.0, ratio=1e12, penalty=0.0)
        assert t == pytest.approx(0.5)

    def test_no_prediction_is_single_ported(self):
        assert load_execution_time(0.0, ratio=10.0, penalty=5.0) == 1.0

    def test_gain_complements_time(self):
        p, r, pen = 0.7, 20.0, 3.0
        assert gain_per_load(p, r, pen) == \
               pytest.approx(1.0 - load_execution_time(p, r, pen))

    def test_paper_identity_gain_formula(self):
        """GainPerLoad = P*(0.5R + 1 - Penalty)/(R+1) — the paper's form."""
        p, r, pen = 0.6, 15.0, 2.0
        expected = p * (0.5 * r + 1 - pen) / (r + 1)
        assert gain_per_load(p, r, pen) == pytest.approx(expected)

    def test_metric_is_normalised_gain(self):
        p, r, pen = 0.6, 15.0, 2.0
        assert metric(p, r, pen) == \
               pytest.approx(gain_per_load(p, r, pen) / IDEAL_GAIN)


class TestApproximateForm:
    def test_approximation_close_for_large_r(self):
        """Metric ~ P(1 - 2*Penalty/R) when R >> 1."""
        p, r, pen = 0.7, 100.0, 3.0
        exact = metric(p, r, pen)
        approx = metric(p, r, pen, approximate=True)
        assert abs(exact - approx) < 0.03

    def test_metric_at_zero_penalty_is_prediction_rate(self):
        """The Figure 12 reading: the intercept equals P."""
        for p in (0.3, 0.5, 0.9):
            assert metric(p, 50.0, 0.0, approximate=True) == pytest.approx(p)


class TestCurve:
    def test_monotone_decreasing_in_penalty(self):
        curve = metric_curve(0.7, 20.0, penalties=range(0, 11))
        values = [v for _, v in curve]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_slope_steeper_for_lower_accuracy(self):
        """Figure 12: 'the steeper the slope the less accurate'."""
        steep = metric_curve(0.7, 5.0, penalties=[0, 5])
        shallow = metric_curve(0.7, 50.0, penalties=[0, 5])
        drop_steep = steep[0][1] - steep[1][1]
        drop_shallow = shallow[0][1] - shallow[1][1]
        assert drop_steep > drop_shallow

    def test_high_accuracy_dominates_at_high_penalty(self):
        """The paper's design rule: high penalty demands accuracy even at
        a lower prediction rate."""
        low_acc_high_rate = metric(0.9, ratio_from_accuracy(0.90), 8.0)
        high_acc_low_rate = metric(0.6, ratio_from_accuracy(0.99), 8.0)
        assert high_acc_low_rate > low_acc_high_rate

    def test_crossover_exists(self):
        """At low penalty the high-rate predictor wins instead."""
        low_acc_high_rate = metric(0.9, ratio_from_accuracy(0.90), 0.0)
        high_acc_low_rate = metric(0.6, ratio_from_accuracy(0.99), 0.0)
        assert low_acc_high_rate > high_acc_low_rate


class TestConversions:
    def test_ratio_accuracy_roundtrip(self):
        for acc in (0.5, 0.9, 0.97):
            assert accuracy_from_ratio(ratio_from_accuracy(acc)) == \
                   pytest.approx(acc)

    def test_perfect_accuracy(self):
        assert ratio_from_accuracy(1.0) == float("inf")
        assert accuracy_from_ratio(float("inf")) == 1.0

    def test_break_even(self):
        """Metric hits zero at Penalty = R/2 (approximate form)."""
        r = 20.0
        pen = break_even_penalty(r)
        assert metric(0.7, r, pen, approximate=True) == pytest.approx(0.0)


class TestValidation:
    def test_bad_prediction_rate(self):
        with pytest.raises(ValueError):
            metric(1.5, 10.0, 0.0)

    def test_bad_ratio(self):
        with pytest.raises(ValueError):
            metric(0.5, 0.0, 0.0)

    def test_bad_accuracy(self):
        with pytest.raises(ValueError):
            ratio_from_accuracy(2.0)
