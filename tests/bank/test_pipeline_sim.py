"""Tests for the empirical Figure 4 pipeline comparison."""

import pytest

from repro.bank.address_based import AddressBankPredictor
from repro.bank.pipeline_sim import (
    PipeSimResult,
    compare_pipelines,
    simulate_pipeline,
)
from repro.memory.pipelines import (
    CONVENTIONAL_BANKED,
    DUAL_SCHEDULED,
    SLICED_BANKED,
    TRULY_MULTIPORTED,
)


def alternating_stream(n=200):
    """Perfectly pairable loads: banks alternate 0,1,0,1."""
    return [(0x100, 0x1000 + i * 64) for i in range(n)]


def same_bank_stream(n=200):
    """Worst case: every load hits bank 0."""
    return [(0x100, 0x1000 + i * 128) for i in range(n)]


class TestIdealPipe:
    def test_two_per_cycle(self):
        r = simulate_pipeline(TRULY_MULTIPORTED, alternating_stream(100))
        assert r.cycles == 50
        assert r.loads_per_cycle == pytest.approx(2.0)

    def test_base_latency_only(self):
        r = simulate_pipeline(TRULY_MULTIPORTED, alternating_stream(100),
                              base_latency=5)
        assert r.average_latency == pytest.approx(5.0)


class TestConventionalBanked:
    def test_conflicts_on_same_bank(self):
        r = simulate_pipeline(CONVENTIONAL_BANKED, same_bank_stream(100))
        assert r.conflicts > 0
        assert r.loads_per_cycle < 1.5

    def test_no_conflicts_on_alternating(self):
        r = simulate_pipeline(CONVENTIONAL_BANKED, alternating_stream(100))
        assert r.conflicts == 0
        assert r.loads_per_cycle == pytest.approx(2.0)

    def test_crossbar_latency(self):
        r = simulate_pipeline(CONVENTIONAL_BANKED, alternating_stream(100),
                              base_latency=5)
        assert r.average_latency == pytest.approx(7.0)  # +2 crossbar


class TestDualScheduled:
    def test_never_conflicts(self):
        r = simulate_pipeline(DUAL_SCHEDULED, same_bank_stream(100))
        assert r.conflicts == 0

    def test_pairs_when_possible(self):
        r = simulate_pipeline(DUAL_SCHEDULED, alternating_stream(100))
        assert r.loads_per_cycle == pytest.approx(2.0)

    def test_second_scheduler_latency(self):
        r = simulate_pipeline(DUAL_SCHEDULED, alternating_stream(100))
        assert r.average_latency == pytest.approx(7.0)


class TestSlicedPipe:
    def test_requires_predictor(self):
        with pytest.raises(ValueError):
            simulate_pipeline(SLICED_BANKED, alternating_stream(10))

    def test_ideal_latency_when_predicted(self):
        r = simulate_pipeline(SLICED_BANKED, alternating_stream(400),
                              predictor=AddressBankPredictor())
        # Warmup duplications aside, steered loads see base latency.
        assert r.average_latency < 5.5
        assert r.flushes <= 2

    def test_throughput_approaches_ideal_on_predictable_stream(self):
        r = simulate_pipeline(SLICED_BANKED, alternating_stream(400),
                              predictor=AddressBankPredictor())
        assert r.loads_per_cycle > 1.6

    def test_counts_duplications(self):
        """Cold predictor start duplicates the first few loads."""
        r = simulate_pipeline(SLICED_BANKED, alternating_stream(50),
                              predictor=AddressBankPredictor())
        assert r.duplicated >= 1


class TestComparison:
    def test_all_four_present(self):
        out = compare_pipelines(alternating_stream(100),
                                AddressBankPredictor)
        assert set(out) == {"truly-multiported", "conventional-banked",
                            "dual-scheduled", "sliced-banked"}

    def test_all_drain_every_load(self):
        stream = alternating_stream(150)
        out = compare_pipelines(stream, AddressBankPredictor)
        for name, r in out.items():
            assert r.loads == 150, name

    def test_figure4_latency_ordering(self):
        """The sliced pipe's selling point: ideal latency; the other
        banked organisations pay extra pipeline stages."""
        out = compare_pipelines(alternating_stream(400),
                                AddressBankPredictor)
        sliced = out["sliced-banked"].average_latency
        assert sliced < out["conventional-banked"].average_latency
        assert sliced < out["dual-scheduled"].average_latency

    def test_ideal_dominates_throughput(self):
        out = compare_pipelines(same_bank_stream(200),
                                AddressBankPredictor)
        ideal = out["truly-multiported"].loads_per_cycle
        for name, r in out.items():
            assert r.loads_per_cycle <= ideal + 1e-9, name
