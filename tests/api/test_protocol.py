"""LoadPredictor protocol conformance and the family adapters."""

import pytest

from repro.api import build_predictor, spec_for
from repro.api.adapters import (
    BankLoadPredictor,
    CollisionLoadPredictor,
    HitMissLoadPredictor,
    as_load_predictor,
)
from repro.common.types import LoadPredictor
from repro.predictors.base import AlwaysPredictor


def test_binary_predictors_conform_verbatim():
    for kind in ("binary.always", "binary.bimodal", "binary.local",
                 "binary.gshare", "binary.gskew"):
        predictor = build_predictor(spec_for(kind))
        assert isinstance(predictor, LoadPredictor)
        assert as_load_predictor(predictor) is predictor


def test_cht_adapter():
    wrapped = as_load_predictor(build_predictor(
        spec_for("cht.tagless", size=64)))
    assert isinstance(wrapped, CollisionLoadPredictor)
    assert isinstance(wrapped, LoadPredictor)
    assert wrapped.predict(0x40).outcome is False
    for _ in range(4):
        wrapped.update(0x40, True)
    assert wrapped.predict(0x40).outcome is True


def test_hitmiss_adapter_outcome_is_miss():
    hmp = build_predictor(spec_for("hmp.local", size=64, history=2))
    wrapped = as_load_predictor(hmp)
    assert isinstance(wrapped, HitMissLoadPredictor)
    assert isinstance(wrapped, LoadPredictor)
    for _ in range(8):
        wrapped.update(0x40, True)  # persistent misses
    assert wrapped.predict(0x40).outcome is True
    assert hmp.predict_hit(0x40) is False  # inverted view agrees


def test_bank_adapter_tracks_trained_bank():
    pred = build_predictor(spec_for("bank.a"))
    wrapped = as_load_predictor(pred)
    assert isinstance(wrapped, BankLoadPredictor)
    assert isinstance(wrapped, LoadPredictor)
    for _ in range(32):
        wrapped.update(0x40, True)
    p = wrapped.predict(0x40)
    assert p.valid and p.outcome is True


def test_bank_adapter_maps_abstention():
    from repro.bank.base import BankPrediction, BankPredictor

    class Abstainer:
        n_banks = 2

        def predict(self, pc):
            return BankPrediction(bank=None, confidence=0.0)

        def update(self, pc, bank, address=None):
            pass

    BankPredictor.register(Abstainer)
    wrapped = as_load_predictor(Abstainer())
    assert wrapped.predict(0x40).valid is False


def test_bank_adapter_rejects_many_banks():
    class FourBank:
        n_banks = 4

    from repro.bank.base import BankPredictor
    BankPredictor.register(FourBank)
    with pytest.raises(ValueError, match="two-bank"):
        as_load_predictor(FourBank())


def test_as_load_predictor_rejects_strangers():
    with pytest.raises(TypeError):
        as_load_predictor(object())


def test_protocol_is_runtime_checkable_structurally():
    class Duck:
        def predict(self, pc):
            return AlwaysPredictor(outcome=True).predict(pc)

        def update(self, pc, outcome):
            pass

    assert isinstance(Duck(), LoadPredictor)
    assert as_load_predictor(Duck()).predict(0).valid is True
