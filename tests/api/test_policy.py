"""ExecutionPolicy: validation, JSON round trip, legacy shims.

The policy object is the single "how should this run" value the whole
stack now accepts (Machine.run, PredictionService, ServeFleet, the
bench CLIs).  These tests pin the contract pieces the rest of the repo
leans on: frozen-ness, strict JSON round trip, the pure
``from_legacy`` mapping (pickle-equal to explicit construction, per
the PR 5 shim discipline), and ``coerce_policy``'s deprecation
behaviour for callers still passing ``backend=`` strings.
"""

import json
import pickle

import pytest

from repro.api import ExecutionPolicy
from repro.api.policy import coerce_policy, legacy_policy
from repro.serve.config import ServeConfig


# -- construction and validation -----------------------------------------


def test_defaults_are_the_deferred_modes():
    policy = ExecutionPolicy()
    assert policy.backend == "auto"
    assert policy.check_invariants == "auto"
    assert policy.hottrace is False


def test_frozen():
    policy = ExecutionPolicy()
    with pytest.raises(Exception):
        policy.backend = "vectorized"


def test_replace_returns_modified_copy():
    base = ExecutionPolicy()
    fast = base.replace(backend="vectorized", hottrace=True)
    assert fast.backend == "vectorized" and fast.hottrace
    assert base.backend == "auto" and not base.hottrace


@pytest.mark.parametrize("bad", [
    {"backend": "cuda"},
    {"check_invariants": "maybe"},
    {"hot_threshold": 0},
    {"min_trace_len": 0},
    {"max_traces": 0},
])
def test_validation_rejects(bad):
    with pytest.raises(ValueError):
        ExecutionPolicy(**bad)


@pytest.mark.parametrize("bad", [
    # A malformed --policy JSON must fail loudly, not misconfigure the
    # serve tier via truthiness: "no" is NOT an enabled hottrace.
    {"hottrace": "no"},
    {"hottrace": "true"},
    {"hottrace": 2},
    {"hot_threshold": "3"},
    {"hot_threshold": 2.5},
    {"min_trace_len": True},
    {"max_traces": "512"},
])
def test_validation_rejects_wrong_types(bad):
    with pytest.raises(ValueError):
        ExecutionPolicy(**bad)


def test_json_zero_one_coerce_to_bool():
    # Hand-written JSON often spells booleans 0/1; that stays legal.
    assert ExecutionPolicy.from_json('{"hottrace": 1}').hottrace is True
    assert ExecutionPolicy.from_json('{"hottrace": 0}').hottrace is False


# -- JSON round trip ------------------------------------------------------


@pytest.mark.parametrize("policy", [
    ExecutionPolicy(),
    ExecutionPolicy(backend="vectorized", hottrace=True),
    ExecutionPolicy(backend="reference", hot_threshold=1,
                    min_trace_len=4, max_traces=7,
                    check_invariants="on"),
])
def test_json_round_trip(policy):
    assert ExecutionPolicy.from_json(policy.to_json()) == policy
    # And via the dict form, which the serve stats/report embedding
    # uses.
    assert ExecutionPolicy.from_json_dict(policy.to_json_dict()) == policy


def test_to_json_is_plain_sorted_json():
    text = ExecutionPolicy().to_json()
    data = json.loads(text)
    assert data["backend"] == "auto"
    assert list(data) == sorted(data)


def test_from_json_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown ExecutionPolicy"):
        ExecutionPolicy.from_json('{"backend": "auto", "turbo": true}')


def test_partial_json_fills_defaults():
    policy = ExecutionPolicy.from_json('{"hottrace": true}')
    assert policy == ExecutionPolicy(hottrace=True)


# -- legacy mapping + pickle equality (the shim contract) -----------------


def test_from_legacy_is_pickle_equal_to_explicit():
    pairs = [
        (ExecutionPolicy.from_legacy(), ExecutionPolicy()),
        (ExecutionPolicy.from_legacy(backend="vectorized"),
         ExecutionPolicy(backend="vectorized")),
        (ExecutionPolicy.from_legacy(check_invariants=True),
         ExecutionPolicy(check_invariants="on")),
        (ExecutionPolicy.from_legacy(check_invariants=False),
         ExecutionPolicy(check_invariants="off")),
    ]
    for shimmed, explicit in pairs:
        assert shimmed == explicit
        assert pickle.dumps(shimmed) == pickle.dumps(explicit)


def test_policy_survives_pickle():
    # The fleet ships the policy to worker subprocesses inside the
    # pickled ServeConfig frame.
    policy = ExecutionPolicy(backend="reference", hottrace=True,
                             hot_threshold=2)
    assert pickle.loads(pickle.dumps(policy)) == policy


def test_legacy_policy_warns_and_maps():
    with pytest.warns(DeprecationWarning, match="Machine.run"):
        policy = legacy_policy("vectorized", "Machine.run")
    assert policy == ExecutionPolicy(backend="vectorized")


def test_coerce_policy_passthrough_and_default():
    explicit = ExecutionPolicy(hottrace=True)
    assert coerce_policy(explicit, None, "owner") is explicit
    assert coerce_policy(None, None, "owner") == ExecutionPolicy()


def test_coerce_policy_lone_backend_warns():
    with pytest.warns(DeprecationWarning, match="deprecated"):
        policy = coerce_policy(None, "reference", "owner")
    assert policy == ExecutionPolicy(backend="reference")


def test_coerce_policy_rejects_both():
    with pytest.raises(ValueError, match="not both"):
        coerce_policy(ExecutionPolicy(), "reference", "owner")


# -- deferred resolution --------------------------------------------------


def test_resolved_backend_explicit_reference():
    assert ExecutionPolicy(
        backend="reference").resolved_backend() == "reference"


def test_resolved_backend_auto_follows_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "reference")
    assert ExecutionPolicy().resolved_backend() == "reference"


def test_invariants_active_modes(monkeypatch):
    assert ExecutionPolicy(check_invariants="on").invariants_active()
    assert not ExecutionPolicy(check_invariants="off").invariants_active()
    monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
    assert not ExecutionPolicy().invariants_active()
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    assert ExecutionPolicy().invariants_active()
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
    assert not ExecutionPolicy().invariants_active()


# -- ServeConfig interplay ------------------------------------------------


def test_serve_config_rejects_policy_plus_backend():
    with pytest.raises(ValueError, match="not both"):
        ServeConfig(policy=ExecutionPolicy(), backend="reference")


def test_serve_config_with_policy_clears_backend():
    config = ServeConfig(backend="reference")
    policy = ExecutionPolicy(backend="vectorized", hottrace=True)
    updated = config.with_policy(policy)
    assert updated.policy is policy and updated.backend is None
    assert updated.effective_policy() is policy
    assert updated.backend_arg() == "vectorized"


def test_serve_config_with_backend_clears_policy():
    config = ServeConfig(policy=ExecutionPolicy(backend="vectorized"))
    updated = config.with_backend("reference")
    assert updated.policy is None and updated.backend == "reference"
    assert updated.effective_policy() == ExecutionPolicy(
        backend="reference")


def test_serve_config_effective_policy_legacy_mapping():
    # backend=None -> the deferred default chain, identical to a
    # default-constructed policy.
    assert ServeConfig().effective_policy() == ExecutionPolicy()
    assert ServeConfig().backend_arg() is None
    legacy = ServeConfig(backend="reference")
    assert legacy.effective_policy() == ExecutionPolicy(
        backend="reference")
    assert legacy.backend_arg() == "reference"
