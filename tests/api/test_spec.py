"""PredictorSpec: normalisation, serialisation, cache keys, building."""

import json

import pytest

from repro.api import (
    PredictorSpec,
    SERVABLE_FAMILIES,
    UnknownKindError,
    build_predictor,
    kind_info,
    registered_kinds,
    spec_for,
)


def test_registry_covers_every_family():
    families = {kind_info(k).family for k in registered_kinds()}
    for family in SERVABLE_FAMILIES:
        assert family in families
    # The paper's three predictor classes plus the binary substrate.
    assert {"cht.tagless", "cht.tagged", "cht.full", "cht.combined",
            "cht.storesets", "hmp.local", "hmp.hybrid", "bank.a",
            "bank.b", "bank.c", "bank.address",
            "binary.gshare"} <= set(registered_kinds())


def test_unknown_kind_raises():
    with pytest.raises(UnknownKindError):
        spec_for("cht.quantum")


def test_unknown_param_raises():
    with pytest.raises(TypeError, match="bogus"):
        spec_for("cht.tagless", bogus=3)


def test_defaults_are_normalised_in():
    spec = spec_for("cht.tagless")
    assert spec.params_dict == kind_info("cht.tagless").defaults_dict
    # Passing a default explicitly produces the *same* spec.
    assert spec == spec_for("cht.tagless", size=4096)


def test_param_order_does_not_matter():
    a = spec_for("cht.full", size=256, ways=2)
    b = spec_for("cht.full", ways=2, size=256)
    assert a == b
    assert a.cache_key() == b.cache_key()
    assert hash(a) == hash(b)


def test_json_round_trip():
    spec = spec_for("hmp.hybrid", local_size=256)
    again = PredictorSpec.from_json(spec.to_json())
    assert again == spec
    payload = json.loads(spec.to_json())
    assert payload["kind"] == "hmp.hybrid"
    assert payload["params"]["local_size"] == 256


def test_every_registered_kind_round_trips_and_builds():
    for kind in registered_kinds():
        spec = spec_for(kind)
        assert PredictorSpec.from_json(spec.to_json()) == spec
        predictor = build_predictor(spec)
        assert predictor is not None
        # build_predictor stamps the constructing spec on the object.
        assert predictor.spec == spec


def test_trivial_predictors_round_trip_through_spec():
    """AlwaysPredictor & friends (no table state) survive the spec
    serialisation cycle and still behave identically."""
    for kind, probe in (("binary.always", lambda p: p.predict(0).outcome),
                        ("cht.never", lambda p: p.lookup(0).colliding),
                        ("cht.always", lambda p: p.lookup(0).colliding),
                        ("hmp.always-hit", lambda p: p.predict_hit(0)),
                        ("hmp.always-miss", lambda p: p.predict_hit(0))):
        spec = spec_for(kind)
        rebuilt = build_predictor(PredictorSpec.from_json(spec.to_json()))
        assert probe(rebuilt) == probe(build_predictor(spec))


def test_always_predictor_outcome_param():
    assert build_predictor(
        spec_for("binary.always", outcome=True)).predict(0).outcome is True
    assert build_predictor(
        spec_for("binary.always")).predict(0).outcome is False


def test_cache_key_is_stable_and_distinct():
    a = spec_for("cht.tagless", size=2048)
    assert a.cache_key() == spec_for("cht.tagless", size=2048).cache_key()
    assert a.cache_key() != spec_for("cht.tagless", size=4096).cache_key()
    assert a.cache_key() != spec_for("cht.tagged", size=2048).cache_key()
    # Keys come from the shared envelope rules: hex SHA-256.
    assert len(a.cache_key()) == 64
    int(a.cache_key(), 16)


def test_cache_material_binds_schema():
    from repro.parallel.cache import key_material
    spec = spec_for("bank.a")
    assert spec.cache_material() == key_material("predictor-spec",
                                                 spec.to_json_dict())


def test_backend_passthrough():
    ref = build_predictor(spec_for("binary.bimodal"), backend="reference")
    vec = build_predictor(spec_for("binary.bimodal"), backend="vectorized")
    assert ref.backend == "reference"
    assert vec.backend == "vectorized"


def test_spec_build_method_matches_build_predictor():
    spec = spec_for("hmp.local", size=128)
    assert type(spec.build()) is type(build_predictor(spec))


def test_params_restricted_to_json_scalars():
    with pytest.raises(TypeError):
        spec_for("cht.tagless", size=[1, 2])
