"""Legacy-kwargs shims: every shim warns and maps to the same spec."""

import pickle

import pytest

from repro.api import build_predictor, spec_for
from repro.api.shims import LEGACY_KINDS, SHIMS, legacy_spec

#: Representative old-style kwargs per legacy constructor, exercising
#: every mapped keyword at a non-default value where possible.
LEGACY_CALLS = {
    "AlwaysPredictor": {"outcome": True},
    "BimodalPredictor": {"n_entries": 512, "counter_bits": 3},
    "LocalPredictor": {"n_entries": 1024, "history_bits": 6,
                       "counter_bits": 2},
    "GSharePredictor": {"history_bits": 9, "counter_bits": 2},
    "GSkewPredictor": {"history_bits": 12, "bank_entries": 512,
                       "counter_bits": 2},
    "TaglessCHT": {"n_entries": 2048, "counter_bits": 2,
                   "track_distance": True},
    "TaggedOnlyCHT": {"n_entries": 512, "ways": 2, "tag_bits": 12},
    "FullCHT": {"n_entries": 1024, "ways": 2, "counter_bits": 1},
    "CombinedCHT": {"tagged_entries": 512, "ways": 2,
                    "tagless_entries": 2048, "mode": "safe"},
    "StoreSetPredictor": {"ssit_entries": 2048, "lfst_entries": 512},
    "LocalHMP": {"n_entries": 1024, "history_bits": 4},
    "HybridHMP": {"local_entries": 256, "gshare_history": 4},
    "make_predictor_a": {"abstain_threshold": 0.8},
    "make_predictor_b": {},
    "make_predictor_c": {"abstain_threshold": 0.7},
    "AddressBankPredictor": {"n_banks": 2, "line_bytes": 32},
}


def test_every_legacy_kind_has_a_shim_and_a_call():
    assert set(SHIMS) == set(LEGACY_KINDS) == set(LEGACY_CALLS)


@pytest.mark.parametrize("name", sorted(LEGACY_KINDS))
def test_shim_warns_and_maps_to_equivalent_spec(name):
    kwargs = LEGACY_CALLS[name]
    expected = legacy_spec(name, kwargs)
    with pytest.warns(DeprecationWarning, match=expected.kind):
        predictor = SHIMS[name](**kwargs)
    # The shim constructed through the registry: same spec, and the
    # object is bit-identical (state-wise) to a direct spec build.
    assert predictor.spec == expected
    direct = build_predictor(expected)
    assert type(predictor) is type(direct)
    assert pickle.dumps(predictor) == pickle.dumps(direct)


@pytest.mark.parametrize("name", sorted(LEGACY_KINDS))
def test_legacy_defaults_equal_spec_defaults(name):
    """Calling a shim with *no* kwargs lands on the registry defaults —
    the old constructor defaults and the spec defaults are one set."""
    kind, _ = LEGACY_KINDS[name]
    assert legacy_spec(name, {}) == spec_for(kind)


def test_legacy_spec_rejects_unknown_kwargs():
    with pytest.raises(TypeError, match="unexpected keyword"):
        legacy_spec("TaglessCHT", {"n_rows": 4})


def test_legacy_spec_rejects_unknown_constructor():
    with pytest.raises(KeyError, match="no legacy mapping"):
        legacy_spec("FancyCHT", {})


def test_shim_equivalence_table_is_total():
    """Every mapped old kwarg names a real spec param of its kind."""
    from repro.api import kind_info
    for name, (kind, kwarg_map) in LEGACY_KINDS.items():
        defaults = kind_info(kind).defaults_dict
        for old, new in kwarg_map.items():
            assert new in defaults, (name, old, new)
