"""Shared pieces of the differential-equivalence harness.

The contract every test here enforces: a batch kernel must be
*bit-identical* to the scalar reference — same prediction stream, same
confidences (exact float equality), same table/counter/history state
afterwards.  Anything weaker would let the vectorized backend silently
drift the figures.
"""

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.chooser import MajorityChooser, WeightedChooser
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor


def predictor_state(predictor):
    """Full mutable state of a predictor tree, as plain data."""
    if isinstance(predictor, BimodalPredictor):
        return [c.value for c in predictor._table]
    if isinstance(predictor, LocalPredictor):
        return (list(predictor._histories),
                [c.value for c in predictor._pattern])
    if isinstance(predictor, GSharePredictor):
        return (predictor._history, [c.value for c in predictor._table])
    if isinstance(predictor, GSkewPredictor):
        return (predictor._history,
                [[c.value for c in bank] for bank in predictor._banks])
    if isinstance(predictor, (MajorityChooser, WeightedChooser)):
        return [predictor_state(c) for c in predictor.components]
    raise TypeError(f"no state extractor for {type(predictor).__name__}")


def scalar_binary_replay(predictor, pcs, outcomes):
    """The reference predict→update loop over a (pc, outcome) stream."""
    outs, confs = [], []
    for pc, outcome in zip(pcs, outcomes):
        p = predictor.predict(pc)
        outs.append(p.outcome)
        confs.append(p.confidence)
        predictor.update(pc, outcome)
    return outs, confs
