"""Differential equivalence: bank predictor batch replay vs. scalar."""

import pytest

from repro.bank.address_based import AddressBankPredictor
from repro.bank.history import (
    HistoryBankPredictor,
    make_predictor_a,
    make_predictor_b,
    make_predictor_c,
)
from repro.experiments.bank_metric import LINE_BYTES, N_BANKS, evaluate
from repro.fastpath import bank as fp_bank
from repro.fastpath.tracegen import synthesize_bank_grid
from repro.predictors.bimodal import BimodalPredictor

from tests.fastpath.helpers import predictor_state

MAKERS = {
    "A": make_predictor_a,
    "B": make_predictor_b,
    "C": make_predictor_c,
}


@pytest.mark.parametrize("label", sorted(MAKERS))
@pytest.mark.parametrize("seed", (61, 62))
def test_stats_and_state_identical(label, seed):
    stream = synthesize_bank_grid(seed, 3000)
    reference = MAKERS[label](backend="reference")
    vectorized = MAKERS[label](backend="vectorized")
    ref_stats = evaluate(reference, stream)
    vec_stats = evaluate(vectorized, stream)
    assert (vec_stats.loads, vec_stats.predicted, vec_stats.correct) \
        == (ref_stats.loads, ref_stats.predicted, ref_stats.correct)
    assert predictor_state(vectorized._chooser) \
        == predictor_state(reference._chooser)


def test_prediction_stream_identical_including_abstains():
    stream = synthesize_bank_grid(63, 2500)
    reference = make_predictor_a(backend="reference")
    vectorized = make_predictor_a(backend="vectorized")
    expected = []
    for pc, address in stream:
        bank = (address // LINE_BYTES) % N_BANKS
        p = reference.predict(pc)
        expected.append(p.bank if p.predicted else -1)
        reference.update(pc, bank)
    pcs, banks = fp_bank.stream_arrays(stream, LINE_BYTES, N_BANKS)
    got = fp_bank.replay_banks(vectorized, pcs, banks)
    assert got.tolist() == expected
    # The abstain channel must actually be exercised by the grid.
    assert -1 in expected and (0 in expected or 1 in expected)


def test_abstain_threshold_respected():
    stream = synthesize_bank_grid(64, 1500)
    never = HistoryBankPredictor([BimodalPredictor(n_entries=64)],
                                 abstain_threshold=2.0,
                                 backend="vectorized")
    stats = evaluate(never, stream)
    assert stats.loads == len(stream) and stats.predicted == 0
    always = HistoryBankPredictor([BimodalPredictor(n_entries=64)],
                                  abstain_threshold=0.0,
                                  backend="vectorized")
    reference = HistoryBankPredictor([BimodalPredictor(n_entries=64)],
                                     abstain_threshold=0.0,
                                     backend="reference")
    assert evaluate(always, stream).as_dict() \
        == evaluate(reference, stream).as_dict()


def test_address_predictor_keeps_scalar_path():
    # AddressBankPredictor trains on addresses, which the batch kernel
    # does not model; it must not be claimed by supports().
    predictor = AddressBankPredictor()
    assert not fp_bank.supports(predictor)
    stream = synthesize_bank_grid(65, 400)
    stats = evaluate(predictor, stream)
    assert stats.loads == len(stream)
