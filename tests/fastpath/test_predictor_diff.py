"""Differential equivalence: batch predictor replay vs. the scalar loop.

Every kernel must reproduce the scalar predict→update loop *exactly*:
prediction stream, confidence stream (exact float equality), and the
complete post-replay table/history state, across seeded workload grids
and across chunk boundaries.
"""

import numpy as np
import pytest

from repro.fastpath import predictors as fp
from repro.fastpath.tracegen import synthesize_outcome_grid
from repro.predictors.base import AlwaysPredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.chooser import MajorityChooser, WeightedChooser
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor

from tests.fastpath.helpers import predictor_state, scalar_binary_replay

FACTORIES = {
    "bimodal": lambda: BimodalPredictor(n_entries=256),
    "bimodal-1bit": lambda: BimodalPredictor(n_entries=64, counter_bits=1),
    "bimodal-3bit": lambda: BimodalPredictor(n_entries=128, counter_bits=3),
    "local": lambda: LocalPredictor(n_entries=128, history_bits=6),
    "local-wide": lambda: LocalPredictor(n_entries=64, history_bits=10,
                                         pattern_entries=256),
    "gshare": lambda: GSharePredictor(history_bits=7),
    "gshare-paper": lambda: GSharePredictor(history_bits=11),
    "gskew": lambda: GSkewPredictor(history_bits=9, bank_entries=128),
    "gskew-paper": lambda: GSkewPredictor(history_bits=17,
                                          bank_entries=1024),
    "majority": lambda: MajorityChooser([
        LocalPredictor(n_entries=64, history_bits=5),
        GSharePredictor(history_bits=6),
        GSkewPredictor(history_bits=8, bank_entries=64),
    ]),
    "weighted": lambda: WeightedChooser([
        LocalPredictor(n_entries=64, history_bits=5),
        GSharePredictor(history_bits=6),
        BimodalPredictor(n_entries=128),
    ], weights=[1.0, 2.0, 1.0], confidence_scaled=True),
}

GRID_SEEDS = (11, 12, 13)


@pytest.mark.parametrize("label", sorted(FACTORIES))
@pytest.mark.parametrize("seed", GRID_SEEDS)
def test_replay_bit_identical(label, seed):
    pcs, outcomes = synthesize_outcome_grid(seed, 3000)
    reference = FACTORIES[label]()
    vectorized = FACTORIES[label]()
    exp_out, exp_conf = scalar_binary_replay(reference, pcs, outcomes)
    got_out, got_conf = fp.replay(vectorized, pcs, outcomes)
    assert got_out.tolist() == exp_out
    assert got_conf.tolist() == exp_conf  # exact float equality
    assert predictor_state(vectorized) == predictor_state(reference)


@pytest.mark.parametrize("batch_size", [1, 7, 256, 100000])
def test_chunking_is_invisible(batch_size):
    # Cross-batch state (histories, counters) must flow through the
    # predictor object so any chunk size gives the same answer.
    pcs, outcomes = synthesize_outcome_grid(21, 1500)
    reference = FACTORIES["gshare"]()
    vectorized = FACTORIES["gshare"]()
    exp_out, exp_conf = scalar_binary_replay(reference, pcs, outcomes)
    got_out, got_conf = fp.replay(vectorized, pcs, outcomes,
                                  batch_size=batch_size)
    assert got_out.tolist() == exp_out
    assert got_conf.tolist() == exp_conf
    assert predictor_state(vectorized) == predictor_state(reference)


def test_replay_resumes_scalar_use_exactly():
    # Batch then scalar must equal scalar all the way.
    pcs, outcomes = synthesize_outcome_grid(31, 1200)
    split = 700
    reference = FACTORIES["local"]()
    mixed = FACTORIES["local"]()
    scalar_binary_replay(reference, pcs[:split], outcomes[:split])
    fp.replay(mixed, pcs[:split], outcomes[:split])
    tail_ref = scalar_binary_replay(reference, pcs[split:], outcomes[split:])
    tail_mix = scalar_binary_replay(mixed, pcs[split:], outcomes[split:])
    assert tail_mix == tail_ref
    assert predictor_state(mixed) == predictor_state(reference)


def test_empty_stream_is_identity():
    predictor = FACTORIES["gskew"]()
    before = predictor_state(predictor)
    out, conf = fp.replay(predictor, np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=bool))
    assert len(out) == 0 and len(conf) == 0
    assert predictor_state(predictor) == before


class TestSupports:
    def test_leaf_and_chooser_trees(self):
        assert fp.supports(BimodalPredictor(n_entries=16))
        assert fp.supports(FACTORIES["majority"]())
        assert fp.supports(FACTORIES["weighted"]())

    def test_unsupported_component_rejected(self):
        assert not fp.supports(AlwaysPredictor(True))
        chooser = MajorityChooser([AlwaysPredictor(True),
                                   AlwaysPredictor(False),
                                   BimodalPredictor(n_entries=16)])
        assert not fp.supports(chooser)
        with pytest.raises(TypeError):
            fp.replay(AlwaysPredictor(True), [1], [True])

    def test_subclasses_fall_back_to_reference(self):
        # A subclass may override semantics; only exact types match.
        class Tweaked(BimodalPredictor):
            pass

        assert not fp.supports(Tweaked(n_entries=16))
