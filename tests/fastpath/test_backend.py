"""Backend selection: env var, default, context manager, degradation."""

import pytest

from repro.fastpath import backend as bk
from repro.predictors.bimodal import BimodalPredictor


class TestResolution:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setattr(bk, "_default", None)
        assert bk.default_backend() == "reference"
        assert bk.resolve_backend(None) == "reference"

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setattr(bk, "_default", None)
        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        assert bk.default_backend() == "vectorized"

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        monkeypatch.setattr(bk, "_default", None)
        bk.set_default_backend("vectorized")
        try:
            assert bk.default_backend() == "vectorized"
        finally:
            bk._default = None

    def test_use_backend_restores(self):
        before = bk.default_backend()
        with bk.use_backend("vectorized"):
            assert bk.default_backend() == "vectorized"
        assert bk.default_backend() == before

    def test_explicit_argument_wins(self):
        with bk.use_backend("vectorized"):
            assert bk.resolve_backend("reference") == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            bk.resolve_backend("cuda")
        with pytest.raises(ValueError):
            bk.set_default_backend("")

    def test_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(bk, "HAS_NUMPY", False)
        assert bk.resolve_backend("vectorized") == "reference"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setattr(bk, "_default", None)
        monkeypatch.setenv("REPRO_BACKEND", "simd")
        with pytest.raises(ValueError):
            bk.default_backend()


class TestClassPickup:
    @pytest.fixture(autouse=True)
    def _clean_default(self, monkeypatch):
        # Neutralise any REPRO_BACKEND the invoking shell exported so
        # these assertions see the documented out-of-the-box default.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setattr(bk, "_default", None)

    def test_constructor_stores_resolved_backend(self):
        assert BimodalPredictor().backend == "reference"
        assert BimodalPredictor(backend="vectorized").backend == "vectorized"

    def test_default_pickup_via_context(self):
        with bk.use_backend("vectorized"):
            assert BimodalPredictor().backend == "vectorized"
        assert BimodalPredictor().backend == "reference"

    def test_scalar_api_identical_across_backends(self):
        ref = BimodalPredictor(n_entries=64, backend="reference")
        vec = BimodalPredictor(n_entries=64, backend="vectorized")
        for pc in range(0, 4096, 4):
            outcome = (pc // 64) % 3 == 0
            assert ref.predict(pc) == vec.predict(pc)
            ref.update(pc, outcome)
            vec.update(pc, outcome)
        assert [c.value for c in ref._table] == [c.value for c in vec._table]
