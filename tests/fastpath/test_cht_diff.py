"""Differential equivalence: tagless CHT batch replay vs. scalar."""

import numpy as np
import pytest

from repro.cht.tagless import TaglessCHT
from repro.experiments.cht_accuracy import LoadEvent, replay
from repro.fastpath.cht import event_arrays, tagless_replay
from repro.fastpath.tracegen import synthesize_collision_grid


def _events(seed, n=4000):
    pcs, conflicting, collided, distances = synthesize_collision_grid(seed, n)
    return [LoadEvent(pc=pc, conflicting=cf, collided=co, distance=d)
            for pc, cf, co, d in zip(pcs, conflicting, collided, distances)]


def _cht_state(cht):
    return ([c.value for c in cht._counters], list(cht._distances))


class TestKernel:
    @pytest.mark.parametrize("seed", (41, 42))
    @pytest.mark.parametrize("counter_bits", (1, 2))
    def test_lookup_stream_and_state_identical(self, seed, counter_bits):
        events = _events(seed)
        reference = TaglessCHT(n_entries=512, counter_bits=counter_bits,
                               backend="reference")
        vectorized = TaglessCHT(n_entries=512, counter_bits=counter_bits,
                                backend="vectorized")
        expected = []
        for event in events:
            expected.append(reference.lookup(event.pc).colliding)
            reference.train(event.pc, event.collided,
                            event.distance if event.collided else None)
        pcs, _, collided, distances = event_arrays(events)
        got = tagless_replay(vectorized, pcs, collided, distances)
        assert got.tolist() == expected
        assert _cht_state(vectorized) == _cht_state(reference)

    def test_distance_sidecar_min_update_and_reset(self):
        # Alternating collide/clear traffic exercises both sidecar
        # branches (min-update and the reset-on-not-predicting).
        pcs = [0x40, 0x40, 0x80, 0x40, 0x80, 0x80, 0x40]
        collided = [True, True, True, False, False, True, False]
        distances = [9, 4, 7, 0, 0, 2, 0]
        reference = TaglessCHT(n_entries=64, counter_bits=1,
                               track_distance=True)
        vectorized = TaglessCHT(n_entries=64, counter_bits=1,
                                track_distance=True)
        for pc, co, d in zip(pcs, collided, distances):
            reference.train(pc, co, d if co else None)
        tagless_replay(vectorized, np.array(pcs, dtype=np.int64),
                       np.array(collided, dtype=bool),
                       np.array([d if co else -1
                                 for co, d in zip(collided, distances)],
                                dtype=np.int64))
        assert _cht_state(vectorized) == _cht_state(reference)

    @pytest.mark.parametrize("batch_size", (1, 13, 4096))
    def test_chunking_is_invisible(self, batch_size):
        events = _events(43, 1500)
        reference = TaglessCHT(n_entries=256)
        vectorized = TaglessCHT(n_entries=256)
        pcs, _, collided, distances = event_arrays(events)
        expected = tagless_replay(reference, pcs, collided, distances)
        got = tagless_replay(vectorized, pcs, collided, distances,
                             batch_size=batch_size)
        assert got.tolist() == expected.tolist()
        assert _cht_state(vectorized) == _cht_state(reference)


class TestHarnessDispatch:
    @pytest.mark.parametrize("warm", (False, True))
    @pytest.mark.parametrize("track_distance", (False, True))
    def test_replay_accuracy_identical(self, warm, track_distance):
        events = _events(44)
        reference = TaglessCHT(n_entries=512, counter_bits=1,
                               track_distance=track_distance,
                               backend="reference")
        vectorized = TaglessCHT(n_entries=512, counter_bits=1,
                                track_distance=track_distance,
                                backend="vectorized")
        assert replay(events, vectorized, warm=warm) \
            == replay(events, reference, warm=warm)
        assert _cht_state(vectorized) == _cht_state(reference)

    def test_shared_array_cache_replay_identical(self):
        # The fig9 leaf shares one EventArrayCache across the whole
        # configuration ladder; results must match per-call conversion.
        from repro.experiments.cht_accuracy import EventArrayCache
        events = _events(46)
        shared = EventArrayCache(events)
        for entries in (256, 1024):
            reference = TaglessCHT(n_entries=entries, backend="reference")
            vectorized = TaglessCHT(n_entries=entries,
                                    backend="vectorized")
            assert replay(events, vectorized, arrays=shared) \
                == replay(events, reference)
            assert _cht_state(vectorized) == _cht_state(reference)

    def test_reference_backend_takes_scalar_path(self):
        # Sanity: the accuracy object is the same dataclass either way.
        events = _events(45, 500)
        acc = replay(events, TaglessCHT(n_entries=128,
                                        backend="reference"))
        assert acc.conflicting == sum(1 for e in events if e.conflicting)
