"""The uniform serving kernel facade: supports_steps / replay_steps."""

import random

import pytest

from repro.api import build_predictor, spec_for
from repro.serve.batch import scalar_steps

numpy = pytest.importorskip("numpy")

from repro.fastpath import batchapi  # noqa: E402 - after numpy gate

#: (kind, kernel-backed) — facade coverage over every family.
KINDS = [
    ("binary.bimodal", True),
    ("binary.local", True),
    ("binary.gshare", True),
    ("binary.gskew", True),
    ("hmp.local", True),
    ("hmp.gshare", True),
    ("hmp.hybrid", True),
    ("cht.tagless", True),
    ("cht.tagged", False),
    ("cht.full", False),
    ("bank.a", True),
    ("bank.address", False),
]


@pytest.mark.parametrize("kind,expected", KINDS)
def test_supports_steps(kind, expected):
    spec = spec_for(kind)
    predictor = build_predictor(spec)
    assert batchapi.supports_steps(spec.family, predictor) is expected


@pytest.mark.parametrize("kind", [k for k, s in KINDS if s])
def test_replay_steps_matches_scalar(kind):
    spec = spec_for(kind)
    rng = random.Random(hash(kind) & 0xFFFF)
    n = 300
    pcs = [0x100 + 4 * rng.randrange(8) for _ in range(n)]
    outcomes = [rng.randrange(2) for _ in range(n)]
    distances = [(1 + rng.randrange(3)) if (spec.family == "cht" and o)
                 else -1 for o in outcomes]

    kernel_predictor = build_predictor(spec, backend="vectorized")
    got = batchapi.replay_steps(
        spec.family, kernel_predictor,
        numpy.asarray(pcs, dtype=numpy.int64),
        numpy.asarray(outcomes, dtype=numpy.int64),
        numpy.asarray(distances, dtype=numpy.int64)).tolist()

    scalar_predictor = build_predictor(spec, backend="reference")
    expected = scalar_steps(spec.family, scalar_predictor, pcs, outcomes,
                            distances)
    assert got == expected


def test_replay_steps_unknown_family():
    with pytest.raises(ValueError):
        batchapi.replay_steps("weather", object(),
                              numpy.zeros(1, dtype=numpy.int64),
                              numpy.zeros(1, dtype=numpy.int64),
                              numpy.zeros(1, dtype=numpy.int64))
