"""Differential equivalence: hit-miss predictor batch replay vs. scalar."""

import pytest

from repro.experiments.hitmiss_stats import HitMissEvent, replay
from repro.fastpath import hitmiss as fp_hitmiss
from repro.fastpath.tracegen import synthesize_outcome_grid
from repro.hitmiss.hybrid import HybridHMP
from repro.hitmiss.local import LocalHMP
from repro.hitmiss.oracle import AlwaysHitHMP

from tests.fastpath.helpers import predictor_state

FACTORIES = {
    "local": lambda backend: LocalHMP(n_entries=256, history_bits=6,
                                      backend=backend),
    "local-paper": lambda backend: LocalHMP(n_entries=2048, history_bits=8,
                                            backend=backend),
    "hybrid": lambda backend: HybridHMP(backend=backend),
    "hybrid-paper": lambda backend: HybridHMP(gshare_history=11,
                                              gskew_history=20,
                                              backend=backend),
}


def _events(seed, n=3000):
    pcs, outcomes = synthesize_outcome_grid(seed, n)
    # Treat the grid's outcome bit as "hit".
    return [HitMissEvent(pc=pc, line=pc >> 6, now=i, hit=o)
            for i, (pc, o) in enumerate(zip(pcs, outcomes))]


def _state(hmp):
    inner = hmp._miss_predictor if isinstance(hmp, LocalHMP) else hmp._chooser
    return predictor_state(inner)


@pytest.mark.parametrize("label", sorted(FACTORIES))
@pytest.mark.parametrize("seed", (51, 52))
@pytest.mark.parametrize("warm", (False, True))
def test_replay_stats_and_state_identical(label, seed, warm):
    events = _events(seed)
    reference = FACTORIES[label]("reference")
    vectorized = FACTORIES[label]("vectorized")
    ref_stats = replay(events, reference, warm=warm)
    vec_stats = replay(events, vectorized, warm=warm)
    assert vec_stats.counts == ref_stats.counts
    assert _state(vectorized) == _state(reference)


def test_prediction_stream_identical():
    events = _events(53, 2000)
    reference = FACTORIES["hybrid"]("reference")
    vectorized = FACTORIES["hybrid"]("vectorized")
    expected = []
    for event in events:
        expected.append(reference.predict_hit(event.pc, event.line,
                                              event.now))
        reference.update(event.pc, event.hit, event.line, event.now)
    pcs, hits = fp_hitmiss.event_arrays(events)
    got = fp_hitmiss.replay_hits(vectorized, pcs, hits)
    assert got.tolist() == expected


def test_unsupported_predictor_falls_back():
    # AlwaysHitHMP has no kernel: the harness silently takes the
    # scalar loop, so the result is still correct.
    assert not fp_hitmiss.supports(AlwaysHitHMP())
    events = _events(54, 300)
    stats = replay(events, AlwaysHitHMP())
    assert stats.total == len(events)
