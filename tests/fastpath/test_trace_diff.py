"""Differential equivalence: batch address materialization vs. next().

``AddressStream.materialize`` must return exactly what ``n`` scalar
``next()`` calls would, advance the stream state identically, and —
for rng-consuming streams — preserve the shared rng's consumption
order bit for bit by refusing to batch.
"""

import random

import pytest

from repro.fastpath import use_backend
from repro.trace.streams import (
    HotColdStream,
    PointerChaseStream,
    RandomStream,
    StrideStream,
)

STRIDES = {
    "unit": lambda: StrideStream(base=0x1000, stride=4, extent=4096),
    "wide": lambda: StrideStream(base=0x8000, stride=192, extent=1000),
    "negative": lambda: StrideStream(base=0x2000, stride=-8, extent=256),
}


def _scalar_block(stream, n, rng):
    return [stream.next(rng) for _ in range(n)]


class TestStrideStream:
    @pytest.mark.parametrize("label", sorted(STRIDES))
    @pytest.mark.parametrize("n", (0, 1, 7, 1000))
    def test_block_and_state_identical(self, label, n):
        reference, vectorized = STRIDES[label](), STRIDES[label]()
        rng = random.Random(0)
        expected = _scalar_block(reference, n, rng)
        got = vectorized.materialize(n, rng, backend="vectorized")
        assert got == expected
        assert vectorized._offset == reference._offset
        # The next scalar address continues the same walk.
        assert vectorized.next(rng) == reference.next(rng)

    def test_repeated_blocks_chain(self):
        reference, vectorized = STRIDES["wide"](), STRIDES["wide"]()
        rng = random.Random(0)
        expected = _scalar_block(reference, 700, rng)
        got = (vectorized.materialize(300, rng, backend="vectorized")
               + vectorized.materialize(400, rng, backend="vectorized"))
        assert got == expected


class TestPointerChaseStream:
    def _pair(self):
        return (PointerChaseStream(base=0x100000, n_nodes=37, perm_seed=7),
                PointerChaseStream(base=0x100000, n_nodes=37, perm_seed=7))

    @pytest.mark.parametrize("n", (0, 1, 36, 37, 38, 500))
    def test_block_wraps_the_cycle_exactly(self, n):
        reference, vectorized = self._pair()
        rng = random.Random(0)
        expected = _scalar_block(reference, n, rng)
        got = vectorized.materialize(n, rng, backend="vectorized")
        assert got == expected
        assert vectorized._current == reference._current

    def test_blocks_after_scalar_use_and_reset(self):
        reference, vectorized = self._pair()
        rng = random.Random(0)
        _scalar_block(reference, 11, rng)
        _scalar_block(vectorized, 11, rng)
        assert vectorized.materialize(80, rng, backend="vectorized") \
            == _scalar_block(reference, 80, rng)
        reference.reset()
        vectorized.reset()
        assert vectorized.materialize(40, rng, backend="vectorized") \
            == _scalar_block(reference, 40, rng)


class TestRngConsumingStreamsStayScalar:
    """Batching a rng-consuming stream would desynchronise every later
    draw from the shared rng; those streams must take the scalar loop
    even under the vectorized backend."""

    def _hotcold(self):
        return HotColdStream(
            hot=StrideStream(base=0, stride=4, extent=512),
            cold=RandomStream(base=0x100000, extent=1 << 20),
            p_cold_burst=0.1)

    @pytest.mark.parametrize("make", [
        lambda self: RandomStream(base=0x4000, extent=8192),
        lambda self: self._hotcold(),
    ], ids=["random", "hotcold"])
    def test_block_and_rng_state_identical(self, make):
        reference, vectorized = make(self), make(self)
        rng_ref, rng_vec = random.Random(5), random.Random(5)
        expected = _scalar_block(reference, 400, rng_ref)
        got = vectorized.materialize(400, rng_vec, backend="vectorized")
        assert got == expected
        # Identical rng consumption: the streams' next draws agree too.
        assert rng_vec.random() == rng_ref.random()


def test_default_backend_controls_materialize():
    rng = random.Random(0)
    stream = STRIDES["unit"]()
    expected = [stream.next(rng) for _ in range(64)]
    stream.reset()
    with use_backend("vectorized"):
        assert stream.materialize(64, rng) == expected
    stream.reset()
    assert stream.materialize(64, rng) == expected  # reference default
