"""The differential-equivalence suite needs numpy; when the
environment does not provide it, ignore the directory's modules
instead of erroring at import time (module-level importorskip aborts
collection in a conftest)."""

try:
    import numpy  # noqa: F401
    _HAS_NUMPY = True
except ImportError:
    _HAS_NUMPY = False

collect_ignore_glob = [] if _HAS_NUMPY else ["test_*.py", "helpers.py"]
