"""End-to-end equivalence: figure harnesses and machine runs must emit
byte-identical JSON whichever backend the process default selects."""

import json

import pytest

from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.experiments.bank_metric import run_fig12
from repro.experiments.cht_accuracy import run_fig9
from repro.experiments.harness import ExperimentSettings, get_trace
from repro.experiments.hitmiss_stats import run_fig10
from repro.fastpath import use_backend

SMALL = ExperimentSettings(n_uops=2000, traces_per_group=1)

FIGURES = {
    "fig9": lambda: run_fig9(SMALL),
    "fig10": lambda: run_fig10(SMALL),
    "fig12": lambda: run_fig12(SMALL),
}


def _dumps(payload):
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("label", sorted(FIGURES))
def test_figure_json_identical_across_backends(label):
    with use_backend("reference"):
        reference = _dumps(FIGURES[label]())
    with use_backend("vectorized"):
        vectorized = _dumps(FIGURES[label]())
    assert vectorized == reference


@pytest.mark.parametrize("scheme", ("traditional", "exclusive"))
def test_machine_simresult_identical_across_backends(scheme):
    # Machine drives predictors through the scalar API only; the
    # backend switch must be invisible to cycle-level results.
    trace = get_trace("cd", 2000)
    with use_backend("reference"):
        reference = Machine(config=BASELINE_MACHINE,
                            scheme=make_scheme(scheme)).run(trace)
    with use_backend("vectorized"):
        vectorized = Machine(config=BASELINE_MACHINE,
                             scheme=make_scheme(scheme)).run(trace)
    assert _dumps(vectorized.as_dict()) == _dumps(reference.as_dict())
