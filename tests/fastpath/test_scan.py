"""Exactness of the counter and history scans vs. the scalar cells."""

import random

import numpy as np
import pytest

from repro.common import bits
from repro.fastpath.scan import (
    clamped_walk,
    global_history_walk,
    history_walk,
)
from repro.predictors.counters import SaturatingCounter


def _scalar_counter_walk(cell_ids, steps, initial, counter_bits):
    cells = [SaturatingCounter(counter_bits, initial=v) for v in initial]
    before = []
    for cell_id, step in zip(cell_ids, steps):
        before.append(cells[cell_id].value)
        cells[cell_id].train(step > 0)
    return before, [c.value for c in cells]


class TestClampedWalk:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_saturating_counters(self, seed):
        rng = random.Random(seed)
        counter_bits = rng.choice([1, 2, 3])
        max_value = (1 << counter_bits) - 1
        n_cells = rng.choice([1, 2, 16, 64])
        n = rng.randrange(0, 600)
        cell_ids = [rng.randrange(n_cells) for _ in range(n)]
        steps = [rng.choice([1, -1]) for _ in range(n)]
        initial = [rng.randrange(max_value + 1) for _ in range(n_cells)]
        exp_before, exp_final = _scalar_counter_walk(
            cell_ids, steps, initial, counter_bits)
        before, after, final = clamped_walk(
            np.array(cell_ids, dtype=np.int64),
            np.array(steps, dtype=np.int64),
            np.array(initial, dtype=np.int64), max_value)
        assert before.tolist() == exp_before
        assert final.tolist() == exp_final
        clipped = np.clip(before + np.array(steps, dtype=np.int64),
                          0, max_value)
        assert after.tolist() == clipped.tolist()

    def test_empty_stream_is_identity(self):
        initial = np.array([0, 3, 1], dtype=np.int64)
        before, after, final = clamped_walk(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            initial, 3)
        assert len(before) == 0 and len(after) == 0
        assert final.tolist() == [0, 3, 1]

    def test_single_cell_saturation_run(self):
        n = 50
        before, _, final = clamped_walk(
            np.zeros(n, dtype=np.int64), np.ones(n, dtype=np.int64),
            np.array([0], dtype=np.int64), 3)
        assert before.tolist() == [0, 1, 2] + [3] * (n - 3)
        assert final.tolist() == [3]

    def test_untouched_cells_keep_initial_values(self):
        before, _, final = clamped_walk(
            np.array([2, 2], dtype=np.int64),
            np.array([1, 1], dtype=np.int64),
            np.array([1, 2, 0, 3], dtype=np.int64), 3)
        assert final.tolist() == [1, 2, 2, 3]


class TestHistoryWalk:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_shift_history(self, seed):
        rng = random.Random(seed + 50)
        length = rng.choice([1, 4, 8, 11, 20])
        n_groups = rng.choice([1, 3, 32])
        n = rng.randrange(0, 500)
        group_ids = [rng.randrange(n_groups) for _ in range(n)]
        outcomes = [rng.random() < 0.5 for _ in range(n)]
        initial = [rng.randrange(1 << length) for _ in range(n_groups)]
        registers = list(initial)
        expected = []
        for group, outcome in zip(group_ids, outcomes):
            expected.append(registers[group])
            registers[group] = bits.shift_history(registers[group],
                                                  outcome, length)
        before, final = history_walk(
            np.array(group_ids, dtype=np.int64),
            np.array(outcomes, dtype=bool),
            np.array(initial, dtype=np.int64), length)
        assert before.tolist() == expected
        assert final.tolist() == registers

    def test_initial_history_bits_shift_out(self):
        # A register starting at all-ones must lose one initial bit per
        # event until only the event window remains.
        length = 4
        outcomes = [False] * 6
        before, final = history_walk(
            np.zeros(6, dtype=np.int64), np.array(outcomes, dtype=bool),
            np.array([0b1111], dtype=np.int64), length)
        assert before.tolist() == [0b1111, 0b1110, 0b1100, 0b1000, 0, 0]
        assert final.tolist() == [0]


class TestGlobalHistoryWalk:
    def test_matches_scalar_register(self):
        rng = random.Random(99)
        outcomes = [rng.random() < 0.5 for _ in range(700)]
        history = 0b1011
        expected = []
        register = history
        for outcome in outcomes:
            expected.append(register)
            register = bits.shift_history(register, outcome, 11)
        before, final = global_history_walk(
            np.array(outcomes, dtype=bool), history, 11)
        assert before.tolist() == expected
        assert final == register
