"""Element-wise equivalence of the vectorized bits.* mirrors."""

import random

import numpy as np
import pytest

from repro.common import bits
from repro.fastpath.indices import (
    _h_arr,
    _h_inv_arr,
    fold_arr,
    gshare_index_arr,
    pc_index_arr,
    skew_index_arr,
)

SEEDS = (1, 2, 3)


def _values(seed, n=2000, width=40):
    rng = random.Random(seed)
    edge = [0, 1, 2, (1 << 32) - 1, (1 << width) - 1]
    return edge + [rng.randrange(1 << width) for _ in range(n)]


class TestFold:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_bits", [1, 2, 3, 8, 11, 12, 17, 20, 31])
    def test_matches_scalar(self, seed, n_bits):
        values = _values(seed)
        expected = [bits.fold(v, n_bits) for v in values]
        got = fold_arr(np.array(values, dtype=np.uint64), n_bits)
        assert got.tolist() == expected

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            fold_arr(np.array([1], dtype=np.uint64), 0)


class TestPcIndex:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_entries", [1, 2, 128, 2048, 4096, 32768])
    def test_matches_scalar(self, seed, n_entries):
        pcs = _values(seed, width=32)
        expected = [bits.pc_index(pc, n_entries) for pc in pcs]
        got = pc_index_arr(np.array(pcs, dtype=np.int64), n_entries)
        assert got.tolist() == expected

    def test_indices_in_range(self):
        pcs = np.array(_values(7, width=32), dtype=np.int64)
        got = pc_index_arr(pcs, 1024)
        assert got.min() >= 0 and got.max() < 1024


class TestGShareIndex:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("n_entries", [32, 512, 2048])
    def test_matches_scalar(self, seed, n_entries):
        rng = random.Random(seed + 100)
        pcs = _values(seed, width=32)
        hists = [rng.randrange(1 << 20) for _ in pcs]
        expected = [bits.gshare_index(pc, h, n_entries)
                    for pc, h in zip(pcs, hists)]
        got = gshare_index_arr(np.array(pcs, dtype=np.int64),
                               np.array(hists, dtype=np.int64), n_entries)
        assert got.tolist() == expected


class TestSkewIndex:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("bank", [0, 1, 2])
    @pytest.mark.parametrize("n_entries", [64, 1024])
    def test_matches_scalar(self, seed, bank, n_entries):
        rng = random.Random(seed + 200)
        pcs = _values(seed, width=32)
        hists = [rng.randrange(1 << 20) for _ in pcs]
        expected = [bits.skew_index(pc, h, bank, n_entries)
                    for pc, h in zip(pcs, hists)]
        got = skew_index_arr(np.array(pcs, dtype=np.int64),
                             np.array(hists, dtype=np.int64),
                             bank, n_entries)
        assert got.tolist() == expected

    def test_rejects_fourth_bank(self):
        with pytest.raises(ValueError):
            skew_index_arr(np.array([0]), np.array([0]), 3, 64)


class TestMixers:
    @pytest.mark.parametrize("n_bits", [1, 2, 5, 10])
    def test_h_and_inverse_match_scalar(self, n_bits):
        values = list(range(1 << min(n_bits, 10)))
        arr = np.array(values, dtype=np.uint64)
        assert (_h_arr(arr, n_bits).tolist()
                == [bits._h(v, n_bits) for v in values])
        assert (_h_inv_arr(arr, n_bits).tolist()
                == [bits._h_inv(v, n_bits) for v in values])
