"""Tests for store-to-load forwarding."""

from dataclasses import replace

import pytest

from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from tests.engine.helpers import MicroTrace


def forwarding_config(latency=2):
    return replace(BASELINE_MACHINE,
                   latency=replace(BASELINE_MACHINE.latency,
                                   forward_latency=latency))


def store_then_far_load():
    """A completed but *unretired* store followed by a load from it.

    Forwarding serves in-flight stores only (the store queue); a
    long-latency load at the head of the ROB keeps the store resident
    in the MOB while it completes.
    """
    t = MicroTrace()
    t.load(dst=5, address=0x90000)  # cold miss: blocks retirement
    t.store(0x4000, data_src=15)
    for i in range(6):
        t.alu(dst=i % 4)
    t.load(dst=7, address=0x4000)
    t.alu(dst=6, srcs=(7,))
    return t.build()


class TestForwardingPath:
    def test_counted(self):
        result = Machine(config=forwarding_config(),
                         scheme=make_scheme("traditional")).run(
            store_then_far_load())
        assert result.forwarded_loads == 1

    def test_disabled_by_default(self):
        result = Machine(scheme=make_scheme("traditional")).run(
            store_then_far_load())
        assert result.forwarded_loads == 0

    def test_forwarding_is_faster_than_cold_access(self):
        """Forwarded data arrives in forward_latency cycles; without
        forwarding the load at least pays the full cache pipeline."""
        def mk():
            t = MicroTrace()
            t.load(dst=5, address=0x90000)  # keeps the store in flight
            t.store(0x9000, data_src=15)
            for i in range(6):
                t.alu(dst=i % 4)
            # A chain of dependent loads from the stored line.
            t.load(dst=7, address=0x9000)
            for _ in range(10):
                t.load(dst=7, address=0x9000, addr_src=7)
            return t.build()
        plain = Machine(scheme=make_scheme("traditional")).run(mk())
        forwarded = Machine(config=forwarding_config(2),
                            scheme=make_scheme("traditional")).run(mk())
        assert forwarded.cycles < plain.cycles

    def test_colliding_load_not_forwarded_early(self):
        """An incomplete overlapping store blocks forwarding: the load
        still retries/pays the collision penalty."""
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(6):
            t.alu(dst=0, srcs=(0,))
        t.store(0x4000, data_src=0)  # late data
        t.load(dst=7, address=0x4000)
        result = Machine(config=forwarding_config(),
                         scheme=make_scheme("traditional")).run(t.build())
        assert result.collision_penalties >= 1

    def test_forwarded_load_counts_as_hit(self):
        from repro.common.types import HitMissClass
        result = Machine(config=forwarding_config(),
                         scheme=make_scheme("traditional")).run(
            store_then_far_load())
        # Only the deliberate cold miss at the head misses; the
        # forwarded load is a hit.
        assert result.hitmiss.counts[HitMissClass.AM_PH] <= 1


class TestEndToEnd:
    def test_forwarding_helps_exclusive_scheme(self):
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed
        trace = build_trace(profile_for("cd"), n_uops=6000,
                            seed=trace_seed("cd"), name="cd")
        plain = Machine(scheme=make_scheme("exclusive")).run(trace)
        forwarded = Machine(config=forwarding_config(2),
                            scheme=make_scheme("exclusive")).run(trace)
        assert forwarded.forwarded_loads > 0
        assert forwarded.cycles <= plain.cycles
