"""Failure-injection tests: malformed inputs and guard rails."""

import pytest

from repro.common.types import MemAccess, Uop, UopClass
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.trace.trace import Trace
from tests.engine.helpers import MicroTrace


class TestMalformedTraces:
    def test_std_without_sta_rejected(self):
        """An STD pointing at a never-renamed STA fails loudly at
        rename, not silently mid-simulation."""
        uops = [Uop(seq=0, pc=0x100, uclass=UopClass.STD, srcs=(15,),
                    sta_seq=99)]
        with pytest.raises(KeyError):
            Machine().run(Trace(name="bad", uops=uops))

    def test_cycle_ceiling_guards_livelock(self):
        trace = MicroTrace().alu(dst=0).alu(dst=1).build()
        with pytest.raises(RuntimeError):
            Machine().run(trace, max_cycles=0)

    def test_ceiling_message_names_trace(self):
        trace = MicroTrace().alu(dst=0).build("stuck-trace")
        with pytest.raises(RuntimeError, match="stuck-trace"):
            Machine().run(trace, max_cycles=0)


class TestSelfReferencingSources:
    def test_uop_reading_its_own_destination(self):
        """srcs naming the uop's own dst refer to the *previous* writer,
        never the uop itself (no self-deadlock)."""
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(10):
            t.alu(dst=0, srcs=(0,))
        result = Machine().run(t.build())
        assert result.retired_uops == 11

    def test_source_never_written_is_ready(self):
        t = MicroTrace()
        t.alu(dst=0, srcs=(7,))  # register 7 never written
        result = Machine().run(t.build())
        assert result.retired_uops == 1
        assert result.cycles < 20


class TestDegenerateConfigurations:
    def test_window_of_one(self):
        from repro.common.config import BASELINE_MACHINE
        trace = MicroTrace()
        for i in range(20):
            trace.alu(dst=i % 4)
        result = Machine(config=BASELINE_MACHINE.with_window(1)).run(
            trace.build())
        assert result.retired_uops == 20

    def test_single_memory_unit_with_colliding_pair(self):
        from repro.common.config import BASELINE_MACHINE
        t = MicroTrace()
        t.alu(dst=0)
        t.store(0x4000, data_src=0)
        t.load(dst=7, address=0x4000)
        result = Machine(config=BASELINE_MACHINE.with_units(2, 1)).run(
            t.build())
        assert result.retired_uops == 4

    def test_store_only_trace(self):
        t = MicroTrace()
        for i in range(10):
            t.store(0x1000 + 64 * i)
        result = Machine(scheme=make_scheme("inclusive")).run(t.build())
        assert result.retired_uops == 20  # STA+STD each
        assert result.retired_loads == 0

    def test_load_only_trace_all_schemes(self):
        from repro.engine.ordering import SCHEME_NAMES
        for scheme in SCHEME_NAMES:
            t = MicroTrace()
            for i in range(10):
                t.load(dst=i % 8, address=0x1000)
            result = Machine(scheme=make_scheme(scheme)).run(t.build())
            assert result.retired_loads == 10, scheme
            assert result.collision_penalties == 0, scheme
