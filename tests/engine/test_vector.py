"""The vectorized machine backend: bit-identity, routing, fallback.

The contract under test is ``docs/engine.md``'s: for every supported
configuration, ``Machine.run(trace, backend="vectorized")`` produces a
``SimResult`` whose ``to_dict()`` equals the reference backend's — and
every unsupported configuration silently falls back to the scalar
path, so the switch can never change results, only speed.
"""

import pytest

from repro.api import ExecutionPolicy
from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.mob import MemoryOrderBuffer
from repro.engine.ordering import (
    SCHEME_NAMES,
    TraditionalOrdering,
    make_scheme,
)
from repro.engine.results import SimResult
from repro.experiments.harness import get_trace
from repro.fastpath import HAS_NUMPY
from repro.fastpath.backend import use_backend
from tests.engine.helpers import MicroTrace

needs_numpy = pytest.mark.skipif(not HAS_NUMPY,
                                 reason="vectorized kernel needs numpy")


def run_both(mk_machine, trace, max_cycles=None):
    """(reference, vectorized) results for the same machine recipe."""
    ref = mk_machine().run(trace, max_cycles=max_cycles,
                           backend="reference")
    vec = mk_machine().run(trace, max_cycles=max_cycles,
                           backend="vectorized")
    return ref, vec


def outcome_both(mk_machine, trace, max_cycles):
    """Result dict or the RuntimeError string, per backend."""
    out = []
    for backend in ("reference", "vectorized"):
        try:
            out.append(mk_machine().run(trace, max_cycles=max_cycles,
                                        backend=backend).to_dict())
        except RuntimeError as exc:
            out.append(str(exc))
    return out


def violation_trace():
    """A microtrace that forces a hidden violation + squash replay:
    the STA's address hangs off a slow dependency chain while the
    colliding load's address is ready immediately."""
    t = MicroTrace()
    t.alu(dst=1)
    for _ in range(6):
        t.alu(dst=1, srcs=(1,))  # slow chain into the STA's address
    t.store(0x200, addr_src=1, data_src=15)
    t.load(dst=2, address=0x200, addr_src=15)
    t.alu(dst=3, srcs=(2,))
    return t.build("violation")


@needs_numpy
class TestBitIdentityMatrix:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @pytest.mark.parametrize("trace_name", ("gcc", "swim", "tpcc"))
    def test_scheme_profile_matrix(self, scheme, trace_name):
        trace = get_trace(trace_name, 3000)
        ref, vec = run_both(lambda: Machine(scheme=make_scheme(scheme)),
                            trace)
        assert ref.to_dict() == vec.to_dict()

    @pytest.mark.parametrize("scheme", ("opportunistic", "exclusive"))
    def test_forwarding_machine(self, scheme):
        import dataclasses
        cfg = BASELINE_MACHINE
        cfg = dataclasses.replace(cfg, latency=dataclasses.replace(
            cfg.latency, forward_latency=2))
        trace = get_trace("tpcc", 3000)
        ref, vec = run_both(
            lambda: Machine(config=cfg, scheme=make_scheme(scheme)),
            trace)
        assert ref.to_dict() == vec.to_dict()

    def test_violation_replay_microtrace(self):
        ref, vec = run_both(
            lambda: Machine(scheme=make_scheme("opportunistic")),
            violation_trace())
        assert ref.collision_penalties > 0  # the trap actually fired
        assert ref.to_dict() == vec.to_dict()


@needs_numpy
class TestTruncationAndEdges:
    """Satellite: ``max_cycles`` and empty/single-uop traces must be
    explicit and identical across backends — including the
    ``RuntimeError`` text, including truncation mid-squash-replay."""

    def test_empty_trace_is_cycle_zero(self):
        trace = MicroTrace().build("empty")
        ref, vec = run_both(
            lambda: Machine(scheme=make_scheme("traditional")), trace)
        assert ref.to_dict() == vec.to_dict()
        assert vec.cycles == 0 and vec.retired_uops == 0

    def test_empty_trace_ignores_negative_ceiling(self):
        trace = MicroTrace().build("empty")
        ref, vec = run_both(
            lambda: Machine(scheme=make_scheme("traditional")), trace,
            max_cycles=-5)
        assert ref.to_dict() == vec.to_dict() and vec.cycles == 0

    def test_single_uop_trace(self):
        trace = MicroTrace().alu(dst=1).build("one")
        ref, vec = run_both(
            lambda: Machine(scheme=make_scheme("traditional")), trace)
        assert ref.to_dict() == vec.to_dict()
        assert vec.retired_uops == 1

    @pytest.mark.parametrize("max_cycles", (-1, 0, 1, 3, 10, 40, 200))
    def test_truncation_outcomes_identical(self, max_cycles):
        # Sweep ceilings across the violation trace's whole lifetime:
        # some land mid-squash-replay, some before rename, some after
        # completion.  Result dicts and error strings must agree.
        ref, vec = outcome_both(
            lambda: Machine(scheme=make_scheme("opportunistic")),
            violation_trace(), max_cycles)
        assert ref == vec

    @pytest.mark.parametrize("max_cycles", (0, 17, 231, 1000, 100000))
    def test_truncation_on_real_trace(self, max_cycles):
        trace = get_trace("gcc", 600)
        ref, vec = outcome_both(
            lambda: Machine(scheme=make_scheme("traditional")),
            trace, max_cycles)
        assert ref == vec

    def test_error_message_shape(self):
        trace = get_trace("gcc", 600)
        with pytest.raises(RuntimeError,
                           match=r"simulation exceeded 3 cycles on "
                                 r"'gcc' \(\d+ uops stuck in flight\)"):
            Machine(scheme=make_scheme("traditional")).run(
                trace, max_cycles=3, backend="vectorized")


class TestRoutingAndFallback:
    def test_explicit_reference_backend_never_vectorizes(self,
                                                         monkeypatch):
        from repro.engine import vector

        def boom(*a, **k):  # pragma: no cover - must not be called
            raise AssertionError("vectorized kernel invoked")

        monkeypatch.setattr(vector, "run_vectorized", boom)
        trace = MicroTrace().alu(dst=1).build("one")
        result = Machine(scheme=make_scheme("traditional")).run(
            trace, backend="reference")
        assert result.retired_uops == 1

    @needs_numpy
    def test_env_var_routes_to_vectorized(self, monkeypatch):
        from repro.engine import vector
        calls = []
        real = vector.run_vectorized

        def spy(machine, trace, max_cycles=None):
            calls.append(trace.name)
            return real(machine, trace, max_cycles=max_cycles)

        monkeypatch.setenv("REPRO_BACKEND", "vectorized")
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        monkeypatch.setattr(vector, "run_vectorized", spy)
        trace = MicroTrace().alu(dst=1).build("one")
        Machine(scheme=make_scheme("traditional")).run(trace)
        assert calls == ["one"]

    @needs_numpy
    def test_use_backend_context_routes(self, monkeypatch):
        from repro.engine import vector
        calls = []
        real = vector.run_vectorized
        monkeypatch.setattr(
            vector, "run_vectorized",
            lambda m, t, max_cycles=None: (calls.append(t.name)
                                           or real(m, t,
                                                   max_cycles=max_cycles)))
        trace = MicroTrace().alu(dst=1).build("one")
        with use_backend("vectorized"):
            Machine(scheme=make_scheme("traditional")).run(trace)
        assert calls == ["one"]

    def test_unsupported_machine_falls_back(self):
        from repro.engine import vector
        m = Machine(scheme=make_scheme("traditional"))
        m.record_timeline = True
        assert vector.unsupported_reason(m) is not None
        trace = MicroTrace().alu(dst=1).build("one")
        # Still runs (scalar path) even when vectorized is requested,
        # and the degrade is recorded instead of silent.
        result = m.run(trace, policy=ExecutionPolicy(backend="vectorized"))
        assert result.retired_uops == 1 and result.timeline is not None
        assert m.last_degrade_reason is not None

    def test_scheme_subclass_falls_back(self):
        from repro.engine import vector

        class Lying(TraditionalOrdering):
            pass

        m = Machine(scheme=Lying())
        assert "scheme" in vector.unsupported_reason(m)

    def test_custom_mob_falls_back(self):
        from repro.engine import vector

        class WeirdMOB(MemoryOrderBuffer):
            pass

        m = Machine(scheme=make_scheme("traditional"))
        m.mob_factory = WeirdMOB
        assert "MOB" in vector.unsupported_reason(m)

    @needs_numpy
    def test_unsupported_trace_falls_back(self, monkeypatch):
        # Duplicate seqs cannot be lane-encoded (index order must equal
        # seq order); the kernel refuses before touching machine state
        # and Machine.run silently takes the scalar path instead.  The
        # invariant oracle rejects such a malformed trace outright (its
        # rename discipline keys on seq), so compare the bare backends.
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        from repro.common.types import Uop, UopClass
        from repro.engine import vector
        from repro.trace.trace import Trace
        uops = [Uop(seq=0, pc=0x1000, uclass=UopClass.INT, dst=1),
                Uop(seq=0, pc=0x1004, uclass=UopClass.INT, dst=2)]
        trace = Trace(name="dup-seq", uops=uops)
        with pytest.raises(vector.VectorUnsupported,
                           match="non-increasing uop seqs"):
            vector.run_vectorized(
                Machine(scheme=make_scheme("traditional")), trace)
        ref, vec = run_both(
            lambda: Machine(scheme=make_scheme("traditional")), trace)
        assert ref.to_dict() == vec.to_dict()
        assert vec.retired_uops == 2


@needs_numpy
class TestCheckedRun:
    def test_invariants_env_shadow_checks(self, monkeypatch):
        from repro.engine import vector
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        calls = []
        real = vector.checked_vectorized_run
        monkeypatch.setattr(
            vector, "checked_vectorized_run",
            lambda m, t, max_cycles=None: (calls.append(t.name)
                                           or real(m, t,
                                                   max_cycles=max_cycles)))
        trace = get_trace("gcc", 400)
        result = Machine(scheme=make_scheme("traditional")).run(
            trace, backend="vectorized")
        assert calls == ["gcc"]
        assert isinstance(result, SimResult)

    def test_lying_kernel_is_caught(self, monkeypatch):
        from repro.engine import vector

        def lying(machine, trace, max_cycles=None):
            result = machine._run_reference(trace, max_cycles)
            result.cycles += 1  # off-by-one nobody would notice
            return result

        monkeypatch.setattr(vector, "run_vectorized", lying)
        trace = get_trace("gcc", 400)
        with pytest.raises(vector.BackendMismatch, match="cycles"):
            vector.checked_vectorized_run(
                Machine(scheme=make_scheme("traditional")), trace)
