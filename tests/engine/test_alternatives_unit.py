"""Unit tests for the store-sets / store-barrier ordering predicates."""

import pytest

from repro.common.types import MemAccess, Uop, UopClass
from repro.engine.alternatives import StoreBarrierOrdering, StoreSetOrdering
from repro.engine.inflight import UNKNOWN, InflightUop
from tests.engine.test_mob import build_mob, make_store


def make_load(seq=9, pc=0x500, address=0x100):
    uop = Uop(seq=seq, pc=pc, uclass=UopClass.LOAD, mem=MemAccess(address))
    return InflightUop(uop, [])


def make_sta_iu(seq, pc, address=0x200):
    uop = Uop(seq=seq, pc=pc, uclass=UopClass.STA, mem=MemAccess(address))
    return InflightUop(uop, [])


class TestStoreSetOrdering:
    def test_untrained_never_waits(self):
        scheme = StoreSetOrdering()
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN))
        load = make_load()
        scheme.on_rename_load(load)
        assert scheme.may_dispatch(load, mob, now=10)

    def test_trained_pair_waits_for_lfst_store(self):
        scheme = StoreSetOrdering()
        load_pc, store_pc = 0x500, 0x600
        # Teach the pair via a violation.
        trained = make_load(pc=load_pc)
        trained.load.would_collide = True
        trained.load.collide_store_pc = store_pc
        scheme.on_retire_load(trained)

        # A new instance of the store is in flight...
        (sta, std) = make_store(0, 0x100, sta_done=UNKNOWN)
        sta.uop = Uop(seq=0, pc=store_pc, uclass=UopClass.STA,
                      mem=MemAccess(0x100))
        mob = build_mob((sta, std))
        scheme.on_rename_store(sta)

        # ...so the load must wait for it.
        load = make_load(pc=load_pc)
        scheme.on_rename_load(load)
        assert not scheme.may_dispatch(load, mob, now=10)

        # Once the store completes, the load is released.
        sta.data_ready = 5
        std.data_ready = 6
        assert scheme.may_dispatch(load, mob, now=10)

    def test_lfst_cleared_on_store_completion(self):
        scheme = StoreSetOrdering()
        trained = make_load(pc=0x500)
        trained.load.would_collide = True
        trained.load.collide_store_pc = 0x600
        scheme.on_retire_load(trained)

        sta = make_sta_iu(seq=0, pc=0x600)
        scheme.on_rename_store(sta)
        scheme.on_store_data_done(0)
        load = make_load(pc=0x500, seq=9)
        scheme.on_rename_load(load)
        mob = build_mob()
        assert scheme.may_dispatch(load, mob, now=0)

    def test_cyclic_clear_forgets(self):
        scheme = StoreSetOrdering(clear_interval=1)
        trained = make_load(pc=0x500)
        trained.load.would_collide = True
        trained.load.collide_store_pc = 0x600
        scheme.on_retire_load(trained)  # triggers the clear
        assert scheme.predictor.set_of(0x500) == \
               scheme.predictor.INVALID


class TestStoreBarrierOrdering:
    def _train_barrier(self, scheme, store_pc=0x600, times=3):
        for seq in range(times):
            load = make_load(pc=0x500, seq=100 + seq)
            load.load.would_collide = True
            load.load.collide_store_pc = store_pc
            load.load.collide_store_seq = 50 + seq
            scheme.on_retire_load(load)

    def test_untrained_store_is_transparent(self):
        scheme = StoreBarrierOrdering()
        (sta, std) = make_store(0, 0x100, sta_done=UNKNOWN)
        mob = build_mob((sta, std))
        scheme.on_rename_store(sta)
        assert scheme.may_dispatch(make_load(seq=9), mob, now=0)

    def test_barrier_fences_younger_loads(self):
        scheme = StoreBarrierOrdering()
        self._train_barrier(scheme, store_pc=0x600)
        (sta, std) = make_store(0, 0x100, sta_done=UNKNOWN)
        sta.uop = Uop(seq=0, pc=0x600, uclass=UopClass.STA,
                      mem=MemAccess(0x100))
        mob = build_mob((sta, std))
        scheme.on_rename_store(sta)
        # Any younger load is fenced, regardless of its address.
        assert not scheme.may_dispatch(make_load(seq=9, address=0x900),
                                       mob, now=0)
        # Older loads are not.
        older = make_load(seq=0)
        older.uop = Uop(seq=0, pc=0x500, uclass=UopClass.LOAD,
                        mem=MemAccess(0x900))
        # (re-wrap to keep seq < store seq consistent)
        assert scheme.may_dispatch(InflightUop(
            Uop(seq=0, pc=0x500, uclass=UopClass.LOAD,
                mem=MemAccess(0x900)), []), mob, now=0)

    def test_fence_lifts_when_store_completes(self):
        scheme = StoreBarrierOrdering()
        self._train_barrier(scheme)
        (sta, std) = make_store(0, 0x100, sta_done=2, std_done=3)
        sta.uop = Uop(seq=0, pc=0x600, uclass=UopClass.STA,
                      mem=MemAccess(0x100))
        mob = build_mob((sta, std))
        scheme.on_rename_store(sta)
        assert scheme.may_dispatch(make_load(seq=9), mob, now=10)

    def test_clean_history_decays_barrier(self):
        scheme = StoreBarrierOrdering()
        self._train_barrier(scheme, times=3)
        # Several clean completions of the same store PC decay it.
        for seq in range(10, 16):
            sta = make_sta_iu(seq=seq, pc=0x600)
            scheme.on_rename_store(sta)
            scheme.on_store_data_done(seq)
        assert not scheme.cache.is_barrier(0x600)
