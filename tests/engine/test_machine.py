"""Machine-level tests on hand-built micro-traces."""

import pytest

from repro.common.config import BASELINE_MACHINE, MachineConfig
from repro.common.types import LoadCollisionClass, UopClass
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.hitmiss.oracle import AlwaysHitHMP, AlwaysMissHMP
from tests.engine.helpers import MicroTrace


def run(trace, scheme="traditional", config=BASELINE_MACHINE, hmp=None):
    return Machine(config=config, scheme=make_scheme(scheme),
                   hmp=hmp).run(trace)


class TestBasicExecution:
    def test_empty_trace(self):
        result = run(MicroTrace().build())
        assert result.retired_uops == 0

    def test_all_uops_retire(self):
        t = MicroTrace()
        for i in range(20):
            t.alu(dst=i % 8)
        result = run(t.build())
        assert result.retired_uops == 20

    def test_cycles_positive_and_bounded(self):
        t = MicroTrace()
        for i in range(60):
            t.alu(dst=i % 8)
        result = run(t.build())
        # 60 independent INTs on 2 units: at least 30 cycles of issue,
        # plus pipeline fill; far less than serial execution.
        assert 10 <= result.cycles <= 120

    def test_dependency_chain_serialises(self):
        """dst->src chains must execute serially (1 IPC ceiling)."""
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(30):
            t.alu(dst=0, srcs=(0,))
        chained = run(t.build())

        t2 = MicroTrace()
        for _ in range(31):
            t2.alu(dst=0)  # independent: no srcs
        parallel = run(t2.build())
        assert chained.cycles > parallel.cycles

    def test_loads_counted(self):
        t = MicroTrace().load(dst=0, address=0x1000).load(dst=1,
                                                          address=0x2000)
        result = run(t.build())
        assert result.retired_loads == 2

    def test_deterministic(self):
        t = MicroTrace()
        for i in range(40):
            t.alu(dst=i % 4, srcs=(max(0, (i - 1) % 4),))
        a = run(t.build())
        b = run(t.build())
        assert a.cycles == b.cycles


class TestWidthLimits:
    def test_memory_ports_bound_throughput(self):
        """100 independent loads on 1 vs 2 memory units."""
        def mk():
            t = MicroTrace()
            for i in range(100):
                t.load(dst=i % 8, address=0x1000)  # same line: all hits
            return t.build()
        narrow = run(mk(), config=BASELINE_MACHINE.with_units(2, 1))
        wide = run(mk(), config=BASELINE_MACHINE.with_units(2, 2))
        assert narrow.cycles > wide.cycles

    def test_fp_unit_is_single(self):
        def mk(uclass):
            t = MicroTrace()
            for i in range(60):
                t.alu(dst=i % 8, uclass=uclass)
            return t.build()
        fp = run(mk(UopClass.FP))
        integer = run(mk(UopClass.INT))
        assert fp.cycles > integer.cycles


class TestBranchHandling:
    def test_mispredicted_branch_stalls_frontend(self):
        def mk(mispredict):
            t = MicroTrace()
            for i in range(10):
                t.alu(dst=i % 8)
                t.branch(mispredicted=mispredict)
            return t.build()
        clean = run(mk(False))
        dirty = run(mk(True))
        assert dirty.cycles >= clean.cycles + 50  # ~10 cycles per trap


class TestCollisionModel:
    def _store_load_pair(self, gap, data_src=15):
        """Store to X, `gap` filler ALUs, load from X."""
        t = MicroTrace()
        t.alu(dst=0)  # produce a value
        t.store(0x4000, data_src=0)
        for i in range(gap):
            t.alu(dst=1 + i % 4)
        t.load(dst=7, address=0x4000)
        t.alu(dst=6, srcs=(7,))
        return t.build()

    def test_close_pair_collides_under_traditional(self):
        result = run(self._store_load_pair(gap=0))
        assert result.collision_penalties >= 1

    def test_far_pair_does_not_collide(self):
        result = run(self._store_load_pair(gap=60))
        assert result.collision_penalties == 0

    def test_collision_costs_cycles(self):
        """Identical traces except the store data's readiness: a late
        STD makes the load collide (retry + penalty), an early STD lets
        it forward cleanly."""
        def mk(data_src):
            t = MicroTrace()
            t.alu(dst=0)
            for _ in range(6):
                t.alu(dst=0, srcs=(0,))  # chain exists in both traces
            t.store(0x4000, data_src=data_src)
            t.load(dst=7, address=0x4000)
            t.alu(dst=6, srcs=(7,))
            return t.build()
        slow = run(mk(data_src=0))    # data from the chain: late STD
        fast = run(mk(data_src=15))   # data from a stable reg: early STD
        assert slow.collision_penalties >= 1
        assert fast.collision_penalties == 0
        assert slow.cycles > fast.cycles

    def test_perfect_scheme_never_penalised(self):
        result = run(self._store_load_pair(gap=0), scheme="perfect")
        assert result.collision_penalties == 0


class TestClassification:
    def test_no_stores_means_no_conflict(self):
        t = MicroTrace()
        for i in range(10):
            t.load(dst=i % 8, address=0x1000 + 64 * i)
        result = run(t.build())
        assert result.load_classes[LoadCollisionClass.NOT_CONFLICTING] == 10

    def test_late_sta_makes_loads_conflicting(self):
        """A store whose address depends on a long chain leaves younger
        loads conflicting."""
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(6):
            t.alu(dst=0, srcs=(0,))  # 6-cycle chain feeding the STA
        t.store(0x4000, addr_src=0)
        t.load(dst=7, address=0x9000)  # different address: ANC
        result = run(t.build())
        anc = (result.load_classes[LoadCollisionClass.ANC_PNC]
               + result.load_classes[LoadCollisionClass.ANC_PC])
        assert anc == 1

    def test_classified_loads_sum_to_retired(self):
        t = MicroTrace()
        t.store(0x4000)
        for i in range(5):
            t.load(dst=i % 8, address=0x1000 + 64 * i)
        result = run(t.build())
        assert result.classified_loads == result.retired_loads


class TestHitMissIntegration:
    def test_always_miss_hmp_delays_dependents(self):
        """AH-PM: dependents wait for the hit indication.  On a chain of
        address-dependent hitting loads the 5-cycle delay compounds per
        hop, so the pessimistic predictor loses clearly."""
        def mk():
            t = MicroTrace()
            t.load(dst=0, address=0x1000)  # warm the line
            t.alu(dst=4, srcs=(0,))
            for _ in range(100):
                t.alu(dst=4, srcs=(4,))  # chain spans the memory fill
            t.load(dst=1, address=0x1000, addr_src=4)
            for i in range(30):
                # Each load's address depends on the previous load.
                t.load(dst=1, address=0x1000, addr_src=1)
            return t.build()
        optimistic = run(mk(), hmp=AlwaysHitHMP())
        pessimistic = run(mk(), hmp=AlwaysMissHMP())
        assert optimistic.hitmiss.miss_rate < 0.2  # premise: hit-heavy
        # 30 chained hops, ~5 extra cycles per hop for predicted-miss.
        assert pessimistic.cycles > optimistic.cycles + 50

    def test_hitmiss_stats_populated(self):
        t = MicroTrace()
        for i in range(10):
            t.load(dst=i % 8, address=0x1000 + 0x4000 * i)  # cold misses
        result = run(t.build())
        assert result.hitmiss.total == 10
        assert result.hitmiss.miss_rate > 0.5

    def test_squashes_on_mispredicted_miss(self):
        """Dependents of a cold (missing) load issue optimistically and
        squash under the always-hit default."""
        t = MicroTrace()
        t.load(dst=0, address=0x9000)  # cold miss
        t.alu(dst=1, srcs=(0,))
        result = run(t.build())
        assert result.squashed_issues >= 1


class TestWindowEffects:
    def test_larger_window_not_slower(self):
        def mk():
            t = MicroTrace()
            for i in range(200):
                t.load(dst=i % 4, address=0x1000)
                t.alu(dst=4 + i % 4, srcs=(i % 4,))
            return t.build()
        small = run(mk(), config=BASELINE_MACHINE.with_window(8))
        large = run(mk(), config=BASELINE_MACHINE.with_window(64))
        assert large.cycles <= small.cycles

    def test_livelock_guard(self):
        t = MicroTrace().alu(dst=0)
        with pytest.raises(RuntimeError):
            Machine().run(t.build(), max_cycles=0)


class TestIpcAndSpeedup:
    def test_ipc_computed(self):
        t = MicroTrace()
        for i in range(50):
            t.alu(dst=i % 8)
        result = run(t.build())
        assert result.ipc == pytest.approx(result.retired_uops
                                           / result.cycles)

    def test_speedup_requires_same_trace(self):
        a = run(MicroTrace().alu(dst=0).build("one"))
        b = run(MicroTrace().alu(dst=0).build("two"))
        with pytest.raises(ValueError):
            a.speedup_over(b)
