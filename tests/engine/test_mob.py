"""Tests for the Memory Ordering Buffer."""

import pytest

from repro.common.types import MemAccess, Uop, UopClass
from repro.engine.inflight import UNKNOWN, InflightUop
from repro.engine.mob import MemoryOrderBuffer


def make_store(seq, address, sta_done=UNKNOWN, std_done=UNKNOWN):
    """A store record wired into a MOB, with explicit completion times."""
    sta_uop = Uop(seq=seq, pc=0x100 + seq, uclass=UopClass.STA,
                  mem=MemAccess(address))
    std_uop = Uop(seq=seq + 1, pc=0x101 + seq, uclass=UopClass.STD,
                  sta_seq=seq)
    sta = InflightUop(sta_uop, [])
    std = InflightUop(std_uop, [])
    sta.data_ready = sta_done
    std.data_ready = std_done
    return sta, std


def build_mob(*stores):
    mob = MemoryOrderBuffer()
    for sta, std in stores:
        mob.insert_sta(sta)
        mob.attach_std(std)
    return mob


class TestLifecycle:
    def test_insert_requires_mem(self):
        mob = MemoryOrderBuffer()
        bad = InflightUop(Uop(seq=0, pc=0x1, uclass=UopClass.INT), [])
        with pytest.raises(ValueError):
            mob.insert_sta(bad)

    def test_attach_std_unknown_sta(self):
        mob = MemoryOrderBuffer()
        std = InflightUop(Uop(seq=5, pc=0x1, uclass=UopClass.STD,
                              sta_seq=99), [])
        with pytest.raises(KeyError):
            mob.attach_std(std)

    def test_remove_retired(self):
        mob = build_mob(make_store(0, 0x100), make_store(10, 0x200))
        mob.remove_retired(5)
        assert len(mob) == 1


class TestConflictQueries:
    def test_unknown_sta_detected(self):
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN))
        assert mob.has_unknown_sta(load_seq=5, now=10)

    def test_known_sta_not_conflicting(self):
        mob = build_mob(make_store(0, 0x100, sta_done=5))
        assert not mob.has_unknown_sta(load_seq=5, now=10)

    def test_sta_in_future_still_unknown(self):
        mob = build_mob(make_store(0, 0x100, sta_done=20))
        assert mob.has_unknown_sta(load_seq=5, now=10)

    def test_younger_stores_ignored(self):
        mob = build_mob(make_store(10, 0x100, sta_done=UNKNOWN))
        assert not mob.has_unknown_sta(load_seq=5, now=0)

    def test_all_older_complete(self):
        mob = build_mob(make_store(0, 0x100, sta_done=3, std_done=4),
                        make_store(2, 0x200, sta_done=3, std_done=UNKNOWN))
        assert not mob.all_older_complete(load_seq=9, now=10)
        assert mob.all_older_complete(load_seq=1, now=10)

    def test_all_older_stds_done(self):
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN, std_done=4))
        assert mob.all_older_stds_done(load_seq=9, now=10)


class TestCollisionQueries:
    def test_finds_nearest_incomplete_match(self):
        mob = build_mob(
            make_store(0, 0x100, sta_done=1, std_done=UNKNOWN),
            make_store(2, 0x100, sta_done=1, std_done=UNKNOWN),
            make_store(4, 0x200, sta_done=1, std_done=2),
        )
        record, distance = mob.colliding_store(9, MemAccess(0x100), now=10)
        assert record is not None
        assert record.seq == 2  # nearest matching store
        # Distance counts older stores from the nearest: 0x200 store is
        # distance 1, the matching one is distance 2.
        assert distance == 2

    def test_complete_store_does_not_collide(self):
        mob = build_mob(make_store(0, 0x100, sta_done=1, std_done=2))
        record, distance = mob.colliding_store(9, MemAccess(0x100), now=10)
        assert record is None and distance is None

    def test_unknown_address_store_collides(self):
        """A store whose STA hasn't executed is incomplete even if its
        data is ready — the load cannot forward from it."""
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN, std_done=2))
        record, _ = mob.colliding_store(9, MemAccess(0x100), now=10)
        assert record is not None

    def test_non_overlapping_no_collision(self):
        mob = build_mob(make_store(0, 0x100, std_done=UNKNOWN))
        record, _ = mob.colliding_store(9, MemAccess(0x200), now=10)
        assert record is None

    def test_partial_overlap_collides(self):
        mob = build_mob(make_store(0, 0x100, std_done=UNKNOWN))
        record, _ = mob.colliding_store(9, MemAccess(0x102, 4), now=10)
        assert record is not None

    def test_matching_unknown_sta(self):
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN))
        assert mob.matching_unknown_sta(9, MemAccess(0x100), now=10)
        assert not mob.matching_unknown_sta(9, MemAccess(0x300), now=10)


class TestDistanceQueries:
    def test_complete_beyond_distance(self):
        # Stores at distances 1 (nearest) and 2 from the load.
        mob = build_mob(
            make_store(0, 0x200, sta_done=1, std_done=2),    # distance 2
            make_store(2, 0x100, sta_done=UNKNOWN),          # distance 1
        )
        # Distance 2 rule: may bypass the nearest store; the store at
        # distance >= 2 is complete.
        assert mob.complete_beyond_distance(9, now=10, distance=2)
        # Distance 1 rule: must wait for everything; nearest incomplete.
        assert not mob.complete_beyond_distance(9, now=10, distance=1)

    def test_distance_beyond_all_stores(self):
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN))
        assert mob.complete_beyond_distance(9, now=0, distance=5)


class TestStoreRecord:
    def test_std_ready_cycle(self):
        (sta, std) = make_store(0, 0x100, std_done=7)
        mob = build_mob((sta, std))
        record = mob.older_stores(9)[0]
        assert record.std_ready_cycle() == 7

    def test_std_missing(self):
        sta_uop = Uop(seq=0, pc=0x100, uclass=UopClass.STA,
                      mem=MemAccess(0x100))
        mob = MemoryOrderBuffer()
        record = mob.insert_sta(InflightUop(sta_uop, []))
        assert record.std_ready_cycle() is None
        assert not record.data_done(100)
