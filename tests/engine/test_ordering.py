"""Unit tests for the six ordering schemes' dispatch predicates."""

import pytest

from repro.cht.full import FullCHT
from repro.common.types import MemAccess, Uop, UopClass
from repro.engine.inflight import UNKNOWN, InflightUop
from repro.engine.mob import MemoryOrderBuffer
from repro.engine.ordering import (
    ExclusiveOrdering,
    InclusiveOrdering,
    OpportunisticOrdering,
    PerfectOrdering,
    PostponingOrdering,
    SCHEME_NAMES,
    TraditionalOrdering,
    make_scheme,
)
from tests.engine.test_mob import build_mob, make_store


def make_load(seq=9, address=0x100):
    uop = Uop(seq=seq, pc=0x500, uclass=UopClass.LOAD,
              mem=MemAccess(address))
    return InflightUop(uop, [])


class TestFactory:
    def test_all_names_construct(self):
        for name in SCHEME_NAMES:
            assert make_scheme(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheme("telepathic")

    def test_cht_schemes_get_default_table(self):
        scheme = make_scheme("exclusive")
        assert scheme.uses_cht
        assert scheme.cht.track_distance

    def test_custom_cht_injected(self):
        cht = FullCHT(n_entries=128)
        scheme = make_scheme("inclusive", cht=cht)
        assert scheme.cht is cht


class TestTraditional:
    def test_waits_for_unknown_sta(self):
        mob = build_mob(make_store(0, 0x999, sta_done=UNKNOWN))
        assert not TraditionalOrdering().may_dispatch(make_load(), mob, 10)

    def test_passes_pending_stds(self):
        """Rule I: loads may pass stores whose address is known."""
        mob = build_mob(make_store(0, 0x999, sta_done=1, std_done=UNKNOWN))
        assert TraditionalOrdering().may_dispatch(make_load(), mob, 10)


class TestOpportunistic:
    def test_never_waits(self):
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN))
        assert OpportunisticOrdering().may_dispatch(make_load(), mob, 10)


def _primed(scheme_cls, colliding, distance=None):
    """Scheme with a CHT pre-trained so the test load predicts as given."""
    cht = FullCHT(n_entries=128, track_distance=True)
    if colliding:
        for _ in range(3):
            cht.train(0x500, True, distance or 1)
    scheme = scheme_cls(cht)
    return scheme


class TestPostponing:
    def test_noncolliding_behaves_traditional(self):
        scheme = _primed(PostponingOrdering, colliding=False)
        load = make_load()
        scheme.on_rename_load(load)
        mob = build_mob(make_store(0, 0x999, sta_done=1, std_done=UNKNOWN))
        assert scheme.may_dispatch(load, mob, 10)

    def test_predicted_colliding_waits_for_stds(self):
        scheme = _primed(PostponingOrdering, colliding=True)
        load = make_load()
        scheme.on_rename_load(load)
        assert load.load.predicted_colliding
        mob = build_mob(make_store(0, 0x999, sta_done=1, std_done=UNKNOWN))
        assert not scheme.may_dispatch(load, mob, 10)

    def test_still_waits_for_stas(self):
        scheme = _primed(PostponingOrdering, colliding=False)
        load = make_load()
        scheme.on_rename_load(load)
        mob = build_mob(make_store(0, 0x999, sta_done=UNKNOWN, std_done=1))
        assert not scheme.may_dispatch(load, mob, 10)


class TestInclusive:
    def test_noncolliding_ignores_all_stores(self):
        """The inclusive win: predicted-non-colliding loads fly past
        unresolved STAs (Traditional would stall)."""
        scheme = _primed(InclusiveOrdering, colliding=False)
        load = make_load()
        scheme.on_rename_load(load)
        mob = build_mob(make_store(0, 0x999, sta_done=UNKNOWN))
        assert scheme.may_dispatch(load, mob, 10)

    def test_colliding_waits_for_everything(self):
        scheme = _primed(InclusiveOrdering, colliding=True)
        load = make_load()
        scheme.on_rename_load(load)
        mob = build_mob(make_store(0, 0x999, sta_done=1, std_done=UNKNOWN))
        assert not scheme.may_dispatch(load, mob, 10)

    def test_colliding_released_when_all_complete(self):
        scheme = _primed(InclusiveOrdering, colliding=True)
        load = make_load()
        scheme.on_rename_load(load)
        mob = build_mob(make_store(0, 0x999, sta_done=1, std_done=2))
        assert scheme.may_dispatch(load, mob, 10)


class TestExclusive:
    def test_distance_allows_bypassing_nearer_stores(self):
        scheme = _primed(ExclusiveOrdering, colliding=True, distance=2)
        load = make_load()
        scheme.on_rename_load(load)
        assert load.load.predicted_distance == 2
        # Nearest store (distance 1) incomplete; distance-2 store done.
        mob = build_mob(
            make_store(0, 0x300, sta_done=1, std_done=2),     # distance 2
            make_store(2, 0x999, sta_done=UNKNOWN),           # distance 1
        )
        assert scheme.may_dispatch(load, mob, 10)

    def test_distance_still_waits_for_far_stores(self):
        scheme = _primed(ExclusiveOrdering, colliding=True, distance=2)
        load = make_load()
        scheme.on_rename_load(load)
        mob = build_mob(
            make_store(0, 0x300, sta_done=UNKNOWN),           # distance 2
            make_store(2, 0x999, sta_done=1, std_done=2),     # distance 1
        )
        assert not scheme.may_dispatch(load, mob, 10)

    def test_without_distance_falls_back_to_inclusive(self):
        cht = FullCHT(n_entries=128, track_distance=True)
        cht.train(0x500, True, None)  # colliding, no distance learned
        scheme = ExclusiveOrdering(cht)
        load = make_load()
        scheme.on_rename_load(load)
        mob = build_mob(make_store(0, 0x999, std_done=UNKNOWN, sta_done=1))
        assert not scheme.may_dispatch(load, mob, 10)


class TestPerfect:
    def test_delays_only_true_collisions(self):
        scheme = PerfectOrdering()
        mob = build_mob(make_store(0, 0x100, sta_done=UNKNOWN))
        colliding = make_load(address=0x100)
        independent = make_load(address=0x200)
        assert not scheme.may_dispatch(colliding, mob, 10)
        assert scheme.may_dispatch(independent, mob, 10)

    def test_releases_at_store_completion(self):
        scheme = PerfectOrdering()
        mob = build_mob(make_store(0, 0x100, sta_done=1, std_done=2))
        assert scheme.may_dispatch(make_load(address=0x100), mob, 10)


class TestChtTraining:
    def test_retire_trains_cht(self):
        cht = FullCHT(n_entries=128)
        scheme = InclusiveOrdering(cht)
        load = make_load()
        scheme.on_rename_load(load)
        load.load.conflicting = True
        load.load.would_collide = True
        load.load.collide_distance = 1
        scheme.on_retire_load(load)
        assert cht.lookup(0x500).colliding

    def test_unclassified_load_not_trained(self):
        cht = FullCHT(n_entries=128)
        scheme = InclusiveOrdering(cht)
        load = make_load()
        scheme.on_rename_load(load)
        scheme.on_retire_load(load)  # conflicting is None: no training
        assert not cht.lookup(0x500).colliding
