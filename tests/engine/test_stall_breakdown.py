"""Tests for stall-cause attribution."""

import pytest

from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from tests.engine.helpers import MicroTrace


def run(trace, scheme="traditional", **machine_attrs):
    machine = Machine(scheme=make_scheme(scheme))
    machine.collect_stall_breakdown = True
    for name, value in machine_attrs.items():
        setattr(machine, name, value)
    return machine.run(trace)


class TestCauses:
    def test_disabled_by_default(self):
        result = Machine(scheme=make_scheme("traditional")).run(
            MicroTrace().alu(dst=0).build())
        assert result.stall_breakdown == {}

    def test_operand_stalls_from_chains(self):
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(20):
            t.alu(dst=0, srcs=(0,))
        result = run(t.build())
        assert result.stall_breakdown.get("operands", 0) > 0
        assert result.stall_breakdown.get("ordering", 0) == 0

    def test_port_stalls_from_width_pressure(self):
        t = MicroTrace()
        for i in range(60):
            t.alu(dst=i % 8)  # independent: only ports limit issue
        result = run(t.build())
        assert result.stall_breakdown.get("port", 0) > 0

    def test_ordering_stalls_from_late_sta(self):
        """A load behind a slow STA accrues ordering stalls under
        Traditional but none under Perfect (different address)."""
        def mk():
            t = MicroTrace()
            t.alu(dst=0)
            for _ in range(8):
                t.alu(dst=0, srcs=(0,))
            t.store(0x4000, addr_src=0)  # address resolves late
            t.load(dst=7, address=0x9000)
            return t.build()
        traditional = run(mk(), scheme="traditional")
        perfect = run(mk(), scheme="perfect")
        assert traditional.stall_breakdown.get("ordering", 0) > 0
        assert perfect.stall_breakdown.get("ordering", 0) == 0

    def test_better_schemes_reduce_ordering_stalls(self):
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed
        trace = build_trace(profile_for("cd"), n_uops=6000,
                            seed=trace_seed("cd"), name="cd")
        traditional = run(trace, scheme="traditional")
        perfect = run(trace, scheme="perfect")
        assert perfect.stall_breakdown["ordering"] < \
               traditional.stall_breakdown["ordering"]
