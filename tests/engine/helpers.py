"""Hand-built micro-traces for engine tests.

These construct exact uop sequences so tests can reason about cycles
and ordering precisely, instead of relying on the stochastic builder.
"""

from typing import List, Optional, Tuple

from repro.common.types import MemAccess, Uop, UopClass
from repro.trace.trace import Trace


class MicroTrace:
    """Tiny fluent builder for hand-written uop sequences."""

    def __init__(self) -> None:
        self.uops: List[Uop] = []
        self._pc = 0x1000

    def _next_pc(self) -> int:
        pc = self._pc
        self._pc += 4
        return pc

    def alu(self, dst: int, srcs: Tuple[int, ...] = (),
            uclass: UopClass = UopClass.INT) -> "MicroTrace":
        self.uops.append(Uop(seq=len(self.uops), pc=self._next_pc(),
                             uclass=uclass, srcs=srcs, dst=dst))
        return self

    def load(self, dst: int, address: int, addr_src: int = 15,
             pc: Optional[int] = None) -> "MicroTrace":
        self.uops.append(Uop(seq=len(self.uops),
                             pc=pc if pc is not None else self._next_pc(),
                             uclass=UopClass.LOAD, srcs=(addr_src,),
                             dst=dst, mem=MemAccess(address)))
        return self

    def store(self, address: int, addr_src: int = 15,
              data_src: int = 15) -> "MicroTrace":
        sta_pc = self._next_pc()
        self.uops.append(Uop(seq=len(self.uops), pc=sta_pc,
                             uclass=UopClass.STA, srcs=(addr_src,),
                             mem=MemAccess(address)))
        self.uops.append(Uop(seq=len(self.uops), pc=sta_pc + 1,
                             uclass=UopClass.STD, srcs=(data_src,),
                             sta_seq=self.uops[-1].seq))
        return self

    def branch(self, src: int = 15, mispredicted: bool = False,
               pc: Optional[int] = None) -> "MicroTrace":
        self.uops.append(Uop(seq=len(self.uops),
                             pc=pc if pc is not None else self._next_pc(),
                             uclass=UopClass.BRANCH, srcs=(src,),
                             taken=True, mispredicted=mispredicted))
        return self

    def build(self, name: str = "micro") -> Trace:
        return Trace(name=name, uops=list(self.uops))
