"""Tests for the performance report renderers."""

import pytest

from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.engine.report import compare_report, performance_report
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed


@pytest.fixture(scope="module")
def rich_result():
    trace = build_trace(profile_for("cd"), n_uops=4000,
                        seed=trace_seed("cd"), name="cd")
    machine = Machine(scheme=make_scheme("inclusive"))
    machine.collect_stall_breakdown = True
    machine.collect_occupancy = True
    machine.record_timeline = True
    return machine.run(trace)


@pytest.fixture(scope="module")
def plain_results():
    trace = build_trace(profile_for("cd"), n_uops=4000,
                        seed=trace_seed("cd"), name="cd")
    return [Machine(scheme=make_scheme(s)).run(trace)
            for s in ("traditional", "inclusive", "perfect")]


class TestPerformanceReport:
    def test_headline_fields(self, rich_result):
        text = performance_report(rich_result)
        assert "cd" in text and "inclusive" in text
        assert "IPC" in text
        assert "Figure 1 classification" in text

    def test_optional_sections_present_when_collected(self, rich_result):
        text = performance_report(rich_result)
        assert "stalled uop-cycles" in text
        assert "window occupancy" in text
        assert "average stage times" in text

    def test_optional_sections_absent_when_not_collected(
            self, plain_results):
        text = performance_report(plain_results[0])
        assert "stalled uop-cycles" not in text
        assert "window occupancy" not in text

    def test_baseline_speedup_line(self, plain_results):
        text = performance_report(plain_results[2],
                                  baseline=plain_results[0])
        assert "speedup over 'traditional'" in text


class TestCompareReport:
    def test_rows_per_scheme(self, plain_results):
        text = compare_report(plain_results)
        for scheme in ("traditional", "inclusive", "perfect"):
            assert scheme in text

    def test_first_result_is_baseline(self, plain_results):
        text = compare_report(plain_results)
        first_row = text.splitlines()[3]
        assert "1.000" in first_row

    def test_rejects_mixed_traces(self, plain_results):
        other = Machine(scheme=make_scheme("traditional")).run(
            build_trace(profile_for("gcc"), n_uops=1000, seed=1,
                        name="gcc"))
        with pytest.raises(ValueError):
            compare_report([plain_results[0], other])

    def test_empty(self):
        assert compare_report([]) == "(no results)"
