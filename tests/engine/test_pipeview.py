"""Tests for timeline recording and the pipeline viewer."""

import pytest

from repro.common.types import UopClass
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.engine.pipeview import (
    UopTimeline,
    loads_only,
    render_timeline,
    summarize_timeline,
)
from tests.engine.helpers import MicroTrace


def run_with_timeline(trace, scheme="traditional"):
    machine = Machine(scheme=make_scheme(scheme))
    machine.record_timeline = True
    return machine.run(trace)


@pytest.fixture()
def collision_result():
    t = MicroTrace()
    t.alu(dst=0)
    for _ in range(4):
        t.alu(dst=0, srcs=(0,))
    t.store(0x4000, data_src=0)
    t.load(dst=7, address=0x4000)
    t.alu(dst=6, srcs=(7,))
    return run_with_timeline(t.build())


class TestRecording:
    def test_disabled_by_default(self):
        result = Machine(scheme=make_scheme("traditional")).run(
            MicroTrace().alu(dst=0).build())
        assert result.timeline == []

    def test_one_record_per_uop(self, collision_result):
        assert len(collision_result.timeline) == \
               collision_result.retired_uops

    def test_lifecycle_ordering(self, collision_result):
        for u in collision_result.timeline:
            assert u.rename_cycle <= u.issue_cycle
            assert u.issue_cycle <= u.complete_cycle
            assert u.complete_cycle <= u.retire_cycle

    def test_collided_load_flagged(self, collision_result):
        loads = loads_only(collision_result.timeline)
        assert len(loads) == 1
        assert loads[0].collided

    def test_retire_in_program_order(self, collision_result):
        seqs = [u.seq for u in collision_result.timeline]
        assert seqs == sorted(seqs)
        retires = [u.retire_cycle for u in collision_result.timeline]
        assert all(a <= b for a, b in zip(retires, retires[1:]))


class TestStageTimes:
    def test_window_wait_of_chained_uops_grows(self):
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(6):
            t.alu(dst=0, srcs=(0,))
        result = run_with_timeline(t.build())
        waits = [u.window_wait for u in result.timeline]
        assert waits == sorted(waits)  # each waits for its predecessor

    def test_summary_fields(self, collision_result):
        summary = summarize_timeline(collision_result.timeline)
        assert summary["uops"] == 9
        assert summary["collided_loads"] == 1
        assert summary["squashed_uops"] >= 1
        assert summary["avg_window_wait"] > 0

    def test_summary_empty(self):
        assert summarize_timeline([]) == {"uops": 0}


class TestRendering:
    def test_markers_present(self, collision_result):
        text = render_timeline(collision_result.timeline)
        assert "r" in text and "i" in text and "R" in text
        assert "LOAD" in text
        assert "!" in text  # the collided load marker

    def test_empty(self):
        assert render_timeline([]) == "(empty timeline)"

    def test_window_clipping(self, collision_result):
        text = render_timeline(collision_result.timeline,
                               start_cycle=0, end_cycle=5)
        # All rows share the clipped width.
        rows = text.splitlines()[1:]
        widths = {row.index("|") for row in rows}
        assert len(widths) == 1

    def test_max_uops_cap(self):
        t = MicroTrace()
        for i in range(100):
            t.alu(dst=i % 8)
        result = run_with_timeline(t.build())
        text = render_timeline(result.timeline, max_uops=10)
        assert len(text.splitlines()) == 11  # header + 10 rows


HEADER = ("cycles 0..8   (r=rename  ==wait  i=issue  ~=execute  "
          "c=complete  .=wait-retire  R=retire)")


class TestGoldenOutput:
    """Exact-output tests pinning the diagram format.

    Hand-built records keep the expectations independent of engine
    timing; one machine-driven golden then pins the full picture for
    the canonical store->load collision micro-trace.
    """

    def test_handbuilt_rows_exact(self):
        timeline = [
            # Plain 1-cycle op: every stage on its own cycle.
            UopTimeline(seq=0, pc=0x0, uclass=UopClass.INT,
                        rename_cycle=0, issue_cycle=1,
                        complete_cycle=2, retire_cycle=3),
            # Collided load ("!"): window wait, execute, no retire wait.
            UopTimeline(seq=1, pc=0x4, uclass=UopClass.LOAD,
                        rename_cycle=0, issue_cycle=4,
                        complete_cycle=7, retire_cycle=8,
                        collided=True),
            # Squashed uop ("s") with a zero-length execute
            # (issue == complete, so "c" lands on the issue cell).
            UopTimeline(seq=2, pc=0x8, uclass=UopClass.INT,
                        rename_cycle=1, issue_cycle=5,
                        complete_cycle=5, retire_cycle=8,
                        squashes=2),
            # retire == complete: "R" lands on the complete cell.
            UopTimeline(seq=3, pc=0xc, uclass=UopClass.STA,
                        rename_cycle=2, issue_cycle=3,
                        complete_cycle=6, retire_cycle=6),
        ]
        expected = "\n".join([
            HEADER,
            "     0 INT    |ricR     |",
            "     1 LOAD  !|r===i~~cR|",
            "     2 INT   s| r===c..R|",
            "     3 STA    |  ri~~R  |",
        ])
        assert render_timeline(timeline) == expected

    def test_collision_microtrace_golden(self):
        """Full diagram of the store->load collision trace under the
        Traditional scheme: the load stalls behind the unresolved STD
        ("=") and its squashed dependent re-issues late ("s")."""
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(4):
            t.alu(dst=0, srcs=(0,))
        t.store(0x4000, data_src=0)
        t.load(dst=7, address=0x4000)
        t.alu(dst=6, srcs=(7,))
        result = run_with_timeline(t.build())
        expected = "\n".join([
            "cycles 0..30   (r=rename  ==wait  i=issue  ~=execute  "
            "c=complete  .=wait-retire  R=retire)",
            "     0 INT    |riR                            |",
            "     1 INT    |r=iR                           |",
            "     2 INT    |r==iR                          |",
            "     3 INT    |r===iR                         |",
            "     4 INT    |r====iR                        |",
            "     5 STA    |ri~~c.R                        |",
            "     6 STD    | r====i~~R                     |",
            "     7 LOAD  !| r===========i~~~~~~~~~~~~~~~R |",
            "     8 INT   s| r===========================iR|",
        ])
        assert render_timeline(result.timeline) == expected
