"""Tests for timeline recording and the pipeline viewer."""

import pytest

from repro.common.types import UopClass
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.engine.pipeview import (
    UopTimeline,
    loads_only,
    render_timeline,
    summarize_timeline,
)
from tests.engine.helpers import MicroTrace


def run_with_timeline(trace, scheme="traditional"):
    machine = Machine(scheme=make_scheme(scheme))
    machine.record_timeline = True
    return machine.run(trace)


@pytest.fixture()
def collision_result():
    t = MicroTrace()
    t.alu(dst=0)
    for _ in range(4):
        t.alu(dst=0, srcs=(0,))
    t.store(0x4000, data_src=0)
    t.load(dst=7, address=0x4000)
    t.alu(dst=6, srcs=(7,))
    return run_with_timeline(t.build())


class TestRecording:
    def test_disabled_by_default(self):
        result = Machine(scheme=make_scheme("traditional")).run(
            MicroTrace().alu(dst=0).build())
        assert result.timeline == []

    def test_one_record_per_uop(self, collision_result):
        assert len(collision_result.timeline) == \
               collision_result.retired_uops

    def test_lifecycle_ordering(self, collision_result):
        for u in collision_result.timeline:
            assert u.rename_cycle <= u.issue_cycle
            assert u.issue_cycle <= u.complete_cycle
            assert u.complete_cycle <= u.retire_cycle

    def test_collided_load_flagged(self, collision_result):
        loads = loads_only(collision_result.timeline)
        assert len(loads) == 1
        assert loads[0].collided

    def test_retire_in_program_order(self, collision_result):
        seqs = [u.seq for u in collision_result.timeline]
        assert seqs == sorted(seqs)
        retires = [u.retire_cycle for u in collision_result.timeline]
        assert all(a <= b for a, b in zip(retires, retires[1:]))


class TestStageTimes:
    def test_window_wait_of_chained_uops_grows(self):
        t = MicroTrace()
        t.alu(dst=0)
        for _ in range(6):
            t.alu(dst=0, srcs=(0,))
        result = run_with_timeline(t.build())
        waits = [u.window_wait for u in result.timeline]
        assert waits == sorted(waits)  # each waits for its predecessor

    def test_summary_fields(self, collision_result):
        summary = summarize_timeline(collision_result.timeline)
        assert summary["uops"] == 9
        assert summary["collided_loads"] == 1
        assert summary["squashed_uops"] >= 1
        assert summary["avg_window_wait"] > 0

    def test_summary_empty(self):
        assert summarize_timeline([]) == {"uops": 0}


class TestRendering:
    def test_markers_present(self, collision_result):
        text = render_timeline(collision_result.timeline)
        assert "r" in text and "i" in text and "R" in text
        assert "LOAD" in text
        assert "!" in text  # the collided load marker

    def test_empty(self):
        assert render_timeline([]) == "(empty timeline)"

    def test_window_clipping(self, collision_result):
        text = render_timeline(collision_result.timeline,
                               start_cycle=0, end_cycle=5)
        # All rows share the clipped width.
        rows = text.splitlines()[1:]
        widths = {row.index("|") for row in rows}
        assert len(widths) == 1

    def test_max_uops_cap(self):
        t = MicroTrace()
        for i in range(100):
            t.alu(dst=i % 8)
        result = run_with_timeline(t.build())
        text = render_timeline(result.timeline, max_uops=10)
        assert len(text.splitlines()) == 11  # header + 10 rows
