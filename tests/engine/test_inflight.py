"""Unit tests for in-flight uop wakeup/verification logic."""

import pytest

from repro.common.types import MemAccess, Uop, UopClass
from repro.engine.inflight import UNKNOWN, InflightUop


def alu(seq=0, srcs=(), dst=0):
    return Uop(seq=seq, pc=0x100 + 4 * seq, uclass=UopClass.INT,
               srcs=srcs, dst=dst)


class TestSourcesAnnounced:
    def test_no_producers_ready_immediately(self):
        iu = InflightUop(alu(), [])
        assert iu.sources_announced(0)

    def test_waits_for_producer_announce(self):
        producer = InflightUop(alu(0), [])
        consumer = InflightUop(alu(1, srcs=(0,)), [producer])
        assert not consumer.sources_announced(5)  # announce UNKNOWN
        producer.announce_ready = 7
        assert not consumer.sources_announced(6)
        assert consumer.sources_announced(7)

    def test_ready_floor_blocks(self):
        iu = InflightUop(alu(), [])
        iu.ready_floor = 10
        assert not iu.sources_announced(9)
        assert iu.sources_announced(10)

    def test_multiple_producers_all_required(self):
        p1 = InflightUop(alu(0), [])
        p2 = InflightUop(alu(1), [])
        consumer = InflightUop(alu(2, srcs=(0, 1)), [p1, p2])
        p1.announce_ready = 3
        p2.announce_ready = 8
        assert not consumer.sources_announced(5)
        assert consumer.sources_announced(8)


class TestSourcesActuallyReady:
    def test_unknown_producer_reports_unknown(self):
        producer = InflightUop(alu(0), [])
        consumer = InflightUop(alu(1, srcs=(0,)), [producer])
        assert consumer.sources_actually_ready(100) == UNKNOWN

    def test_latest_producer_wins(self):
        p1 = InflightUop(alu(0), [])
        p2 = InflightUop(alu(1), [])
        p1.data_ready = 3
        p2.data_ready = 9
        consumer = InflightUop(alu(2, srcs=(0, 1)), [p1, p2])
        assert consumer.sources_actually_ready(100) == 9

    def test_speculative_wakeup_gap(self):
        """The announce/data divergence the squash model relies on."""
        producer = InflightUop(alu(0), [])
        producer.announce_ready = 5   # optimistic promise
        producer.data_ready = 20      # actual arrival
        consumer = InflightUop(alu(1, srcs=(0,)), [producer])
        assert consumer.sources_announced(5)
        assert consumer.sources_actually_ready(5) == 20  # would squash


class TestLifecycleFlags:
    def test_done_requires_data_and_no_pending_collision(self):
        iu = InflightUop(alu(), [])
        assert not iu.done
        iu.data_ready = 4
        assert iu.done
        iu.pending_collision = True
        assert not iu.done

    def test_retirable_honours_cycle(self):
        iu = InflightUop(alu(), [])
        iu.data_ready = 4
        assert not iu.retirable(3)
        assert iu.retirable(4)

    def test_load_gets_load_info(self):
        load = Uop(seq=0, pc=0x100, uclass=UopClass.LOAD,
                   mem=MemAccess(0x40))
        assert InflightUop(load, []).load is not None
        assert InflightUop(alu(), []).load is None
