"""Tests for the live branch-predictor front end and occupancy stats."""

import pytest

from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.predictors.base import AlwaysPredictor
from repro.predictors.bimodal import BimodalPredictor
from tests.engine.helpers import MicroTrace


def branchy_trace(n=60, taken=True):
    t = MicroTrace()
    for i in range(n):
        t.alu(dst=i % 8)
        t.branch(mispredicted=False)
    # MicroTrace branches are always taken=True.
    return t.build()


class TestLiveBranchPredictor:
    def test_perfect_static_predictor_never_stalls(self):
        """All branches are taken; an always-taken predictor is perfect."""
        result = Machine(scheme=make_scheme("traditional"),
                         branch_predictor=AlwaysPredictor(True)).run(
            branchy_trace())
        assert result.branch_mispredicts == 0
        assert result.branch_accuracy == 1.0

    def test_wrong_static_predictor_stalls_everything(self):
        result = Machine(scheme=make_scheme("traditional"),
                         branch_predictor=AlwaysPredictor(False)).run(
            branchy_trace())
        assert result.branch_mispredicts == result.branches

    def test_mispredicts_cost_cycles(self):
        good = Machine(scheme=make_scheme("traditional"),
                       branch_predictor=AlwaysPredictor(True)).run(
            branchy_trace())
        bad = Machine(scheme=make_scheme("traditional"),
                      branch_predictor=AlwaysPredictor(False)).run(
            branchy_trace())
        assert bad.cycles > good.cycles + 100

    def test_bimodal_learns_bias(self):
        """A bimodal predictor converges on a static branch's bias
        (each dynamic instance must share the branch's PC)."""
        t = MicroTrace()
        for i in range(80):
            t.alu(dst=i % 8)
            t.branch(pc=0x8000)  # one static, always-taken branch
        result = Machine(scheme=make_scheme("traditional"),
                         branch_predictor=BimodalPredictor(256)).run(
            t.build())
        assert result.branch_accuracy > 0.9

    def test_annotations_used_without_predictor(self):
        t = MicroTrace()
        for i in range(10):
            t.alu(dst=i % 8)
            t.branch(mispredicted=True)
        result = Machine(scheme=make_scheme("traditional")).run(t.build())
        assert result.branch_mispredicts == result.branches == 10

    def test_branches_counted(self):
        result = Machine(scheme=make_scheme("traditional")).run(
            branchy_trace(n=25))
        assert result.branches == 25


class TestOccupancyStats:
    def test_disabled_by_default(self):
        result = Machine(scheme=make_scheme("traditional")).run(
            branchy_trace())
        assert result.window_occupancy.total == 0

    def test_collected_when_enabled(self):
        machine = Machine(scheme=make_scheme("traditional"),
                          collect_occupancy=True)
        result = machine.run(branchy_trace())
        assert result.window_occupancy.total > 0
        # Occupancy can never exceed the window size.
        max_seen = max(k for k, _ in result.window_occupancy.items())
        assert max_seen <= machine.config.window_size


class TestIssueWidthHistogram:
    def test_bounded_by_total_units(self):
        machine = Machine(scheme=make_scheme("traditional"),
                          collect_occupancy=True)
        t = MicroTrace()
        for i in range(80):
            t.alu(dst=i % 8)
            t.load(dst=i % 4, address=0x1000)
        result = machine.run(t.build())
        total_units = (machine.config.units.n_int
                       + machine.config.units.n_mem
                       + machine.config.units.n_fp
                       + machine.config.units.n_complex)
        assert result.issue_width_used.total > 0
        max_used = max(k for k, _ in result.issue_width_used.items())
        assert max_used <= total_units


class TestFrontendStallKeys:
    def test_window_pressure_attributed(self):
        """A long-latency load feeding a deep chain wedges the window:
        nothing issues while the fill is outstanding, so renaming is
        blocked on window capacity for many cycles."""
        machine = Machine(scheme=make_scheme("traditional"))
        machine.collect_stall_breakdown = True
        t = MicroTrace()
        t.load(dst=0, address=0x90000)  # cold miss (~80 cycles)
        for _ in range(100):
            t.alu(dst=0, srcs=(0,))  # all transitively blocked on it
        result = machine.run(t.build())
        assert result.stall_breakdown.get("frontend-window", 0) > 10
