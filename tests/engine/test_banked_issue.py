"""Tests for bank-aware load issue in the engine."""

from dataclasses import replace

import pytest

from repro.bank.address_based import AddressBankPredictor
from repro.common.config import BASELINE_MACHINE, CacheConfig
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from tests.engine.helpers import MicroTrace


def banked_config(n_banks=2):
    mem = replace(BASELINE_MACHINE.memory,
                  l1d=CacheConfig(size_bytes=16 * 1024, n_banks=n_banks))
    return replace(BASELINE_MACHINE, memory=mem)


def same_bank_loads(n=60):
    """Independent loads all mapping to bank 0 (stride 128, 2 banks)."""
    t = MicroTrace()
    for i in range(n):
        t.load(dst=i % 8, address=0x1000 + (i % 4) * 128)
    return t.build()


def alternating_loads(n=60):
    t = MicroTrace()
    for i in range(n):
        t.load(dst=i % 8, address=0x1000 + (i % 4) * 64)
    return t.build()


class TestConstruction:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Machine(bank_policy="psychic")

    def test_predicted_needs_predictor(self):
        with pytest.raises(ValueError):
            Machine(bank_policy="predicted")

    def test_no_policy_ignores_banks(self):
        result = Machine(config=banked_config(),
                         scheme=make_scheme("perfect")).run(
            same_bank_loads())
        assert result.bank_conflicts == 0


class TestConflicts:
    def test_oblivious_conflicts_on_same_bank(self):
        result = Machine(config=banked_config(),
                         scheme=make_scheme("perfect"),
                         bank_policy="oblivious").run(same_bank_loads())
        assert result.bank_conflicts > 0

    def test_oracle_never_conflicts(self):
        for trace in (same_bank_loads(), alternating_loads()):
            result = Machine(config=banked_config(),
                             scheme=make_scheme("perfect"),
                             bank_policy="oracle").run(trace)
            assert result.bank_conflicts == 0

    def test_oblivious_clean_on_alternating(self):
        """Program-order issue of alternating banks never collides."""
        result = Machine(config=banked_config(),
                         scheme=make_scheme("perfect"),
                         bank_policy="oblivious").run(alternating_loads())
        assert result.bank_conflicts == 0

    def test_all_loads_still_retire(self):
        for policy, predictor in (("oblivious", None),
                                  ("predicted", AddressBankPredictor()),
                                  ("oracle", None)):
            trace = same_bank_loads()
            result = Machine(config=banked_config(),
                             scheme=make_scheme("perfect"),
                             bank_policy=policy,
                             bank_predictor=predictor).run(trace)
            assert result.retired_uops == len(trace), policy


class TestPredictedSteering:
    def test_reduces_conflicts_vs_oblivious(self):
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed
        trace = build_trace(profile_for("cd"), n_uops=8000,
                            seed=trace_seed("cd"), name="cd")
        results = {}
        for policy, predictor in (("oblivious", None),
                                  ("predicted", AddressBankPredictor())):
            results[policy] = Machine(
                config=banked_config(), scheme=make_scheme("perfect"),
                bank_policy=policy,
                bank_predictor=predictor).run(trace)
        assert results["predicted"].bank_conflicts < \
               results["oblivious"].bank_conflicts
        assert results["predicted"].cycles <= \
               results["oblivious"].cycles

    def test_oracle_not_slower_than_predicted(self):
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed
        trace = build_trace(profile_for("cd"), n_uops=8000,
                            seed=trace_seed("cd"), name="cd")
        predicted = Machine(config=banked_config(),
                            scheme=make_scheme("perfect"),
                            bank_policy="predicted",
                            bank_predictor=AddressBankPredictor()
                            ).run(trace)
        oracle = Machine(config=banked_config(),
                         scheme=make_scheme("perfect"),
                         bank_policy="oracle").run(trace)
        assert oracle.cycles <= predicted.cycles + 5
