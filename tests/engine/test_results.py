"""Tests for the SimResult container."""

import pytest

from repro.common.types import LoadCollisionClass
from repro.engine.results import SimResult


def result_with_classes(**counts):
    r = SimResult(trace_name="t", scheme="s")
    for name, n in counts.items():
        r.load_classes[LoadCollisionClass[name]] = n
    return r


class TestFractions:
    def test_partition(self):
        r = result_with_classes(NOT_CONFLICTING=30, ANC_PNC=50,
                                ANC_PC=10, AC_PC=8, AC_PNC=2)
        assert r.classified_loads == 100
        assert r.frac_not_conflicting == pytest.approx(0.30)
        assert r.frac_anc == pytest.approx(0.60)
        assert r.frac_actually_colliding == pytest.approx(0.10)

    def test_empty_safe(self):
        r = SimResult(trace_name="t", scheme="s")
        assert r.frac_anc == 0.0
        assert r.class_fraction(LoadCollisionClass.AC_PC) == 0.0

    def test_conflicting_fraction(self):
        r = result_with_classes(NOT_CONFLICTING=50, ANC_PNC=40, AC_PC=10)
        assert r.conflicting_fraction(LoadCollisionClass.AC_PC) == \
               pytest.approx(0.2)

    def test_conflicting_fraction_no_conflicts(self):
        r = result_with_classes(NOT_CONFLICTING=10)
        assert r.conflicting_fraction(LoadCollisionClass.AC_PC) == 0.0


class TestIpcAndSpeedup:
    def test_ipc(self):
        r = SimResult(trace_name="t", scheme="s", cycles=100,
                      retired_uops=150)
        assert r.ipc == pytest.approx(1.5)

    def test_ipc_zero_cycles(self):
        assert SimResult(trace_name="t", scheme="s").ipc == 0.0

    def test_speedup(self):
        a = SimResult(trace_name="t", scheme="base", cycles=200)
        b = SimResult(trace_name="t", scheme="fast", cycles=100)
        assert b.speedup_over(a) == pytest.approx(2.0)

    def test_speedup_cross_trace_rejected(self):
        a = SimResult(trace_name="t1", scheme="s", cycles=100)
        b = SimResult(trace_name="t2", scheme="s", cycles=100)
        with pytest.raises(ValueError):
            a.speedup_over(b)


class TestBranchAccuracy:
    def test_no_branches_is_perfect(self):
        assert SimResult(trace_name="t", scheme="s").branch_accuracy == 1.0

    def test_accuracy(self):
        r = SimResult(trace_name="t", scheme="s", branches=10,
                      branch_mispredicts=3)
        assert r.branch_accuracy == pytest.approx(0.7)


class TestSerialisation:
    def test_as_dict_keys(self):
        d = SimResult(trace_name="t", scheme="s").as_dict()
        for key in ("trace", "scheme", "cycles", "ipc", "classes",
                    "hitmiss", "collision_penalties", "forwarded_loads",
                    "branches"):
            assert key in d

    def test_as_dict_class_values(self):
        r = result_with_classes(AC_PC=5)
        assert r.as_dict()["classes"]["AC-PC"] == 5


class TestRoundTrip:
    """to_dict()/from_dict() must reconstruct an equal result, even
    through a JSON encode/decode (string keys, no enums)."""

    def full_result(self):
        import json

        from repro.engine.machine import Machine
        from repro.engine.ordering import make_scheme
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed
        from repro.hitmiss.local import LocalHMP

        trace = build_trace(profile_for("gcc"), n_uops=2000,
                            seed=trace_seed("gcc"), name="gcc")
        machine = Machine(scheme=make_scheme("inclusive"), hmp=LocalHMP())
        machine.record_timeline = True
        machine.collect_occupancy = True
        machine.collect_stall_breakdown = True
        return machine.run(trace), json

    def test_json_round_trip_equal(self):
        result, json = self.full_result()
        encoded = json.dumps(result.to_dict())
        restored = SimResult.from_dict(json.loads(encoded))
        assert restored.trace_name == result.trace_name
        assert restored.scheme == result.scheme
        assert restored.cycles == result.cycles
        assert restored.retired_uops == result.retired_uops
        assert restored.load_classes == result.load_classes
        assert restored.hitmiss.counts == result.hitmiss.counts
        assert restored.stall_breakdown == result.stall_breakdown
        assert restored.window_occupancy.items() == \
               result.window_occupancy.items()
        assert restored.issue_width_used.items() == \
               result.issue_width_used.items()
        assert restored.timeline == result.timeline
        assert restored.ipc == pytest.approx(result.ipc)

    def test_round_trip_preserves_derived_metrics(self):
        result, _ = self.full_result()
        restored = SimResult.from_dict(result.to_dict())
        assert restored.frac_anc == pytest.approx(result.frac_anc)
        assert restored.branch_accuracy == \
               pytest.approx(result.branch_accuracy)
        assert restored.l1_miss_rate == pytest.approx(result.l1_miss_rate)

    def test_empty_result_round_trips(self):
        empty = SimResult(trace_name="t", scheme="s")
        restored = SimResult.from_dict(empty.to_dict())
        assert restored.cycles == 0
        assert restored.timeline == []
        assert restored.load_classes == empty.load_classes

    def test_schema_marker_present(self):
        assert SimResult(trace_name="t", scheme="s").to_dict()["schema"] == 1
