"""Tests for the workload profiles."""

import pytest

from repro.common.types import UopClass
from repro.trace.builder import build_trace
from repro.trace.trace import summarize, validate
from repro.trace.workloads import (
    TRACE_GROUPS,
    WorkloadProfile,
    group_names,
    group_of,
    profile_for,
    trace_seed,
)


class TestGroupRoster:
    def test_paper_group_counts(self):
        """Section 3: 8+10+8+8+5+5+2 traces across seven groups."""
        assert len(TRACE_GROUPS["SpecInt95"]) == 8
        assert len(TRACE_GROUPS["SpecFP95"]) == 10
        assert len(TRACE_GROUPS["SysmarkNT"]) == 8
        assert len(TRACE_GROUPS["Sysmark95"]) == 8
        assert len(TRACE_GROUPS["Games"]) == 5
        assert len(TRACE_GROUPS["Java"]) == 5
        assert len(TRACE_GROUPS["TPC"]) == 2

    def test_figure7_nt_labels(self):
        assert TRACE_GROUPS["SysmarkNT"] == ["cd", "ex", "fl", "pd",
                                             "pm", "pp", "wd", "wp"]

    def test_group_of(self):
        assert group_of("gcc") == "SpecInt95"
        assert group_of("cd") == "SysmarkNT"
        with pytest.raises(KeyError):
            group_of("nonexistent")

    def test_unique_names(self):
        names = [n for g in TRACE_GROUPS.values() for n in g]
        assert len(names) == len(set(names))

    def test_trace_seed_stable_and_unique(self):
        seeds = {trace_seed(n)
                 for g in TRACE_GROUPS.values() for n in g}
        names = [n for g in TRACE_GROUPS.values() for n in g]
        assert len(seeds) == len(names)
        assert trace_seed("gcc") == trace_seed("gcc")


class TestProfiles:
    def test_profile_for_each_trace(self):
        for group, names in TRACE_GROUPS.items():
            for name in names:
                assert profile_for(name).group == group

    def test_code_scale_override(self):
        base = profile_for("cd")
        scaled = profile_for("cd", code_scale=4)
        assert base.code_scale == 1
        assert scaled.code_scale == 4

    def test_instantiate_produces_scenes(self):
        scenes = profile_for("gcc").instantiate(seed=1)
        assert len(scenes) > 3
        assert all(ws.weight > 0 for ws in scenes)

    def test_code_scale_multiplies_call_sites(self):
        small = profile_for("cd").instantiate(seed=1)
        big = profile_for("cd", code_scale=4).instantiate(seed=1)
        assert len(big) > len(small)


class TestBuiltTraces:
    @pytest.mark.parametrize("name", ["cd", "gcc", "applu", "quake",
                                      "jack", "tpcc", "s95a"])
    def test_trace_is_valid(self, name):
        trace = build_trace(profile_for(name), n_uops=3000,
                            seed=trace_seed(name))
        validate(trace)

    def test_mix_plausible(self):
        trace = build_trace(profile_for("cd"), n_uops=10000, seed=1)
        s = summarize(trace)
        assert 0.08 < s.load_fraction < 0.30
        assert 0.04 < s.store_fraction < 0.20
        assert s.n_static_load_pcs > 10

    def test_specfp_has_fp_uops(self):
        trace = build_trace(profile_for("applu"), n_uops=8000, seed=1)
        n_fp = sum(u.uclass == UopClass.FP for u in trace.uops)
        assert n_fp > 100

    def test_siblings_differ(self):
        """Two traces of a group share the profile but not the stream."""
        a = build_trace(profile_for("cd"), n_uops=2000, seed=trace_seed("cd"))
        b = build_trace(profile_for("ex"), n_uops=2000, seed=trace_seed("ex"))
        addrs_a = [u.mem.address for u in a.uops if u.mem][:100]
        addrs_b = [u.mem.address for u in b.uops if u.mem][:100]
        assert addrs_a != addrs_b

    def test_group_names_helper(self):
        assert set(group_names()) == set(TRACE_GROUPS)
