"""Tests for trace containers and serialisation."""

import io

import pytest

from repro.common.types import MemAccess, Uop, UopClass
from repro.trace import trace_io
from repro.trace.builder import build_trace
from repro.trace.trace import Trace, summarize, validate
from repro.trace.workloads import profile_for


def tiny_trace():
    uops = [
        Uop(seq=0, pc=0x100, uclass=UopClass.INT, srcs=(1,), dst=2),
        Uop(seq=1, pc=0x104, uclass=UopClass.STA, srcs=(14,),
            mem=MemAccess(0x2000, 4)),
        Uop(seq=2, pc=0x105, uclass=UopClass.STD, srcs=(2,), sta_seq=1),
        Uop(seq=3, pc=0x108, uclass=UopClass.LOAD, srcs=(14,), dst=3,
            mem=MemAccess(0x2000, 4)),
        Uop(seq=4, pc=0x10C, uclass=UopClass.BRANCH, srcs=(3,),
            taken=True, mispredicted=True),
    ]
    return Trace(name="tiny", uops=uops, group="Test", seed=7)


class TestTraceContainer:
    def test_len_iter_getitem(self):
        t = tiny_trace()
        assert len(t) == 5
        assert list(t)[0].seq == 0
        assert t[3].is_load

    def test_loads_and_stores(self):
        t = tiny_trace()
        assert sum(1 for _ in t.loads()) == 1
        assert sum(1 for _ in t.stores()) == 1

    def test_slice(self):
        t = tiny_trace()
        sub = t.slice(1, 3)
        assert len(sub) == 2
        assert sub.uops[0].uclass == UopClass.STA


class TestSummarize:
    def test_counts(self):
        s = summarize(tiny_trace())
        assert s.n_uops == 5
        assert s.n_loads == 1
        assert s.n_stores == 1
        assert s.n_branches == 1
        assert s.n_static_load_pcs == 1

    def test_str_representation(self):
        assert "uops" in str(summarize(tiny_trace()))


class TestValidate:
    def test_accepts_valid(self):
        validate(tiny_trace())

    def test_rejects_nondense_seq(self):
        t = tiny_trace()
        t.uops[2] = Uop(seq=9, pc=0x105, uclass=UopClass.STD, srcs=(2,),
                        sta_seq=1)
        with pytest.raises(ValueError):
            validate(t)

    def test_rejects_orphan_std(self):
        uops = [Uop(seq=0, pc=0x100, uclass=UopClass.STD, srcs=(2,),
                    sta_seq=5)]
        with pytest.raises(ValueError):
            validate(Trace("bad", uops))


class TestSerialisation:
    def test_roundtrip_tiny(self):
        t = tiny_trace()
        restored = trace_io.loads(trace_io.dumps(t))
        assert restored.name == t.name
        assert restored.group == t.group
        assert restored.seed == t.seed
        assert len(restored) == len(t)
        for a, b in zip(t.uops, restored.uops):
            assert a.seq == b.seq and a.pc == b.pc
            assert a.uclass == b.uclass and a.srcs == b.srcs
            assert a.dst == b.dst and a.sta_seq == b.sta_seq
            assert a.taken == b.taken and a.mispredicted == b.mispredicted
            assert (a.mem is None) == (b.mem is None)
            if a.mem:
                assert a.mem.address == b.mem.address
                assert a.mem.size == b.mem.size

    def test_roundtrip_generated(self):
        t = build_trace(profile_for("cd"), n_uops=1000, seed=3)
        restored = trace_io.loads(trace_io.dumps(t))
        validate(restored)
        assert len(restored) == len(t)

    def test_file_roundtrip(self, tmp_path):
        t = tiny_trace()
        path = tmp_path / "trace.txt"
        trace_io.dump(t, path)
        assert trace_io.load(path).name == "tiny"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            trace_io.loads("not a trace\n")

    def test_rejects_truncated(self):
        text = trace_io.dumps(tiny_trace())
        lines = text.splitlines()
        truncated = "\n".join(lines[:-1]) + "\n"
        with pytest.raises(ValueError):
            trace_io.loads(truncated)

    def test_rejects_malformed_uop_line(self):
        with pytest.raises(ValueError):
            trace_io.loads("# repro-trace v1 name=x group= seed=0 n=1\n"
                           "bogus line\n")
