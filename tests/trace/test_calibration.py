"""Calibration regression tests.

The workload profiles were tuned so each group's signature matches the
per-group statistics of section 4 (see DESIGN.md).  These tests pin the
calibrated bands so a profile or engine change that silently breaks a
group's character fails loudly.

The bands are deliberately wide: they guard the *signatures* (ordering
between groups, qualitative ranges), not exact values.
"""

import pytest

#: Builds and simulates every workload group up front; CI's
#: coverage-gated step deselects it (-m "not slow").
pytestmark = pytest.mark.slow

from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from repro.trace.builder import build_trace
from repro.trace.trace import summarize
from repro.trace.workloads import profile_for, trace_seed

N_UOPS = 20_000


@pytest.fixture(scope="module")
def runs():
    """One Traditional-ordering run per representative trace."""
    out = {}
    for name in ("cd", "gcc", "applu", "quake", "jack", "tpcc", "s95a"):
        trace = build_trace(profile_for(name), n_uops=N_UOPS,
                            seed=trace_seed(name), name=name)
        out[name] = (trace,
                     Machine(scheme=make_scheme("traditional")).run(trace))
    return out


class TestMixBands:
    def test_load_fraction(self, runs):
        for name, (trace, _) in runs.items():
            s = summarize(trace)
            assert 0.08 < s.load_fraction < 0.30, name

    def test_store_fraction(self, runs):
        for name, (trace, _) in runs.items():
            s = summarize(trace)
            assert 0.05 < s.store_fraction < 0.20, name

    def test_static_load_diversity(self, runs):
        for name, (trace, _) in runs.items():
            assert summarize(trace).n_static_load_pcs >= 15, name


class TestClassificationBands:
    def test_ac_is_minority_everywhere(self, runs):
        for name, (_, result) in runs.items():
            assert result.frac_actually_colliding < 0.30, name

    def test_conflicting_loads_are_common(self, runs):
        """The paper's premise: a majority-ish of loads see unresolved
        stores (the predictor's opportunity)."""
        for name, (_, result) in runs.items():
            conflicting = 1.0 - result.frac_not_conflicting
            assert conflicting > 0.25, name

    def test_anc_dominates_ac(self, runs):
        """Most conflicting loads do NOT collide — the headroom that
        makes disambiguation worthwhile."""
        for name, (_, result) in runs.items():
            assert result.frac_anc > result.frac_actually_colliding, name

    def test_fp_collides_least(self, runs):
        fp_ac = runs["applu"][1].frac_actually_colliding
        for name in ("cd", "gcc", "jack"):
            assert fp_ac < runs[name][1].frac_actually_colliding, name


class TestMissRateBands:
    def test_all_groups_in_band(self, runs):
        # Short traces are warmup-inflated (compulsory misses); the
        # band bounds the inflated rate, not the steady state.
        for name, (_, result) in runs.items():
            assert 0.005 < result.l1_miss_rate < 0.25, name

    def test_int_misses_least(self, runs):
        """SpecInt-class codes are the most cache-friendly (paper
        Figure 10: SpecINT has the lowest MISSES bar)."""
        gcc = runs["gcc"][1].l1_miss_rate
        assert gcc < runs["applu"][1].l1_miss_rate
        assert gcc < runs["tpcc"][1].l1_miss_rate


class TestPerformanceBands:
    def test_ipc_plausible(self, runs):
        for name, (_, result) in runs.items():
            assert 0.5 < result.ipc < 4.0, name

    def test_headroom_exists_everywhere(self, runs):
        """Perfect disambiguation must beat Traditional on every group
        (otherwise Figures 7/8 have nothing to show)."""
        for name, (trace, baseline) in runs.items():
            perfect = Machine(scheme=make_scheme("perfect")).run(trace)
            assert perfect.speedup_over(baseline) > 1.05, name
