"""Tests for the address-stream models."""

import random

import pytest

from repro.trace.streams import (
    HotColdStream,
    PointerChaseStream,
    RandomStream,
    StrideStream,
)


class TestStrideStream:
    def test_sequence(self):
        s = StrideStream(base=1000, stride=8, extent=32)
        rng = random.Random(0)
        assert [s.next(rng) for _ in range(4)] == [1000, 1008, 1016, 1024]

    def test_wraps_at_extent(self):
        s = StrideStream(base=0, stride=8, extent=16)
        rng = random.Random(0)
        assert [s.next(rng) for _ in range(4)] == [0, 8, 0, 8]

    def test_reset(self):
        s = StrideStream(base=0, stride=4, extent=64)
        rng = random.Random(0)
        first = s.next(rng)
        s.next(rng)
        s.reset()
        assert s.next(rng) == first

    def test_validation(self):
        with pytest.raises(ValueError):
            StrideStream(0, 0, 64)
        with pytest.raises(ValueError):
            StrideStream(0, 4, 0)


class TestRandomStream:
    def test_within_region(self):
        s = RandomStream(base=0x1000, extent=256, align=4)
        rng = random.Random(1)
        for _ in range(100):
            a = s.next(rng)
            assert 0x1000 <= a < 0x1100
            assert a % 4 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomStream(0, extent=2, align=4)


class TestPointerChaseStream:
    def test_visits_all_nodes_cyclically(self):
        s = PointerChaseStream(base=0, n_nodes=8, node_bytes=64, perm_seed=3)
        rng = random.Random(0)
        first_lap = [s.next(rng) for _ in range(8)]
        second_lap = [s.next(rng) for _ in range(8)]
        assert sorted(first_lap) == [i * 64 for i in range(8)]
        # The permutation is a single cycle: the lap repeats exactly.
        assert first_lap == second_lap

    def test_deterministic_across_instances(self):
        rng = random.Random(0)
        a = PointerChaseStream(0, 16, perm_seed=7)
        b = PointerChaseStream(0, 16, perm_seed=7)
        seq_a = [a.next(rng) for _ in range(16)]
        seq_b = [b.next(rng) for _ in range(16)]
        assert seq_a == seq_b

    def test_different_seed_different_order(self):
        rng = random.Random(0)
        a = PointerChaseStream(0, 16, perm_seed=7)
        b = PointerChaseStream(0, 16, perm_seed=8)
        assert [a.next(rng) for _ in range(16)] != \
               [b.next(rng) for _ in range(16)]

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            PointerChaseStream(0, 1)


class TestHotColdStream:
    def test_zero_cold_probability_stays_hot(self):
        hot = StrideStream(0, 4, 64)
        cold = StrideStream(0x10000, 64, 1 << 16)
        s = HotColdStream(hot, cold, p_cold_burst=0.0)
        rng = random.Random(2)
        assert all(s.next(rng) < 0x10000 for _ in range(100))

    def test_cold_fraction_tracks_parameters(self):
        hot = StrideStream(0, 4, 64)
        cold = StrideStream(0x10000, 64, 1 << 20)
        s = HotColdStream(hot, cold, p_cold_burst=0.1, burst_continue=0.5)
        rng = random.Random(2)
        cold_count = sum(s.next(rng) >= 0x10000 for _ in range(5000))
        # Markov stationary burst probability pi = p/(1-c+p); a cold
        # access happens in-burst or on a fresh burst entry from hot:
        # P(cold) = pi + (1-pi)*p.
        pi = 0.1 / (1 - 0.5 + 0.1)
        expected = pi + (1 - pi) * 0.1
        assert abs(cold_count / 5000 - expected) < 0.05

    def test_bursts_are_runs(self):
        hot = StrideStream(0, 4, 64)
        cold = StrideStream(0x10000, 64, 1 << 20)
        s = HotColdStream(hot, cold, p_cold_burst=0.05, burst_continue=0.9)
        rng = random.Random(3)
        outcomes = [s.next(rng) >= 0x10000 for _ in range(4000)]
        # Count run lengths of cold accesses; mean must exceed 2
        # (independent draws would give ~1.05).
        runs, current = [], 0
        for is_cold in outcomes:
            if is_cold:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs and sum(runs) / len(runs) > 2.0

    def test_validation(self):
        hot = StrideStream(0, 4, 64)
        cold = StrideStream(0, 4, 64)
        with pytest.raises(ValueError):
            HotColdStream(hot, cold, p_cold_burst=1.5)
        with pytest.raises(ValueError):
            HotColdStream(hot, cold, burst_continue=1.0)

    def test_reset_resets_components(self):
        hot = StrideStream(0, 4, 64)
        cold = StrideStream(0x10000, 64, 1 << 16)
        s = HotColdStream(hot, cold, p_cold_burst=0.5)
        rng = random.Random(4)
        for _ in range(10):
            s.next(rng)
        s.reset()
        assert not s._in_burst
