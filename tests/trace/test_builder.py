"""Tests for the trace builder and scenes."""

import random

import pytest

from repro.common.types import UopClass
from repro.trace.builder import (
    ArrayLoopScene,
    BranchScene,
    CallScene,
    N_ALLOC_REGS,
    PointerChaseScene,
    RandomAccessScene,
    STABLE_REGS,
    TraceBuilder,
    WeightedScene,
    build_from_scenes,
)
from repro.trace.streams import PointerChaseStream, RandomStream, StrideStream
from repro.trace.trace import validate


class TestTraceBuilder:
    def test_sequence_numbers_dense(self):
        b = TraceBuilder()
        rng = random.Random(0)
        b.emit_int(0x100, rng)
        b.emit_load(0x104, 0x1000, rng)
        b.emit_store(0x108, 0x2000, rng)
        assert [u.seq for u in b.uops] == [0, 1, 2, 3]

    def test_store_emits_sta_std_pair(self):
        b = TraceBuilder()
        rng = random.Random(0)
        sta, std = b.emit_store(0x100, 0x2000, rng)
        assert sta.uclass == UopClass.STA
        assert std.uclass == UopClass.STD
        assert std.sta_seq == sta.seq
        assert sta.mem.address == 0x2000

    def test_stable_regs_never_allocated(self):
        b = TraceBuilder()
        rng = random.Random(0)
        for _ in range(100):
            u = b.emit_int(0x100, rng)
            assert u.dst not in STABLE_REGS
            assert u.dst < N_ALLOC_REGS

    def test_stable_address_srcs(self):
        b = TraceBuilder(p_stable_load_addr=1.0)
        rng = random.Random(0)
        for _ in range(20):
            u = b.emit_load(0x100, 0x1000, rng)
            assert u.srcs[0] in STABLE_REGS

    def test_unstable_address_srcs(self):
        b = TraceBuilder(p_stable_load_addr=0.0)
        rng = random.Random(0)
        srcs = {b.emit_load(0x100, 0x1000, rng).srcs[0] for _ in range(50)}
        assert srcs - set(STABLE_REGS)  # at least some computed sources

    def test_branch_annotations(self):
        b = TraceBuilder()
        rng = random.Random(0)
        u = b.emit_branch(0x100, rng, p_taken=1.0, p_mispredict=0.0)
        assert u.taken and not u.mispredicted


class TestCallScene:
    def _run(self, scene, visits=5, seed=1):
        b = TraceBuilder()
        rng = random.Random(seed)
        for _ in range(visits):
            scene.run(b, rng)
        return b

    def test_reload_addresses_match_pushes(self):
        scene = CallScene(pc_base=0x1000, n_args=2, gap=4, p_reload=1.0,
                          save_restore=False, frame_slot=0)
        b = self._run(scene, visits=1)
        stores = [u for u in b.uops if u.uclass == UopClass.STA]
        loads = [u for u in b.uops if u.uclass == UopClass.LOAD]
        pushed = {u.mem.address for u in stores if u.pc < 0x1000 + 0x20}
        reloaded = {u.mem.address for u in loads}
        assert reloaded <= {u.mem.address for u in stores}
        assert len(reloaded & pushed) == 2

    def test_save_restore_pair(self):
        scene = CallScene(pc_base=0x1000, n_args=1, gap=2, p_reload=0.0,
                          save_restore=True, frame_slot=0)
        b = self._run(scene, visits=1)
        loads = [u for u in b.uops if u.uclass == UopClass.LOAD]
        stores = [u for u in b.uops if u.uclass == UopClass.STA]
        # Even with p_reload=0, the restore load happens and matches a save.
        assert len(loads) == 1
        assert loads[0].mem.address in {u.mem.address for u in stores}

    def test_phase_flip_stops_reloads(self):
        scene = CallScene(pc_base=0x1000, n_args=2, gap=2, p_reload=1.0,
                          save_restore=False, frame_slot=0,
                          phase_flip_at=3)
        b = TraceBuilder()
        rng = random.Random(1)
        for _ in range(3):
            scene.run(b, rng)
        loads_before = sum(u.uclass == UopClass.LOAD for u in b.uops)
        b2 = TraceBuilder()
        for _ in range(5):
            scene.run(b2, rng)
        loads_after_flip = sum(u.uclass == UopClass.LOAD
                               for u in b2.uops[len(b2.uops) // 2:])
        assert loads_before > 0
        assert loads_after_flip == 0

    def test_distinct_frame_slots_do_not_overlap(self):
        a = CallScene(pc_base=0x1000, frame_slot=0)
        b = CallScene(pc_base=0x2000, frame_slot=1)
        builder = TraceBuilder()
        rng = random.Random(1)
        a.run(builder, rng)
        b.run(builder, rng)
        addrs_a = {u.mem.address for u in builder.uops
                   if u.mem and u.pc < 0x2000}
        addrs_b = {u.mem.address for u in builder.uops
                   if u.mem and u.pc >= 0x2000}
        assert not (addrs_a & addrs_b)

    def test_pcs_static_across_visits(self):
        """Every site keeps one PC regardless of per-visit randomness."""
        scene = CallScene(pc_base=0x1000, n_args=2, gap=6, p_reload=1.0,
                          frame_slot=0)
        b = self._run(scene, visits=20)
        load_pcs = {}
        for u in b.uops:
            if u.uclass == UopClass.LOAD:
                load_pcs.setdefault(u.pc, set()).add(u.mem.address)
        for pc, addrs in load_pcs.items():
            assert len(addrs) == 1, f"pc {pc:#x} touched {addrs}"


class TestArrayLoopScene:
    def test_loads_follow_stream(self):
        stream = StrideStream(0x8000, 64, 4 * 64)
        scene = ArrayLoopScene(pc_base=0x2000, streams=[stream],
                               iters_per_visit=4)
        b = TraceBuilder()
        scene.run(b, random.Random(0))
        loads = [u for u in b.uops if u.uclass == UopClass.LOAD]
        assert [u.mem.address for u in loads] == [0x8000, 0x8040,
                                                  0x8080, 0x80C0]

    def test_dependent_uses(self):
        stream = StrideStream(0x8000, 64, 256)
        scene = ArrayLoopScene(pc_base=0x2000, streams=[stream],
                               iters_per_visit=1, uses_per_load=2)
        b = TraceBuilder()
        scene.run(b, random.Random(0))
        load = next(u for u in b.uops if u.uclass == UopClass.LOAD)
        uses = [u for u in b.uops
                if u.uclass in (UopClass.INT, UopClass.FP)
                and load.dst in u.srcs]
        assert len(uses) >= 2

    def test_requires_streams(self):
        with pytest.raises(ValueError):
            ArrayLoopScene(pc_base=0x2000, streams=[])


class TestPointerChaseScene:
    def test_chain_dependency(self):
        stream = PointerChaseStream(0x9000, 8)
        scene = PointerChaseScene(pc_base=0x3000, stream=stream,
                                  hops_per_visit=4)
        b = TraceBuilder()
        scene.run(b, random.Random(0))
        loads = [u for u in b.uops if u.uclass == UopClass.LOAD]
        assert len(loads) == 4
        # Each hop's address register is the previous hop's destination.
        for prev, cur in zip(loads, loads[1:]):
            assert cur.srcs == (prev.dst,)


class TestRandomAccessScene:
    def test_alias_reads_last_write(self):
        region = RandomStream(0xA000, 4096)
        scene = RandomAccessScene(pc_base=0x4000, region=region,
                                  ops_per_visit=20, p_store=0.5,
                                  p_alias=1.0)
        b = TraceBuilder()
        rng = random.Random(5)
        scene.run(b, rng)
        stores = [u.mem.address for u in b.uops if u.uclass == UopClass.STA]
        loads = [u.mem.address for u in b.uops if u.uclass == UopClass.LOAD]
        # With p_alias=1, every load after the first store re-reads a
        # stored address.
        if stores and loads:
            assert any(a in stores for a in loads)


class TestBranchScene:
    def test_emits_branches(self):
        scene = BranchScene(pc_base=0x5000, n_branches=3)
        b = TraceBuilder()
        scene.run(b, random.Random(0))
        branches = [u for u in b.uops if u.uclass == UopClass.BRANCH]
        assert len(branches) == 3


class TestBuildFromScenes:
    def test_reaches_target_length(self):
        scenes = [WeightedScene(BranchScene(0x5000), 1.0)]
        trace = build_from_scenes("t", scenes, n_uops=500, seed=1)
        assert len(trace) >= 500

    def test_deterministic(self):
        def build():
            scenes = [WeightedScene(CallScene(0x1000, frame_slot=0), 1.0),
                      WeightedScene(BranchScene(0x5000), 1.0)]
            return build_from_scenes("t", scenes, n_uops=800, seed=9)
        a, b = build(), build()
        assert len(a) == len(b)
        assert all(x.pc == y.pc and x.uclass == y.uclass
                   for x, y in zip(a.uops, b.uops))

    def test_structurally_valid(self):
        scenes = [WeightedScene(CallScene(0x1000, frame_slot=0), 1.0)]
        trace = build_from_scenes("t", scenes, n_uops=600, seed=2)
        validate(trace)  # raises on malformed traces

    def test_requires_scenes(self):
        with pytest.raises(ValueError):
            build_from_scenes("t", [], 100, 1)
