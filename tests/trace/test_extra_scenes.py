"""Tests for the opt-in extra scenes."""

import random

import pytest

from repro.common.types import UopClass
from repro.trace.builder import TraceBuilder, WeightedScene, \
    build_from_scenes
from repro.trace.extra_scenes import Matrix2DScene, ProducerConsumerScene
from repro.trace.trace import validate


def emit(scene, visits=4, seed=1):
    builder = TraceBuilder()
    rng = random.Random(seed)
    for _ in range(visits):
        scene.run(builder, rng)
    return builder.uops


class TestMatrix2DScene:
    def test_row_walk_strides_by_element(self):
        scene = Matrix2DScene(pc_base=0x1000, base=0x10000,
                              element_bytes=8, accesses_per_visit=4)
        uops = emit(scene, visits=1)
        addrs = [u.mem.address for u in uops if u.uclass == UopClass.LOAD]
        deltas = [b - a for a, b in zip(addrs, addrs[1:])]
        assert all(d == 8 for d in deltas)

    def test_column_walk_strides_by_pitch(self):
        scene = Matrix2DScene(pc_base=0x1000, base=0x10000, cols=64,
                              element_bytes=8, accesses_per_visit=4)
        uops = emit(scene, visits=2)  # second visit is the column phase
        loads = [u for u in uops if u.uclass == UopClass.LOAD]
        column_loads = loads[4:]
        deltas = [b.mem.address - a.mem.address
                  for a, b in zip(column_loads, column_loads[1:])]
        assert all(d == scene.row_pitch for d in deltas)

    def test_power_of_two_pitch_is_bank_pathological(self):
        """Column walks over a 2*line-multiple pitch pin one bank."""
        scene = Matrix2DScene(pc_base=0x1000, base=0x10000, cols=16,
                              element_bytes=8)  # pitch 128 = 2 lines
        uops = emit(scene, visits=2)
        column_loads = [u for u in uops
                        if u.uclass == UopClass.LOAD][8:]
        banks = {(u.mem.address // 64) % 2 for u in column_loads}
        assert len(banks) == 1

    def test_phases_have_distinct_pcs(self):
        scene = Matrix2DScene(pc_base=0x1000, base=0x10000)
        uops = emit(scene, visits=2)
        loads = [u for u in uops if u.uclass == UopClass.LOAD]
        row_pcs = {u.pc for u in loads[:8]}
        col_pcs = {u.pc for u in loads[8:16]}
        assert not (row_pcs & col_pcs)

    def test_validation(self):
        with pytest.raises(ValueError):
            Matrix2DScene(pc_base=0x1000, base=0, rows=1)


class TestProducerConsumerScene:
    def test_consumer_reads_lagged_slot(self):
        scene = ProducerConsumerScene(pc_base=0x2000, base=0x20000,
                                      n_slots=8, lag=2,
                                      items_per_visit=4)
        uops = emit(scene, visits=2)
        stores = [u for u in uops if u.uclass == UopClass.STA]
        loads = [u for u in uops if u.uclass == UopClass.LOAD]
        # Every load's address was stored exactly `lag` items earlier.
        store_addrs = [u.mem.address for u in stores]
        for i, load in enumerate(loads):
            assert load.mem.address == store_addrs[i]

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            ProducerConsumerScene(pc_base=0x2000, base=0, n_slots=4,
                                  lag=4)

    def test_small_lag_collides_in_engine(self):
        """The collision dial: lag 1 collides, huge lag does not."""
        from repro.engine.machine import Machine
        from repro.engine.ordering import make_scheme

        def run(lag, n_slots=64):
            scene = ProducerConsumerScene(pc_base=0x2000, base=0x20000,
                                          n_slots=n_slots, lag=lag,
                                          items_per_visit=2)
            trace = build_from_scenes("pc", [WeightedScene(scene, 1.0)],
                                      n_uops=2000, seed=3)
            validate(trace)
            return Machine(scheme=make_scheme("opportunistic")).run(trace)

        close = run(lag=1)
        far = run(lag=60)
        assert close.collision_penalties > far.collision_penalties
