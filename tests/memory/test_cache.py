"""Tests for the set-associative cache model."""

import pytest

from repro.common.config import CacheConfig
from repro.memory.cache import Cache


def small_cache(ways=2, sets=4, line=64):
    return Cache(CacheConfig(size_bytes=ways * sets * line,
                             line_bytes=line, ways=ways))


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0x1000).miss
        assert c.access(0x1000).hit

    def test_same_line_hits(self):
        c = small_cache()
        c.access(0x1000)
        assert c.access(0x1000 + 63).hit  # same 64-byte line
        assert c.access(0x1000 + 64).miss  # next line

    def test_set_mapping(self):
        c = small_cache(sets=4)
        r = c.access(0x1000)
        # line = 0x1000/64 = 64; set = 64 % 4 = 0
        assert r.set_index == 0
        assert c.access(0x1040).set_index == 1

    def test_hit_rate_accounting(self):
        c = small_cache()
        c.access(0x0)
        c.access(0x0)
        c.access(0x0)
        assert c.hit_rate == pytest.approx(2 / 3)


class TestLru:
    def test_lru_eviction_order(self):
        c = small_cache(ways=2, sets=1)
        a, b, d = 0x0, 0x40, 0x80  # all map to the single set
        c.access(a)
        c.access(b)
        c.access(d)  # evicts a (least recently used)
        assert c.access(b).hit
        assert c.access(a).miss

    def test_touch_refreshes_lru(self):
        c = small_cache(ways=2, sets=1)
        a, b, d = 0x0, 0x40, 0x80
        c.access(a)
        c.access(b)
        c.access(a)  # a becomes MRU
        c.access(d)  # evicts b
        assert c.access(a).hit
        assert c.access(b).miss

    def test_eviction_reports_victim(self):
        c = small_cache(ways=1, sets=1)
        c.access(0x0)
        r = c.access(0x40)
        assert r.evicted_tag is not None


class TestProbe:
    def test_probe_does_not_allocate(self):
        c = small_cache()
        assert not c.probe(0x1000)
        assert c.access(0x1000).miss  # still a miss: probe didn't install

    def test_probe_does_not_touch_lru(self):
        c = small_cache(ways=2, sets=1)
        a, b, d = 0x0, 0x40, 0x80
        c.access(a)
        c.access(b)
        c.probe(a)  # must NOT make a MRU
        c.access(d)  # evicts a (still LRU)
        assert not c.probe(a)
        assert c.probe(b)


class TestInvalidateAndFlush:
    def test_invalidate(self):
        c = small_cache()
        c.access(0x1000)
        assert c.invalidate(0x1000)
        assert not c.probe(0x1000)
        assert not c.invalidate(0x1000)  # second time: not present

    def test_flush(self):
        c = small_cache()
        for i in range(8):
            c.access(i * 64)
        c.flush()
        assert all(not c.probe(i * 64) for i in range(8))


class TestCapacity:
    def test_working_set_within_capacity_all_hits(self):
        c = small_cache(ways=4, sets=16)  # 64 lines
        lines = [i * 64 for i in range(64)]
        for a in lines:
            c.access(a)
        assert all(c.access(a).hit for a in lines)

    def test_working_set_beyond_capacity_thrashes(self):
        c = small_cache(ways=4, sets=16)  # 64 lines
        lines = [i * 64 for i in range(128)]
        for a in lines:
            c.access(a)
        # Sequential sweep of 2x capacity with LRU: everything missed.
        assert all(c.access(a).miss for a in lines)


class TestBanking:
    def test_bank_of_interleaved(self):
        c = Cache(CacheConfig(size_bytes=16 * 1024, n_banks=2))
        assert c.bank_of(0x0) == 0
        assert c.bank_of(0x40) == 1
        assert c.bank_of(0x80) == 0

    def test_single_bank(self):
        c = small_cache()
        assert c.bank_of(0x12345) == 0
