"""Tests for the outstanding-miss queue and serviced-load buffer."""

import pytest

from repro.memory.mshr import OutstandingMissQueue, ServicedLoadBuffer


class TestOutstandingMissQueue:
    def test_pending_until_arrival(self):
        q = OutstandingMissQueue(4)
        q.insert(line=10, ready_cycle=100)
        assert q.pending_until(10, now=50) == 100
        assert 10 in q

    def test_not_pending_after_arrival(self):
        q = OutstandingMissQueue(4)
        q.insert(10, 100)
        assert q.pending_until(10, now=100) is None

    def test_expire_removes_arrived(self):
        q = OutstandingMissQueue(4)
        q.insert(10, 100)
        q.insert(11, 200)
        q.expire(now=150)
        assert 10 not in q
        assert 11 in q

    def test_merge_keeps_earlier_arrival(self):
        q = OutstandingMissQueue(4)
        q.insert(10, 100)
        q.insert(10, 300)
        assert q.pending_until(10, 0) == 100

    def test_capacity_drops_oldest(self):
        q = OutstandingMissQueue(2)
        q.insert(1, 100)
        q.insert(2, 100)
        q.insert(3, 100)
        assert 1 not in q
        assert 2 in q and 3 in q
        assert len(q) == 2

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            OutstandingMissQueue(0)

    def test_clear(self):
        q = OutstandingMissQueue(4)
        q.insert(1, 100)
        q.clear()
        assert len(q) == 0


class TestServicedLoadBuffer:
    def test_recently_serviced_window(self):
        b = ServicedLoadBuffer(retention_cycles=100)
        b.insert(line=5, arrival_cycle=1000)
        assert b.recently_serviced(5, now=1050)
        assert not b.recently_serviced(5, now=1101)

    def test_unknown_line(self):
        b = ServicedLoadBuffer()
        assert not b.recently_serviced(5, now=0)

    def test_capacity_eviction(self):
        b = ServicedLoadBuffer(n_entries=2)
        b.insert(1, 10)
        b.insert(2, 10)
        b.insert(3, 10)
        assert not b.recently_serviced(1, 10)
        assert b.recently_serviced(3, 10)

    def test_reinsert_refreshes(self):
        b = ServicedLoadBuffer(n_entries=2)
        b.insert(1, 10)
        b.insert(2, 10)
        b.insert(1, 20)  # refresh: 1 becomes newest
        b.insert(3, 20)  # evicts 2
        assert b.recently_serviced(1, 20)
        assert not b.recently_serviced(2, 20)

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            ServicedLoadBuffer(0)
