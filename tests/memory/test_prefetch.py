"""Tests for the stride prefetcher."""

import pytest

from repro.common.config import BASELINE_MACHINE
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetch import StridePrefetcher


def hierarchy():
    return MemoryHierarchy(BASELINE_MACHINE.memory)


class TestBasicPrefetching:
    def test_degree_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(hierarchy(), degree=0)

    def test_strided_stream_prefetches_ahead(self):
        h = hierarchy()
        pf = StridePrefetcher(h, degree=2)
        addr, now = 0x10000, 0
        for _ in range(10):
            h.load(addr, now)
            pf.on_demand_access(0x100, addr, now)
            addr += 64
            now += 200  # past any fill latency
        assert pf.stats.issued > 0
        # The next line is already resident thanks to the prefetcher.
        assert h.would_hit_l1(addr, now)

    def test_demand_misses_fall(self):
        def run(with_prefetch):
            h = hierarchy()
            pf = StridePrefetcher(h, degree=2) if with_prefetch else None
            addr, now = 0x10000, 0
            for _ in range(200):
                h.load(addr, now)
                if pf:
                    pf.on_demand_access(0x100, addr, now)
                addr += 64
                now += 200
            return h.l1_miss_rate
        assert run(True) < run(False)

    def test_usefulness_tracked(self):
        h = hierarchy()
        pf = StridePrefetcher(h, degree=1)
        addr, now = 0x10000, 0
        for _ in range(50):
            h.load(addr, now)
            pf.on_demand_access(0x100, addr, now)
            addr += 64
            now += 200
        assert pf.stats.usefulness > 0.7

    def test_constant_address_never_prefetches(self):
        h = hierarchy()
        pf = StridePrefetcher(h)
        for now in range(0, 2000, 200):
            h.load(0x4000, now)
            pf.on_demand_access(0x100, 0x4000, now)
        assert pf.stats.issued == 0

    def test_random_stream_mostly_idle(self):
        import random
        rng = random.Random(0)
        h = hierarchy()
        pf = StridePrefetcher(h)
        for now in range(0, 20000, 100):
            a = rng.randrange(1 << 22)
            h.load(a, now)
            pf.on_demand_access(0x100, a, now)
        assert pf.stats.issued < 20

    def test_demand_stats_unpolluted(self):
        """Prefetch traffic must not count as demand loads."""
        h = hierarchy()
        pf = StridePrefetcher(h, degree=2)
        addr, now = 0x10000, 0
        n = 30
        for _ in range(n):
            h.load(addr, now)
            pf.on_demand_access(0x100, addr, now)
            addr += 64
            now += 200
        assert h.stats.get("loads").value == n

    def test_reset(self):
        h = hierarchy()
        pf = StridePrefetcher(h)
        for i in range(10):
            pf.on_demand_access(0x100, 0x10000 + 64 * i, i * 200)
        pf.reset()
        assert pf.stats.issued == 0


class TestEngineIntegration:
    def test_prefetcher_speeds_up_streaming_workload(self):
        from repro.engine.machine import Machine
        from repro.engine.ordering import make_scheme
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed

        trace = build_trace(profile_for("applu"), n_uops=8000,
                            seed=trace_seed("applu"), name="applu")
        plain = Machine(scheme=make_scheme("perfect")).run(trace)
        h = MemoryHierarchy(BASELINE_MACHINE.memory)
        machine = Machine(scheme=make_scheme("perfect"), hierarchy=h)
        machine.prefetcher = StridePrefetcher(h, degree=2)
        prefetched = machine.run(trace)
        assert prefetched.retired_uops == len(trace)
        assert prefetched.l1_miss_rate < plain.l1_miss_rate
        assert prefetched.cycles <= plain.cycles
