"""Tests for the two-level memory hierarchy."""

import pytest

from repro.common.config import CacheConfig, MemoryConfig
from repro.memory.hierarchy import MemoryHierarchy


def tiny_hierarchy(**overrides):
    defaults = dict(
        l1d=CacheConfig(size_bytes=1024, ways=2),   # 16 lines
        l2=CacheConfig(size_bytes=8 * 1024, ways=4),  # 128 lines
        l1_latency=5, l2_latency=12, memory_latency=80,
    )
    defaults.update(overrides)
    return MemoryHierarchy(MemoryConfig(**defaults))


class TestLatencies:
    def test_cold_load_goes_to_memory(self):
        h = tiny_hierarchy()
        out = h.load(0x1000, now=0)
        assert not out.l1_hit and not out.l2_hit
        assert out.latency == 80

    def test_l1_hit_latency(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)
        out = h.load(0x1000, now=200)
        assert out.l1_hit
        assert out.latency == 5

    def test_l2_hit_latency(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)
        # Evict from tiny L1 with a sweep; L2 keeps the line.
        for i in range(1, 40):
            h.load(0x1000 + i * 64, now=1000 + i * 100)
        out = h.load(0x1000, now=20000)
        assert not out.l1_hit and out.l2_hit
        assert out.latency == 12


class TestDynamicMiss:
    def test_second_access_during_fill(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)  # memory fill arrives at 80
        out = h.load(0x1004, now=40)  # same line, still in flight
        assert out.dynamic_miss
        assert not out.l1_hit
        assert out.latency == 40  # residual wait

    def test_after_fill_is_hit(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)
        out = h.load(0x1004, now=90)
        assert out.l1_hit

    def test_dynamic_miss_counted_as_miss(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)
        h.load(0x1004, now=10)
        assert h.l1_miss_rate == pytest.approx(1.0)


class TestStores:
    def test_store_installs_line(self):
        h = tiny_hierarchy()
        h.store(0x2000, now=0)
        assert h.load(0x2000, now=100).l1_hit


class TestProbe:
    def test_would_hit_after_fill(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)
        assert h.would_hit_l1(0x1000, now=100)

    def test_would_miss_while_in_flight(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)  # fill at 80
        assert not h.would_hit_l1(0x1000, now=40)

    def test_would_miss_cold(self):
        h = tiny_hierarchy()
        assert not h.would_hit_l1(0x9999, now=0)


class TestReset:
    def test_reset_clears_everything(self):
        h = tiny_hierarchy()
        h.load(0x1000, now=0)
        h.reset()
        out = h.load(0x1000, now=200)
        assert not out.l1_hit and not out.l2_hit
