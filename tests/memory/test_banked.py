"""Tests for the banked cache model and bank-aware scheduler."""

import pytest

from repro.memory.banked import BankedCache, BankScheduler


class TestBankedCache:
    def test_bank_mapping(self):
        c = BankedCache(n_banks=2)
        assert c.bank_of(0x0) == 0
        assert c.bank_of(0x40) == 1
        assert c.bank_of(0x80) == 0

    def test_four_banks(self):
        c = BankedCache(n_banks=4)
        assert [c.bank_of(i * 64) for i in range(4)] == [0, 1, 2, 3]

    def test_conflicts_counting(self):
        c = BankedCache(n_banks=2)
        assert c.conflicts([0x0, 0x40]) == 0  # different banks
        assert c.conflicts([0x0, 0x80]) == 1  # both bank 0
        assert c.conflicts([0x0, 0x80, 0x100]) == 2

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BankedCache(n_banks=3)


class TestBankSchedulerOracle:
    def test_pairs_different_banks(self):
        sched = BankScheduler(BankedCache(2), policy="oracle")
        issued, conflicted = sched.select([(0x0, None), (0x40, None)])
        assert issued == [0, 1]
        assert conflicted == []

    def test_delays_same_bank(self):
        sched = BankScheduler(BankedCache(2), policy="oracle")
        issued, conflicted = sched.select([(0x0, None), (0x80, None)])
        assert issued == [0]
        assert conflicted == []

    def test_never_conflicts(self):
        sched = BankScheduler(BankedCache(2), policy="oracle")
        for _ in range(20):
            sched.select([(0x0, None), (0x80, None), (0x40, None)])
        assert sched.conflict_rate == 0.0


class TestBankSchedulerOblivious:
    def test_co_issues_conflicting(self):
        sched = BankScheduler(BankedCache(2), policy="oblivious")
        issued, conflicted = sched.select([(0x0, None), (0x80, None)])
        assert issued == [0, 1]
        assert conflicted == [1]

    def test_bandwidth_cap(self):
        sched = BankScheduler(BankedCache(2), policy="oblivious")
        issued, _ = sched.select([(0x0, None), (0x40, None), (0x80, None)])
        assert len(issued) == 2


class TestBankSchedulerPredicted:
    def test_correct_predictions_avoid_conflict(self):
        sched = BankScheduler(BankedCache(2), policy="predicted")
        issued, conflicted = sched.select([(0x0, 0), (0x80, 0), (0x40, 1)])
        # Second load predicted to bank 0 is delayed; third (bank 1) issues.
        assert 0 in issued and 2 in issued and 1 not in issued
        assert conflicted == []

    def test_wrong_prediction_conflicts_at_execute(self):
        sched = BankScheduler(BankedCache(2), policy="predicted")
        # Second load predicted bank 1 but actually bank 0.
        issued, conflicted = sched.select([(0x0, 0), (0x80, 1)])
        assert issued == [0, 1]
        assert conflicted == [1]

    def test_unpredicted_loads_issue(self):
        sched = BankScheduler(BankedCache(2), policy="predicted")
        issued, _ = sched.select([(0x0, None), (0x40, None)])
        assert issued == [0, 1]


class TestPolicyValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            BankScheduler(BankedCache(2), policy="psychic")
