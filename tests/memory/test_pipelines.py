"""Tests for the Figure 4 memory-pipeline models."""

import pytest

from repro.memory.pipelines import (
    ALL_PIPELINES,
    CONVENTIONAL_BANKED,
    DUAL_SCHEDULED,
    SLICED_BANKED,
    TRULY_MULTIPORTED,
    PipelineKind,
)


class TestLatencyStructure:
    def test_multiported_is_reference(self):
        assert TRULY_MULTIPORTED.extra_latency == 0
        assert TRULY_MULTIPORTED.conflict_penalty == 0
        assert TRULY_MULTIPORTED.mispredict_penalty == 0

    def test_sliced_matches_ideal_latency(self):
        """Figure 4's key claim: the sliced pipe has ideal latency."""
        assert SLICED_BANKED.load_latency(5) == \
               TRULY_MULTIPORTED.load_latency(5)

    def test_conventional_and_dual_add_latency(self):
        base = TRULY_MULTIPORTED.load_latency(5)
        assert CONVENTIONAL_BANKED.load_latency(5) > base
        assert DUAL_SCHEDULED.load_latency(5) > base

    def test_only_sliced_needs_predictor(self):
        needing = [p.kind for p in ALL_PIPELINES if p.needs_bank_predictor]
        assert needing == [PipelineKind.SLICED_BANKED]


class TestExpectedTime:
    def test_no_conflicts_no_penalty(self):
        t = TRULY_MULTIPORTED.expected_load_time(5, conflict_rate=0.5)
        assert t == 5.0  # conflicts are free on a true multi-port

    def test_conventional_pays_conflicts(self):
        t0 = CONVENTIONAL_BANKED.expected_load_time(5, 0.0)
        t1 = CONVENTIONAL_BANKED.expected_load_time(5, 0.3)
        assert t1 > t0

    def test_dual_scheduled_conflict_free(self):
        assert DUAL_SCHEDULED.expected_load_time(5, 0.5) == \
               DUAL_SCHEDULED.expected_load_time(5, 0.0)

    def test_sliced_pays_mispredictions(self):
        t0 = SLICED_BANKED.expected_load_time(5, 0.0, mispredict_rate=0.0)
        t1 = SLICED_BANKED.expected_load_time(5, 0.0, mispredict_rate=0.1)
        assert t1 > t0

    def test_crossover_sliced_vs_dual(self):
        """With an accurate predictor the sliced pipe beats dual-scheduled;
        with a poor one it loses — the design trade-off of section 2.3."""
        accurate = SLICED_BANKED.expected_load_time(5, 0, mispredict_rate=0.02)
        poor = SLICED_BANKED.expected_load_time(5, 0, mispredict_rate=0.6)
        dual = DUAL_SCHEDULED.expected_load_time(5, 0.3)
        assert accurate < dual < poor

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            SLICED_BANKED.expected_load_time(5, 1.5)
        with pytest.raises(ValueError):
            SLICED_BANKED.expected_load_time(5, 0.0, mispredict_rate=-0.1)
