"""Every example script must run to completion.

The examples are the library's front door; a broken one is a release
blocker.  ``paper_tour`` is exercised implicitly through the experiment
harness tests (it is just a driver over them) and skipped here for
runtime.
"""

import pathlib
import subprocess
import sys

import pytest

#: Subprocess-per-example makes this the suite's slowest module; CI's
#: coverage-gated step deselects it (-m "not slow") and a dedicated
#: step runs the slow residue.
pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_workload.py",
    "multithreading_study.py",
    "banked_cache_study.py",
    "hitmiss_study.py",
    "disambiguation_study.py",
    "observability_demo.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), script
    proc = subprocess.run([sys.executable, str(path)],
                          capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} printed nothing"


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= scripts
    assert "paper_tour.py" in scripts
