"""Repo-wide test hygiene.

The serve fleet (and a few benches) spawn worker subprocesses that
import from ``src/``; without a guard each spawn scatters
``__pycache__`` directories into the source tree, where stale bytecode
can mask real edits in later runs.  Three layers keep the tree clean:

* this process writes no bytecode (``sys.dont_write_bytecode``);
* every child it spawns inherits ``PYTHONDONTWRITEBYTECODE`` (the
  fleet's spawn env sets it explicitly too — this covers everything
  else);
* any ``__pycache__`` that slipped into ``src/`` earlier (pre-guard
  checkouts) is purged once at session start, so it cannot shadow the
  current sources.

``.gitignore`` keeps ``__pycache__/`` out of commits; this keeps it
out of the working tree in the first place.
"""

import os
import shutil
import sys

sys.dont_write_bytecode = True
os.environ["PYTHONDONTWRITEBYTECODE"] = "1"

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _purge_src_pycache() -> None:
    src = os.path.join(_REPO_ROOT, "src")
    for dirpath, dirnames, _files in os.walk(src):
        if "__pycache__" in dirnames:
            dirnames.remove("__pycache__")
            shutil.rmtree(os.path.join(dirpath, "__pycache__"),
                          ignore_errors=True)


def pytest_configure(config):
    _purge_src_pycache()
