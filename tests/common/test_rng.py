"""Tests for repro.common.rng."""

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(10)] == \
               [b.randint(0, 100) for _ in range(10)]

    def test_different_seed_differs(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != \
               [b.randint(0, 10 ** 9) for _ in range(5)]


class TestStreams:
    def test_stream_isolation(self):
        """Draws on one stream must not perturb another."""
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        # Interleave extra draws on an unrelated stream in `a` only.
        seq_a = []
        for _ in range(5):
            a.stream("noise").random()
            seq_a.append(a.stream("data").random())
        seq_b = [b.stream("data").random() for _ in range(5)]
        assert seq_a == seq_b

    def test_stream_identity(self):
        rng = DeterministicRng(7)
        assert rng.stream("x") is rng.stream("x")

    def test_streams_differ_by_name(self):
        rng = DeterministicRng(7)
        xs = [rng.stream("x").random() for _ in range(4)]
        ys = [rng.stream("y").random() for _ in range(4)]
        assert xs != ys


class TestDistributions:
    def test_bernoulli_extremes(self):
        rng = DeterministicRng(1)
        assert all(rng.bernoulli(1.0) for _ in range(20))
        assert not any(rng.bernoulli(0.0) for _ in range(20))

    def test_geometric_p1_is_zero(self):
        rng = DeterministicRng(1)
        assert rng.geometric(1.0) == 0

    def test_geometric_validation(self):
        rng = DeterministicRng(1)
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_geometric_mean_close(self):
        rng = DeterministicRng(3)
        samples = [rng.geometric(0.5) for _ in range(2000)]
        # Mean of Geometric(0.5) failures-before-success is 1.
        assert 0.8 < sum(samples) / len(samples) < 1.2

    def test_choice_and_choices(self):
        rng = DeterministicRng(5)
        pool = ["a", "b", "c"]
        assert rng.choice(pool) in pool
        picks = rng.choices(pool, weights=[1, 0, 0], k=10)
        assert picks == ["a"] * 10
