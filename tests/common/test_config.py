"""Tests for repro.common.config."""

import pytest

from repro.common.config import (
    BASELINE_MACHINE,
    CacheConfig,
    ExecUnitConfig,
    LatencyConfig,
    MachineConfig,
    MemoryConfig,
)
from repro.common.types import UopClass


class TestCacheConfig:
    def test_baseline_l1_geometry(self):
        l1 = MemoryConfig().l1d
        assert l1.size_bytes == 16 * 1024
        assert l1.line_bytes == 64
        assert l1.ways == 4
        assert l1.n_sets == 64

    def test_baseline_l2_geometry(self):
        l2 = MemoryConfig().l2
        assert l2.size_bytes == 256 * 1024
        assert l2.n_sets == 1024

    def test_size_must_divide(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=4)

    def test_banks_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=16 * 1024, n_banks=3)
        assert CacheConfig(size_bytes=16 * 1024, n_banks=2).n_banks == 2


class TestExecUnitConfig:
    def test_baseline_matches_section_3_1(self):
        units = ExecUnitConfig()
        assert units.n_int == 2
        assert units.n_mem == 2
        assert units.n_fp == 1
        assert units.n_complex == 2

    def test_capacity_mapping(self):
        units = ExecUnitConfig()
        assert units.capacity(UopClass.INT) == 2
        assert units.capacity(UopClass.BRANCH) == 2  # shares integer units
        assert units.capacity(UopClass.LOAD) == 2
        assert units.capacity(UopClass.STA) == 2
        assert units.capacity(UopClass.STD) == 2
        assert units.capacity(UopClass.FP) == 1
        assert units.capacity(UopClass.COMPLEX) == 2
        assert units.capacity(UopClass.NOP) == 0


class TestLatencyConfig:
    def test_collision_penalty_is_paper_value(self):
        assert LatencyConfig().collision_penalty == 8

    def test_load_latency_is_dynamic(self):
        with pytest.raises(ValueError):
            LatencyConfig().of(UopClass.LOAD)

    def test_fixed_latencies(self):
        lat = LatencyConfig()
        assert lat.of(UopClass.INT) == 1
        assert lat.of(UopClass.STA) == lat.agu_latency
        assert lat.of(UopClass.NOP) == 0

    def test_figure3_load_pipe(self):
        # Figure 3: an L1 hit takes 8 cycles from scheduling
        # (register read + AGU, then 5-cycle cache access).
        lat = LatencyConfig()
        mem = MemoryConfig()
        assert lat.agu_latency + mem.l1_latency == 8


class TestMachineConfig:
    def test_baseline_matches_section_3_1(self):
        m = BASELINE_MACHINE
        assert m.fetch_width == 6
        assert m.retire_width == 6
        assert m.register_pool == 128
        assert m.window_size == 32

    def test_with_window(self):
        m = BASELINE_MACHINE.with_window(128)
        assert m.window_size == 128
        assert BASELINE_MACHINE.window_size == 32  # original untouched

    def test_window_cannot_exceed_pool(self):
        with pytest.raises(ValueError):
            MachineConfig(window_size=256, register_pool=128)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            BASELINE_MACHINE.with_window(0)

    def test_with_units(self):
        m = BASELINE_MACHINE.with_units(4, 2)
        assert m.units.n_int == 4
        assert m.units.n_mem == 2
        assert m.units.n_fp == BASELINE_MACHINE.units.n_fp
