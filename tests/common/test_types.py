"""Tests for repro.common.types: uops, accesses, taxonomies."""

import pytest

from repro.common.types import (
    HitMissClass,
    LoadCollisionClass,
    MemAccess,
    Uop,
    UopClass,
    is_load,
    is_store_address,
    is_store_data,
)


class TestMemAccess:
    def test_line_index(self):
        assert MemAccess(0).line(64) == 0
        assert MemAccess(63).line(64) == 0
        assert MemAccess(64).line(64) == 1
        assert MemAccess(1000).line(64) == 15

    def test_bank_line_interleaved(self):
        assert MemAccess(0).bank(2, 64) == 0
        assert MemAccess(64).bank(2, 64) == 1
        assert MemAccess(128).bank(2, 64) == 0
        assert MemAccess(192).bank(4, 64) == 3

    def test_overlap_identical(self):
        a = MemAccess(100, 4)
        assert a.overlaps(MemAccess(100, 4))

    def test_overlap_partial(self):
        assert MemAccess(100, 4).overlaps(MemAccess(102, 4))
        assert MemAccess(102, 4).overlaps(MemAccess(100, 4))

    def test_no_overlap_adjacent(self):
        # Byte ranges [100,104) and [104,108) do not intersect.
        assert not MemAccess(100, 4).overlaps(MemAccess(104, 4))
        assert not MemAccess(104, 4).overlaps(MemAccess(100, 4))

    def test_overlap_containment(self):
        assert MemAccess(100, 16).overlaps(MemAccess(104, 4))


class TestUopConstruction:
    def test_load_requires_mem(self):
        with pytest.raises(ValueError):
            Uop(seq=0, pc=0x100, uclass=UopClass.LOAD)

    def test_sta_requires_mem(self):
        with pytest.raises(ValueError):
            Uop(seq=0, pc=0x100, uclass=UopClass.STA)

    def test_std_requires_sta_link(self):
        with pytest.raises(ValueError):
            Uop(seq=0, pc=0x100, uclass=UopClass.STD)

    def test_int_uop_plain(self):
        u = Uop(seq=3, pc=0x104, uclass=UopClass.INT, srcs=(1, 2), dst=3)
        assert not u.is_load and not u.is_mem and not u.is_branch

    def test_load_predicates(self):
        u = Uop(seq=0, pc=0x100, uclass=UopClass.LOAD, mem=MemAccess(0x40))
        assert u.is_load and u.is_mem
        assert is_load(u)
        assert not is_store_address(u) and not is_store_data(u)

    def test_sta_std_predicates(self):
        sta = Uop(seq=0, pc=0x100, uclass=UopClass.STA, mem=MemAccess(0x40))
        std = Uop(seq=1, pc=0x101, uclass=UopClass.STD, sta_seq=0)
        assert sta.is_sta and std.is_std
        assert is_store_address(sta) and is_store_data(std)
        assert sta.is_mem and std.is_mem

    def test_branch_predicate(self):
        u = Uop(seq=0, pc=0x100, uclass=UopClass.BRANCH, taken=True)
        assert u.is_branch and u.taken


class TestLoadCollisionClass:
    def test_actually_colliding(self):
        assert LoadCollisionClass.AC_PC.actually_colliding
        assert LoadCollisionClass.AC_PNC.actually_colliding
        assert not LoadCollisionClass.ANC_PC.actually_colliding
        assert not LoadCollisionClass.NOT_CONFLICTING.actually_colliding

    def test_predicted_colliding(self):
        assert LoadCollisionClass.AC_PC.predicted_colliding
        assert LoadCollisionClass.ANC_PC.predicted_colliding
        assert not LoadCollisionClass.AC_PNC.predicted_colliding

    def test_correct_cells(self):
        assert LoadCollisionClass.AC_PC.correct
        assert LoadCollisionClass.ANC_PNC.correct
        assert not LoadCollisionClass.AC_PNC.correct
        assert not LoadCollisionClass.ANC_PC.correct


class TestHitMissClass:
    @pytest.mark.parametrize("actual,predicted,expected", [
        (True, True, HitMissClass.AH_PH),
        (True, False, HitMissClass.AH_PM),
        (False, True, HitMissClass.AM_PH),
        (False, False, HitMissClass.AM_PM),
    ])
    def test_classify(self, actual, predicted, expected):
        assert HitMissClass.classify(actual, predicted) is expected

    def test_correct(self):
        assert HitMissClass.AH_PH.correct and HitMissClass.AM_PM.correct
        assert not HitMissClass.AH_PM.correct
        assert not HitMissClass.AM_PH.correct

    def test_actual_hit(self):
        assert HitMissClass.AH_PH.actual_hit and HitMissClass.AH_PM.actual_hit
        assert not HitMissClass.AM_PM.actual_hit
