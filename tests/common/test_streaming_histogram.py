"""StreamingHistogram: quantile accuracy, merging, bounded memory.

The histogram promises quantiles within ``rel_error`` of the exact
sorted-sample values using O(#buckets) memory — these tests check the
promise against exact sorts, on both the numpy bulk path and the pure
scalar path, and the algebraic properties (merge associativity,
serialisation round-trips) the registry machinery relies on.
"""

import math
import random

import pytest

from repro.common.stats import StatGroup, StreamingHistogram

try:
    import numpy as np
    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    HAS_NUMPY = False


def exact_quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def assert_within_rel_error(hist, sorted_values, quantiles=(0.5, 0.9, 0.99)):
    # One bucket spans a (1 + 2e) ratio, so the representative is
    # within a factor (1 + 2e)^(1/2) ~ (1 + e) of any member; allow a
    # hair extra for rank discretisation at the sample sizes used.
    bound = 2.5 * hist.rel_error
    for q in quantiles:
        exact = exact_quantile(sorted_values, q)
        approx = hist.quantile(q)
        assert approx == pytest.approx(exact, rel=bound), (
            f"q={q}: {approx} vs exact {exact}")


class TestAccuracy:
    def test_quantiles_within_bound_scalar_path(self):
        rng = random.Random(7)
        hist = StreamingHistogram("lat")
        values = [rng.lognormvariate(3.0, 1.5) for _ in range(20000)]
        for v in values:
            hist.record(v)
        assert_within_rel_error(hist, sorted(values))

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs numpy")
    def test_quantiles_within_bound_bulk_million(self):
        # The acceptance-criteria case: 10^6 samples, p50/p90/p99
        # within the documented relative-error bound of an exact sort,
        # with memory proportional to the bucket count only.
        rng = np.random.default_rng(11)
        values = rng.lognormal(mean=4.0, sigma=2.0, size=1_000_000)
        hist = StreamingHistogram("lat")
        hist.record_many(values)
        assert hist.count == 1_000_000
        assert_within_rel_error(hist, sorted(values.tolist()),
                                quantiles=(0.5, 0.9, 0.99, 0.999))

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs numpy")
    def test_bulk_and_scalar_paths_agree(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(scale=100.0, size=5000)
        bulk = StreamingHistogram("b")
        bulk.record_many(values)
        scalar = StreamingHistogram("s")
        for v in values.tolist():
            scalar.record(v)
        assert bulk.count == scalar.count
        assert bulk._bins == scalar._bins

    def test_bounded_memory(self):
        # 10^5 values across six orders of magnitude: the bucket count
        # stays O(log(range)/log(1+2e)), nowhere near the sample count.
        rng = random.Random(1)
        hist = StreamingHistogram("mem")
        for _ in range(100_000):
            hist.record(10 ** rng.uniform(-2, 4))
        assert len(hist._bins) < 1500
        assert hist.count == 100_000

    def test_quantile_clamped_to_observed_range(self):
        hist = StreamingHistogram("clamp")
        hist.record(10.0)
        hist.record(10.0)
        assert hist.quantile(0.0) == pytest.approx(10.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)


class TestEdgeCases:
    def test_empty(self):
        hist = StreamingHistogram("e")
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.summary()["count"] == 0

    def test_zeros_and_negatives_underflow_bucket(self):
        hist = StreamingHistogram("z")
        hist.record(0.0)
        hist.record(-5.0)
        hist.record(100.0)
        assert hist.count == 3
        assert hist.min <= 0.0
        # Half the mass is non-positive, so the median is the
        # underflow representative (0), not 100.
        assert hist.quantile(0.4) == 0.0

    def test_weighted_record(self):
        hist = StreamingHistogram("w")
        hist.record(5.0, n=10)
        assert hist.count == 10
        assert hist.sum == pytest.approx(50.0)

    def test_percentile_keys(self):
        hist = StreamingHistogram("p")
        for i in range(1, 101):
            hist.record(float(i))
        pcts = hist.percentiles()
        assert set(pcts) == {"p50", "p90", "p99", "p999"}
        assert pcts["p50"] <= pcts["p90"] <= pcts["p99"] <= pcts["p999"]


class TestMerge:
    def _filled(self, seed, n=3000):
        rng = random.Random(seed)
        hist = StreamingHistogram("m")
        values = [rng.lognormvariate(2.0, 1.0) for _ in range(n)]
        for v in values:
            hist.record(v)
        return hist, values

    def test_merge_equals_union(self):
        a, va = self._filled(1)
        b, vb = self._filled(2)
        a.merge(b)
        assert a.count == len(va) + len(vb)
        assert_within_rel_error(a, sorted(va + vb))

    def test_merge_associative_and_commutative(self):
        parts = [self._filled(seed)[0] for seed in (1, 2, 3)]
        left = parts[0].copy()
        left.merge(parts[1])
        left.merge(parts[2])
        right = parts[2].copy()
        right.merge(parts[1])
        right.merge(parts[0])
        assert left._bins == right._bins
        assert left.count == right.count
        assert left.sum == pytest.approx(right.sum)
        for q in (0.5, 0.9, 0.99):
            assert left.quantile(q) == pytest.approx(right.quantile(q))

    def test_merge_rejects_mismatched_resolution(self):
        a = StreamingHistogram("a", rel_error=0.01)
        b = StreamingHistogram("b", rel_error=0.05)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_empty_is_identity(self):
        a, va = self._filled(4)
        before = dict(a._bins)
        a.merge(StreamingHistogram("empty"))
        assert a._bins == before
        assert a.count == len(va)


class TestSerialisation:
    def test_round_trip(self):
        a, _ = TestMerge()._filled(9)
        b = StreamingHistogram.from_dict(a.as_dict())
        assert b.count == a.count
        assert b._bins == a._bins
        assert b.min == a.min and b.max == a.max
        for q in (0.5, 0.99):
            assert b.quantile(q) == a.quantile(q)

    def test_as_dict_is_json_safe(self):
        import json
        a, _ = TestMerge()._filled(10)
        text = json.dumps(a.as_dict())
        b = StreamingHistogram.from_dict(json.loads(text))
        assert b.count == a.count


class TestStatGroupIntegration:
    def test_streaming_factory_and_as_dict(self):
        group = StatGroup("g")
        hist = group.streaming("latency")
        assert hist is group.streaming("latency")  # memoised
        hist.record(3.0)
        hist.record(30.0)
        out = group.as_dict()
        assert out["latency"]["count"] == 2
        assert "p50" in out["latency"]
