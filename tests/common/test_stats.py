"""Tests for repro.common.stats."""

import pytest

from repro.common.stats import (
    Counter,
    Histogram,
    RatioStat,
    StatGroup,
    geometric_mean,
    weighted_mean,
)


class TestCounter:
    def test_add_default(self):
        c = Counter("events")
        c.add()
        c.add(3)
        assert c.value == 4
        assert int(c) == 4

    def test_negative_rejected(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.add(-1)

    def test_reset(self):
        c = Counter("events")
        c.add(5)
        c.reset()
        assert c.value == 0


class TestRatioStat:
    def test_record(self):
        r = RatioStat("hits")
        for outcome in (True, True, False, True):
            r.record(outcome)
        assert r.num == 3 and r.den == 4
        assert r.ratio == pytest.approx(0.75)

    def test_empty_ratio_is_zero(self):
        assert RatioStat("x").ratio == 0.0

    def test_bulk_add(self):
        r = RatioStat("x")
        r.add(10, 20)
        assert r.ratio == pytest.approx(0.5)


class TestHistogram:
    def test_counts_and_total(self):
        h = Histogram("dist")
        h.add(1)
        h.add(1)
        h.add(5, 3)
        assert h.count(1) == 2
        assert h.count(5) == 3
        assert h.total == 5

    def test_mean(self):
        h = Histogram("d")
        h.add(2, 2)
        h.add(4, 2)
        assert h.mean() == pytest.approx(3.0)

    def test_mean_empty(self):
        assert Histogram("d").mean() == 0.0

    def test_percentile(self):
        h = Histogram("d")
        for key in range(1, 11):
            h.add(key)
        assert h.percentile(0.5) == 5
        assert h.percentile(1.0) == 10

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            Histogram("d").percentile(1.5)

    def test_items_sorted(self):
        h = Histogram("d")
        h.add(5)
        h.add(1)
        h.add(3)
        assert [k for k, _ in h.items()] == [1, 3, 5]


class TestStatGroup:
    def test_registration_is_idempotent(self):
        g = StatGroup("g")
        c1 = g.counter("loads")
        c2 = g.counter("loads")
        assert c1 is c2

    def test_type_conflict_rejected(self):
        g = StatGroup("g")
        g.counter("x")
        with pytest.raises(TypeError):
            g.ratio("x")

    def test_children(self):
        g = StatGroup("top")
        child = g.child("l1")
        assert g.child("l1") is child

    def test_as_dict(self):
        g = StatGroup("g")
        g.counter("a").add(2)
        g.ratio("b").record(True)
        g.child("sub").counter("c").add(1)
        d = g.as_dict()
        assert d["a"] == 2
        assert d["b"]["ratio"] == 1.0
        assert d["sub"]["c"] == 1

    def test_reset_recursive(self):
        g = StatGroup("g")
        g.counter("a").add(2)
        g.child("sub").counter("c").add(1)
        g.reset()
        assert g.as_dict()["a"] == 0
        assert g.as_dict()["sub"]["c"] == 0

    def test_iteration(self):
        g = StatGroup("g")
        g.counter("a")
        g.histogram("h")
        names = [name for name, _ in g]
        assert names == ["a", "h"]


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.1, 1.1, 1.1]) == pytest.approx(1.1)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_weighted_mean(self):
        pairs = {"a": (2.0, 1.0), "b": (4.0, 3.0)}
        assert weighted_mean(pairs) == pytest.approx(3.5)

    def test_weighted_mean_zero_weight(self):
        assert weighted_mean({"a": (2.0, 0.0)}) == 0.0
