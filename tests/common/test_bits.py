"""Tests for repro.common.bits."""

import pytest

from repro.common import bits


class TestMaskExtractFold:
    def test_mask(self):
        assert bits.mask(0) == 0
        assert bits.mask(4) == 0xF
        assert bits.mask(10) == 0x3FF

    def test_mask_negative(self):
        with pytest.raises(ValueError):
            bits.mask(-1)

    def test_extract(self):
        assert bits.extract(0b110100, 2, 3) == 0b101
        assert bits.extract(0xFF00, 8, 8) == 0xFF

    def test_fold_short_value(self):
        assert bits.fold(0x5, 8) == 0x5

    def test_fold_wraps(self):
        # 0x1234 folded to 8 bits: 0x34 ^ 0x12
        assert bits.fold(0x1234, 8) == 0x34 ^ 0x12

    def test_fold_requires_positive_width(self):
        with pytest.raises(ValueError):
            bits.fold(0x1234, 0)


class TestIlog2:
    def test_powers(self):
        assert bits.ilog2(1) == 0
        assert bits.ilog2(1024) == 10

    def test_non_power_rejected(self):
        with pytest.raises(ValueError):
            bits.ilog2(24)
        with pytest.raises(ValueError):
            bits.ilog2(0)


class TestPcIndex:
    def test_in_range(self):
        for pc in (0x400000, 0x400004, 0x7FFF0000, 0x12345678):
            assert 0 <= bits.pc_index(pc, 1024) < 1024

    def test_single_entry(self):
        assert bits.pc_index(0x400000, 1) == 0

    def test_alignment_insensitive(self):
        # The two low bits are dropped: pc and pc+1 share an index.
        assert bits.pc_index(0x400000, 256) == bits.pc_index(0x400001, 256)

    def test_spreads_regular_strides(self):
        # Page-strided PCs must not all collapse onto a few indices.
        indices = {bits.pc_index(0x400000 + i * 0x1000, 256)
                   for i in range(64)}
        assert len(indices) > 32


class TestGshareIndex:
    def test_in_range(self):
        for history in (0, 0x3FF, 0x155):
            assert 0 <= bits.gshare_index(0x400100, history, 2048) < 2048

    def test_history_changes_index(self):
        pc = 0x400100
        a = bits.gshare_index(pc, 0b1010, 2048)
        b = bits.gshare_index(pc, 0b0101, 2048)
        assert a != b


class TestSkewing:
    def test_h_inverse_roundtrip(self):
        for value in range(64):
            assert bits._h_inv(bits._h(value, 6), 6) == value

    def test_skew_banks_differ(self):
        pc, hist = 0x400100, 0x1F
        idx = [bits.skew_index(pc, hist, b, 1024) for b in range(3)]
        assert len(set(idx)) > 1

    def test_skew_in_range(self):
        for bank in range(3):
            assert 0 <= bits.skew_index(0x400100, 7, bank, 1024) < 1024

    def test_skew_bad_bank(self):
        with pytest.raises(ValueError):
            bits.skew_index(0x400100, 7, 3, 1024)


class TestShiftHistory:
    def test_shift_in(self):
        h = 0
        h = bits.shift_history(h, True, 4)
        assert h == 0b0001
        h = bits.shift_history(h, True, 4)
        h = bits.shift_history(h, False, 4)
        assert h == 0b0110

    def test_truncates_to_length(self):
        h = bits.mask(4)
        h = bits.shift_history(h, True, 4)
        assert h == bits.mask(4)
