"""Tests for the Collision History Table family."""

import pytest

from repro.cht.base import (
    AlwaysCollides,
    CollisionPrediction,
    NeverCollides,
    TaggedSetAssocTable,
)
from repro.cht.clearing import PeriodicClearing
from repro.cht.combined import CombinedCHT
from repro.cht.full import FullCHT
from repro.cht.tagged import TaggedOnlyCHT
from repro.cht.tagless import TaglessCHT

ALL_CHTS = [
    lambda: FullCHT(n_entries=256, ways=4),
    lambda: TaglessCHT(n_entries=256),
    lambda: TaggedOnlyCHT(n_entries=256, ways=4),
    lambda: CombinedCHT(tagged_entries=256, tagless_entries=512),
]
IDS = ["full", "tagless", "tagged-only", "combined"]


class TestCollisionPrediction:
    def test_distance_validation(self):
        with pytest.raises(ValueError):
            CollisionPrediction(colliding=True, distance=0)

    def test_default_not_colliding(self):
        p = CollisionPrediction(colliding=False)
        assert not p.colliding and p.distance is None


class TestDegeneratePredictors:
    def test_never_collides(self):
        p = NeverCollides()
        p.train(0x100, True, 1)
        assert not p.lookup(0x100).colliding
        assert p.storage_bits == 0

    def test_always_collides(self):
        p = AlwaysCollides()
        p.train(0x100, False)
        assert p.lookup(0x100).colliding


@pytest.mark.parametrize("factory", ALL_CHTS, ids=IDS)
class TestCommonBehaviour:
    def test_cold_lookup_predicts_non_colliding(self, factory):
        """Unknown loads default to non-colliding (the common case)."""
        assert not factory().lookup(0x4000).colliding

    def test_learns_collision(self, factory):
        cht = factory()
        pc = 0x4000
        for _ in range(4):
            cht.train(pc, True, 1)
        assert cht.lookup(pc).colliding

    def test_pcs_independent(self, factory):
        cht = factory()
        for _ in range(4):
            cht.train(0x4000, True, 1)
        assert not cht.lookup(0x8888).colliding

    def test_clear(self, factory):
        cht = factory()
        for _ in range(4):
            cht.train(0x4000, True, 1)
        cht.clear()
        assert not cht.lookup(0x4000).colliding

    def test_storage_positive(self, factory):
        assert factory().storage_bits > 0


class TestFullCHT:
    def test_allocate_only_on_collision(self):
        cht = FullCHT(n_entries=128)
        for _ in range(10):
            cht.train(0x4000, False)
        # Never collided: no entry, still predicted non-colliding.
        assert not cht.lookup(0x4000).colliding

    def test_unlearns_changed_behaviour(self):
        """The Full CHT's defining property vs. the sticky tables."""
        cht = FullCHT(n_entries=128, counter_bits=2)
        pc = 0x4000
        for _ in range(4):
            cht.train(pc, True, 1)
        for _ in range(6):
            cht.train(pc, False)
        assert not cht.lookup(pc).colliding

    def test_distance_tracking_minimum(self):
        cht = FullCHT(n_entries=128, track_distance=True)
        pc = 0x4000
        cht.train(pc, True, 5)
        cht.train(pc, True, 2)
        cht.train(pc, True, 7)
        assert cht.lookup(pc).distance == 2

    def test_distance_disabled_by_default(self):
        cht = FullCHT(n_entries=128)
        cht.train(0x4000, True, 3)
        assert cht.lookup(0x4000).distance is None

    def test_invalidate_on_noncolliding_frees_entry(self):
        cht = FullCHT(n_entries=128, invalidate_on_noncolliding=True)
        pc = 0x4000
        cht.train(pc, True, 1)
        for _ in range(8):
            cht.train(pc, False)
        # Entry dropped; a later collision re-allocates cleanly.
        cht.train(pc, True, 1)
        assert cht.lookup(pc).colliding


class TestTaglessCHT:
    def test_one_bit_flips_both_ways(self):
        cht = TaglessCHT(n_entries=128, counter_bits=1)
        pc = 0x4000
        cht.train(pc, True)
        assert cht.lookup(pc).colliding
        cht.train(pc, False)
        assert not cht.lookup(pc).colliding

    def test_aliasing_interference(self):
        """Two PCs mapping to one entry interfere — the tagless cost."""
        cht = TaglessCHT(n_entries=1, counter_bits=1)
        cht.train(0x4000, True)
        # A different load aliases onto the same (only) entry.
        assert cht.lookup(0x9999).colliding

    def test_distance_sidecar(self):
        cht = TaglessCHT(n_entries=128, track_distance=True)
        cht.train(0x4000, True, 4)
        cht.train(0x4000, True, 2)
        assert cht.lookup(0x4000).distance == 2


class TestTaggedOnlyCHT:
    def test_sticky(self):
        cht = TaggedOnlyCHT(n_entries=128)
        pc = 0x4000
        cht.train(pc, True, 1)
        for _ in range(50):
            cht.train(pc, False)
        assert cht.lookup(pc).colliding  # sticky: never unlearns

    def test_occupancy(self):
        cht = TaggedOnlyCHT(n_entries=128)
        cht.train(0x4000, True)
        cht.train(0x5000, True)
        cht.train(0x6000, False)  # non-collisions not inserted
        assert cht.occupancy == 2

    def test_capacity_eviction_forgets(self):
        cht = TaggedOnlyCHT(n_entries=4, ways=1)
        pcs = [0x1000 * (i + 1) for i in range(16)]
        for pc in pcs:
            cht.train(pc, True)
        # Early loads evicted: predicted non-colliding again.
        assert sum(cht.lookup(pc).colliding for pc in pcs) <= 4


class TestCombinedCHT:
    def test_safe_mode_is_union(self):
        cht = CombinedCHT(tagged_entries=4, ways=1, tagless_entries=256,
                          mode="safe")
        # Fill the tiny tag table so an early collider gets evicted...
        victim = 0x1000
        cht.train(victim, True)
        for i in range(8):
            cht.train(0x2000 * (i + 1), True)
        # ...but the tagless half still remembers it.
        assert cht.lookup(victim).colliding

    def test_aggressive_mode_is_intersection(self):
        cht = CombinedCHT(tagged_entries=256, tagless_entries=256,
                          mode="aggressive")
        pc = 0x4000
        cht.train(pc, True)  # tagged marks; tagless 1-bit counter sets
        cht.train(pc, False)  # tagless unlearns; tagged stays sticky
        assert not cht.lookup(pc).colliding

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            CombinedCHT(mode="bogus")

    def test_distance_minimum_across_components(self):
        cht = CombinedCHT(tagged_entries=256, tagless_entries=256,
                          track_distance=True)
        cht.train(0x4000, True, 6)
        cht.train(0x4000, True, 3)
        assert cht.lookup(0x4000).distance == 3


class TestPeriodicClearing:
    def test_clears_after_interval(self):
        inner = TaggedOnlyCHT(n_entries=128)
        cht = PeriodicClearing(inner, interval=5)
        pc = 0x4000
        cht.train(pc, True)
        for _ in range(4):
            cht.train(0x9000, False)
        # Interval reached: table cleared.
        assert not cht.lookup(pc).colliding
        assert cht.clear_count == 1

    def test_lets_sticky_entries_age_out(self):
        """Cyclic clearing solves the tagged-only behaviour-change problem."""
        inner = TaggedOnlyCHT(n_entries=128)
        cht = PeriodicClearing(inner, interval=10)
        pc = 0x4000
        cht.train(pc, True)  # collides once...
        for _ in range(20):
            cht.train(pc, False)  # ...then never again
        assert not cht.lookup(pc).colliding

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            PeriodicClearing(TaglessCHT(128), interval=0)


class TestTaggedSetAssocTable:
    def test_put_get(self):
        t = TaggedSetAssocTable(n_entries=16, ways=4)
        t.put(0x100, "a")
        assert t.get(0x100) == "a"
        assert t.get(0x999) is None

    def test_lru_within_set(self):
        t = TaggedSetAssocTable(n_entries=2, ways=2)
        # Force three PCs into the table (n_sets=1 would need entries==ways;
        # use 2 sets and probe behaviour through eviction counts).
        t.put(0x100, 1)
        t.put(0x100, 2)  # overwrite
        assert t.get(0x100) == 2

    def test_eviction_returns_victim(self):
        t = TaggedSetAssocTable(n_entries=1, ways=1)
        t.put(0x100, "a")
        evicted = t.put(0x99900, "b")
        assert evicted == "a"

    def test_invalidate(self):
        t = TaggedSetAssocTable(n_entries=16, ways=4)
        t.put(0x100, "a")
        assert t.invalidate(0x100)
        assert t.get(0x100) is None
        assert not t.invalidate(0x100)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TaggedSetAssocTable(n_entries=10, ways=4)
