"""Tests for the opcode-annotated (trace-cache) CHT."""

import pytest

from repro.cht.annotated import AnnotatedCHT


class TestBasicAnnotation:
    def test_cold_predicts_non_colliding(self):
        assert not AnnotatedCHT().lookup(0x100).colliding

    def test_learns_collision(self):
        cht = AnnotatedCHT(counter_bits=1)
        cht.train(0x100, True, 1)
        assert cht.lookup(0x100).colliding

    def test_non_colliding_loads_not_annotated(self):
        cht = AnnotatedCHT()
        cht.train(0x100, False)
        assert cht.occupancy == 0

    def test_one_bit_counter_unlearns(self):
        cht = AnnotatedCHT(counter_bits=1)
        cht.train(0x100, True, 1)
        cht.train(0x100, False)
        assert not cht.lookup(0x100).colliding

    def test_distance_tracking(self):
        cht = AnnotatedCHT(track_distance=True)
        cht.train(0x100, True, 5)
        cht.train(0x100, True, 2)
        assert cht.lookup(0x100).distance == 2


class TestCapacity:
    def test_lru_eviction(self):
        cht = AnnotatedCHT(capacity=2)
        cht.train(0x100, True, 1)
        cht.train(0x200, True, 1)
        cht.train(0x300, True, 1)  # evicts 0x100
        assert not cht.lookup(0x100).colliding
        assert cht.lookup(0x300).colliding
        assert cht.occupancy == 2

    def test_touch_refreshes(self):
        cht = AnnotatedCHT(capacity=2)
        cht.train(0x100, True, 1)
        cht.train(0x200, True, 1)
        cht.train(0x100, True, 1)  # refresh
        cht.train(0x300, True, 1)  # evicts 0x200
        assert cht.lookup(0x100).colliding
        assert not cht.lookup(0x200).colliding

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AnnotatedCHT(capacity=0)


class TestPathSensitivity:
    def test_same_load_different_paths(self):
        """The trace-cache advantage: one static load, two behaviours."""
        cht = AnnotatedCHT(path_bits=4, counter_bits=1)
        pc = 0x100

        def on_path(branches):
            cht._path_history = 0
            for taken in branches:
                cht.observe_branch(taken)

        # Path A: the load collides.  Path B: it does not.
        on_path([True, True])
        cht.train(pc, True, 1)
        on_path([False, False])
        cht.train(pc, False)

        on_path([True, True])
        assert cht.lookup(pc).colliding
        on_path([False, False])
        assert not cht.lookup(pc).colliding

    def test_pathless_mode_ignores_branches(self):
        cht = AnnotatedCHT(path_bits=0)
        cht.train(0x100, True, 1)
        cht.observe_branch(True)
        cht.observe_branch(False)
        assert cht.lookup(0x100).colliding

    def test_clear_resets_path(self):
        cht = AnnotatedCHT(path_bits=4)
        cht.observe_branch(True)
        cht.train(0x100, True, 1)
        cht.clear()
        assert cht.occupancy == 0
        assert not cht.lookup(0x100).colliding


class TestAsSchemePredictor:
    def test_drives_inclusive_ordering(self):
        """The annotated CHT plugs into the same scheme slot."""
        from repro.engine.machine import Machine
        from repro.engine.ordering import InclusiveOrdering, make_scheme
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed

        trace = build_trace(profile_for("cd"), n_uops=5000,
                            seed=trace_seed("cd"), name="cd")
        baseline = Machine(scheme=make_scheme("traditional")).run(trace)
        annotated = Machine(
            scheme=InclusiveOrdering(AnnotatedCHT(capacity=8192))
        ).run(trace)
        assert annotated.retired_uops == len(trace)
        assert annotated.speedup_over(baseline) > 1.0
