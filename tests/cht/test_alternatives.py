"""Tests for the prior-art predictors: store sets and the store barrier."""

import pytest

from repro.cht.barrier import StoreBarrierCache
from repro.cht.storesets import StoreSetPredictor


class TestStoreSetAssignment:
    def test_unknown_pcs_have_no_set(self):
        p = StoreSetPredictor()
        assert p.set_of(0x100) == StoreSetPredictor.INVALID
        assert p.on_load_rename(0x100) is None

    def test_violation_creates_shared_set(self):
        p = StoreSetPredictor()
        p.on_violation(load_pc=0x100, store_pc=0x200)
        assert p.set_of(0x100) == p.set_of(0x200)
        assert p.set_of(0x100) != StoreSetPredictor.INVALID

    def test_second_store_joins_existing_set(self):
        p = StoreSetPredictor()
        p.on_violation(0x100, 0x200)
        p.on_violation(0x100, 0x300)
        assert p.set_of(0x300) == p.set_of(0x100)

    def test_merge_picks_smaller_set_id(self):
        p = StoreSetPredictor()
        p.on_violation(0x100, 0x200)  # set 0
        p.on_violation(0x300, 0x400)  # set 1
        p.on_violation(0x100, 0x400)  # merge
        assert p.set_of(0x100) == p.set_of(0x400) == 0


class TestLfst:
    def test_load_waits_for_last_fetched_store(self):
        p = StoreSetPredictor()
        p.on_violation(0x100, 0x200)
        p.on_store_rename(0x200, seq=42)
        assert p.on_load_rename(0x100) == 42

    def test_newest_store_wins(self):
        p = StoreSetPredictor()
        p.on_violation(0x100, 0x200)
        p.on_store_rename(0x200, seq=42)
        previous = p.on_store_rename(0x200, seq=50)
        assert previous == 42
        assert p.on_load_rename(0x100) == 50

    def test_completion_clears_entry(self):
        p = StoreSetPredictor()
        p.on_violation(0x100, 0x200)
        p.on_store_rename(0x200, seq=42)
        p.on_store_complete(0x200, seq=42)
        assert p.on_load_rename(0x100) is None

    def test_stale_completion_ignored(self):
        p = StoreSetPredictor()
        p.on_violation(0x100, 0x200)
        p.on_store_rename(0x200, seq=42)
        p.on_store_rename(0x200, seq=50)
        p.on_store_complete(0x200, seq=42)  # older instance completes
        assert p.on_load_rename(0x100) == 50

    def test_storeless_pc_updates_nothing(self):
        p = StoreSetPredictor()
        assert p.on_store_rename(0x999, seq=1) is None

    def test_cyclic_clear(self):
        p = StoreSetPredictor()
        p.on_violation(0x100, 0x200)
        p.on_store_rename(0x200, seq=42)
        p.cyclic_clear()
        assert p.set_of(0x100) == StoreSetPredictor.INVALID
        assert p.on_load_rename(0x100) is None

    def test_storage_positive(self):
        assert StoreSetPredictor().storage_bits > 0


class TestStoreBarrierCache:
    def test_cold_store_is_not_barrier(self):
        assert not StoreBarrierCache().is_barrier(0x200)

    def test_violations_set_barrier(self):
        c = StoreBarrierCache()
        c.train(0x200, True)
        c.train(0x200, True)
        assert c.is_barrier(0x200)

    def test_clean_completions_clear_barrier(self):
        c = StoreBarrierCache()
        for _ in range(3):
            c.train(0x200, True)
        for _ in range(4):
            c.train(0x200, False)
        assert not c.is_barrier(0x200)

    def test_hysteresis(self):
        c = StoreBarrierCache(counter_bits=2)
        for _ in range(3):
            c.train(0x200, True)  # saturate
        c.train(0x200, False)
        assert c.is_barrier(0x200)  # one clean pass is not enough

    def test_clear(self):
        c = StoreBarrierCache()
        c.train(0x200, True)
        c.train(0x200, True)
        c.clear()
        assert not c.is_barrier(0x200)


class TestEngineIntegration:
    """Full-machine runs of the alternative ordering schemes."""

    def _trace(self):
        from repro.trace.builder import build_trace
        from repro.trace.workloads import profile_for, trace_seed
        return build_trace(profile_for("cd"), n_uops=5000,
                           seed=trace_seed("cd"), name="cd")

    def test_schemes_run_to_completion(self):
        from repro.engine.machine import Machine
        from repro.engine.ordering import make_scheme
        trace = self._trace()
        for name in ("storesets", "barrier"):
            result = Machine(scheme=make_scheme(name)).run(trace)
            assert result.retired_uops == len(trace), name

    def test_storesets_reduce_penalties_vs_opportunistic(self):
        from repro.engine.machine import Machine
        from repro.engine.ordering import make_scheme
        trace = self._trace()
        opportunistic = Machine(
            scheme=make_scheme("opportunistic")).run(trace)
        storesets = Machine(scheme=make_scheme("storesets")).run(trace)
        assert storesets.collision_penalties < \
               opportunistic.collision_penalties

    def test_storesets_beat_traditional(self):
        from repro.engine.machine import Machine
        from repro.engine.ordering import make_scheme
        trace = self._trace()
        baseline = Machine(scheme=make_scheme("traditional")).run(trace)
        storesets = Machine(scheme=make_scheme("storesets")).run(trace)
        assert storesets.speedup_over(baseline) > 1.0

    def test_barrier_beats_traditional(self):
        from repro.engine.machine import Machine
        from repro.engine.ordering import make_scheme
        trace = self._trace()
        baseline = Machine(scheme=make_scheme("traditional")).run(trace)
        barrier = Machine(scheme=make_scheme("barrier")).run(trace)
        assert barrier.speedup_over(baseline) > 1.0
