"""Tests for the extension experiments (ext-penalty / prior-art / smt)."""

import pytest

from repro.experiments.extensions import (
    render_penalty_sweep,
    render_prior_art,
    render_smt,
    run_penalty_sweep,
    run_prior_art,
    run_smt,
)
from repro.experiments.harness import ExperimentSettings

TINY = ExperimentSettings(n_uops=4000, traces_per_group=1)


class TestPenaltySweep:
    @pytest.fixture(scope="class")
    def data(self):
        return run_penalty_sweep(TINY, penalties=(2, 16))

    def test_rows_per_penalty(self, data):
        assert [r["penalty"] for r in data["rows"]] == [2, 16]

    def test_prediction_gap_widens_with_penalty(self, data):
        """The headline: inclusive gains on opportunistic as collisions
        get more expensive."""
        low, high = data["rows"]
        gap_low = low["inclusive"] - low["opportunistic"]
        gap_high = high["inclusive"] - high["opportunistic"]
        assert gap_high > gap_low

    def test_perfect_always_on_top(self, data):
        for row in data["rows"]:
            assert row["perfect"] >= row["inclusive"] - 0.01
            assert row["perfect"] >= row["opportunistic"] - 0.01

    def test_render(self, data):
        text = render_penalty_sweep(data)
        assert "penalty" in text and "inclusive" in text


class TestPriorArt:
    @pytest.fixture(scope="class")
    def data(self):
        return run_prior_art(TINY)

    def test_all_mechanisms_reported(self, data):
        names = {r["scheme"] for r in data["rows"]}
        assert names == {"barrier", "storesets", "inclusive",
                         "exclusive", "perfect"}

    def test_storage_accounting(self, data):
        rows = {r["scheme"]: r for r in data["rows"]}
        assert rows["perfect"]["storage_bytes"] == 0
        assert rows["barrier"]["storage_bytes"] < \
               rows["inclusive"]["storage_bytes"] < \
               rows["storesets"]["storage_bytes"]

    def test_cost_effectiveness_claim(self, data):
        """The CHT reaches most of the store-set speedup cheaper."""
        rows = {r["scheme"]: r for r in data["rows"]}
        assert rows["inclusive"]["speedup"] > \
               0.9 * rows["storesets"]["speedup"]

    def test_everything_beats_baseline(self, data):
        for row in data["rows"]:
            assert row["speedup"] > 1.0, row["scheme"]

    def test_render(self, data):
        assert "prior art" in render_prior_art(data)


class TestSmt:
    @pytest.fixture(scope="class")
    def data(self):
        return run_smt(TINY)

    def test_four_policies(self, data):
        assert {r["policy"] for r in data["rows"]} == \
               {"none", "reactive", "predicted", "oracle"}

    def test_switching_beats_stalling(self, data):
        rows = {r["policy"]: r for r in data["rows"]}
        assert rows["predicted"]["cycles"] < rows["none"]["cycles"]

    def test_render(self, data):
        assert "multithreading" in render_smt(data)


class TestPrefetchStudy:
    @pytest.fixture(scope="class")
    def data(self):
        from repro.experiments.extensions import run_prefetch
        return run_prefetch(TINY)

    def test_rows_shape(self, data):
        assert len(data["rows"]) == 4  # 2 groups x on/off

    def test_prefetch_lowers_misses(self, data):
        rows = {(r["group"], r["prefetch"]): r for r in data["rows"]}
        for group in ("SpecFP95", "SysmarkNT"):
            assert rows[(group, "on")]["miss_rate"] <= \
                   rows[(group, "off")]["miss_rate"] + 1e-9, group

    def test_prefetch_erodes_hmp_coverage_on_fp(self, data):
        """The competition effect: the regular (predictable) misses are
        exactly the prefetchable ones."""
        rows = {(r["group"], r["prefetch"]): r for r in data["rows"]}
        assert rows[("SpecFP95", "on")]["hmp_coverage"] < \
               rows[("SpecFP95", "off")]["hmp_coverage"]

    def test_render(self, data):
        from repro.experiments.extensions import render_prefetch
        assert "prefetching" in render_prefetch(data)
