"""Direct tests for the sweep harnesses (fig8, fig11, ext-bank-perf).

These are exercised at tiny budgets — the benchmarks cover full-size
runs; here the contract is structure and basic sanity.
"""

import pytest

from repro.experiments.extensions import render_bank_perf, run_bank_perf
from repro.experiments.harness import ExperimentSettings
from repro.experiments.hitmiss_speedup import (
    HMP_KINDS,
    render_fig11,
    run_fig11,
)
from repro.experiments.machine_sweep import (
    CONFIGS,
    FIG8_GROUPS,
    render_fig8,
    run_fig8,
    widening_gain,
)

TINY = ExperimentSettings(n_uops=2500, traces_per_group=1)


@pytest.mark.slow
class TestFig8Harness:
    @pytest.fixture(scope="class")
    def data(self):
        return run_fig8(TINY)

    def test_all_configs_and_groups(self, data):
        assert set(data["configs"]) == {label for label, _, _ in CONFIGS}
        for per_group in data["configs"].values():
            assert set(per_group) == set(FIG8_GROUPS)

    def test_speedups_positive(self, data):
        for per_group in data["configs"].values():
            for speedups in per_group.values():
                for value in speedups.values():
                    assert value > 0.5

    def test_widening_gain_helper(self, data):
        gains = widening_gain(data, scheme="perfect")
        assert set(gains) == set(data["configs"])
        assert all(v > 0 for v in gains.values())

    def test_render(self, data):
        text = render_fig8(data)
        assert "EU2/MEM1" in text and "EU4/MEM2" in text


class TestFig11Harness:
    @pytest.fixture(scope="class")
    def data(self):
        return run_fig11(TINY)

    def test_all_predictors(self, data):
        for speedups in data["groups"].values():
            assert set(speedups) == set(HMP_KINDS)

    def test_average_present(self, data):
        assert set(data["average"]) == set(HMP_KINDS)

    def test_render(self, data):
        assert "Figure 11" in render_fig11(data)


class TestBankPerfHarness:
    @pytest.fixture(scope="class")
    def data(self):
        return run_bank_perf(TINY)

    def test_policies(self, data):
        assert [r["policy"] for r in data["rows"]] == \
               ["oblivious", "predicted", "oracle"]

    def test_oracle_removes_all_conflicts(self, data):
        rows = {r["policy"]: r for r in data["rows"]}
        assert rows["oracle"]["bank_conflicts"] == 0
        assert rows["predicted"]["bank_conflicts"] <= \
               rows["oblivious"]["bank_conflicts"]

    def test_oblivious_is_unit_baseline(self, data):
        rows = {r["policy"]: r for r in data["rows"]}
        assert rows["oblivious"]["speedup_vs_oblivious"] == \
               pytest.approx(1.0)

    def test_render(self, data):
        assert "bank-aware" in render_bank_perf(data)
