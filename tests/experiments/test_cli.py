"""Smoke tests for the two command-line entry points."""

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.trace.__main__ import main as trace_main


class TestExperimentsCli:
    def test_single_figure(self, capsys):
        rc = experiments_main(["fig12", "--uops", "3000",
                               "--traces-per-group", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "done in" in out

    def test_extension_experiment(self, capsys):
        rc = experiments_main(["ext-smt", "--uops", "3000",
                               "--traces-per-group", "1"])
        assert rc == 0
        assert "multithreading" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])


class TestTraceCli:
    def test_list(self, capsys):
        assert trace_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SysmarkNT" in out and "cd" in out

    def test_build(self, capsys):
        assert trace_main(["build", "cd", "--uops", "2000"]) == 0
        assert "uops" in capsys.readouterr().out

    def test_dump_and_show(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        assert trace_main(["dump", "gcc", path, "--uops", "1500"]) == 0
        capsys.readouterr()
        assert trace_main(["show", path, "--head", "2"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "SpecInt95" in out

    def test_unknown_trace_errors(self):
        with pytest.raises(KeyError):
            trace_main(["build", "nonexistent"])
