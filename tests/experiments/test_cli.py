"""Smoke tests for the two command-line entry points."""

import json

import pytest

import repro.experiments.__main__ as exp_cli
from repro.experiments.__main__ import EXIT_DEGRADED
from repro.experiments.__main__ import main as experiments_main
from repro.trace.__main__ import main as trace_main


class TestExperimentsCli:
    def test_single_figure(self, capsys):
        rc = experiments_main(["fig12", "--uops", "3000",
                               "--traces-per-group", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "done in" in out

    def test_extension_experiment(self, capsys):
        rc = experiments_main(["ext-smt", "--uops", "3000",
                               "--traces-per-group", "1"])
        assert rc == 0
        assert "multithreading" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])

    def test_bad_uops_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["fig12", "--uops", "0"])
        assert excinfo.value.code == 2

    def test_bad_chaos_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            experiments_main(["fig12", "--chaos", "worker-kil"])
        assert excinfo.value.code == 2
        assert "choose from" in capsys.readouterr().err


class TestExitCodeContract:
    """0 = complete, 2 = usage, 3 = degraded (partial data written)."""

    def test_failed_figure_degrades_and_writes_partial_json(
            self, tmp_path, capsys, monkeypatch):
        def explode(settings):
            from repro.parallel import SimJob, run_jobs
            from tests.parallel import _grid_jobs
            return run_jobs([SimJob.make(_grid_jobs.fail,
                                         key=("fail", 1), x=1)])

        monkeypatch.setitem(exp_cli.EXPERIMENTS, "fig12", explode)
        json_path = tmp_path / "out.json"
        rc = experiments_main(["classification", "--uops", "3000",
                               "--traces-per-group", "1",
                               "--retries", "0",
                               "--json", str(json_path)])
        # fig12 was not requested: the healthy figures complete fine.
        assert rc == 0

        rc = experiments_main(["fig12", "--uops", "3000",
                               "--traces-per-group", "1",
                               "--retries", "0",
                               "--json", str(json_path)])
        assert rc == EXIT_DEGRADED
        err = capsys.readouterr().err
        assert "failed after 1 attempt(s)" in err
        assert "degraded" in err
        # The partial JSON is still written, with the error recorded.
        payload = json.loads(json_path.read_text())
        assert "error" in payload["fig12"]

    def test_degraded_run_keeps_later_figures(self, tmp_path,
                                              monkeypatch, capsys):
        def explode(settings):
            from repro.parallel import SimJob, run_jobs
            from tests.parallel import _grid_jobs
            return run_jobs([SimJob.make(_grid_jobs.fail,
                                         key=("fail", 2), x=2)])

        monkeypatch.setitem(exp_cli.EXPERIMENTS, "fig5", explode)
        json_path = tmp_path / "out.json"
        rc = experiments_main(["classification", "--uops", "3000",
                               "--traces-per-group", "1",
                               "--retries", "0",
                               "--json", str(json_path),
                               "--obs-dir", str(tmp_path / "obs")])
        assert rc == EXIT_DEGRADED
        payload = json.loads(json_path.read_text())
        assert "error" in payload["fig5"]
        assert "error" not in payload["fig6"]  # fig6 survived
        assert payload["fig6"]["sweep"]
        manifest = json.loads(
            (tmp_path / "obs" / "manifest.json").read_text())
        healing = manifest["extra"]["healing"]
        assert healing["degraded"] is True
        assert healing["failures"][0]["figure"] == "fig5"

    def test_fail_fast_skips_remaining_figures(self, tmp_path,
                                               monkeypatch, capsys):
        def explode(settings):
            from repro.parallel import SimJob, run_jobs
            from tests.parallel import _grid_jobs
            return run_jobs([SimJob.make(_grid_jobs.fail,
                                         key=("fail", 3), x=3)])

        monkeypatch.setitem(exp_cli.EXPERIMENTS, "fig5", explode)
        json_path = tmp_path / "out.json"
        rc = experiments_main(["classification", "--uops", "3000",
                               "--traces-per-group", "1",
                               "--retries", "0", "--fail-fast",
                               "--json", str(json_path)])
        assert rc == EXIT_DEGRADED
        payload = json.loads(json_path.read_text())
        assert "fig6" not in payload  # never attempted
        assert "--fail-fast" in capsys.readouterr().err


@pytest.mark.slow
class TestChaosSmoke:
    def test_chaos_run_heals_to_clean_results(self, tmp_path, capsys):
        """The CI chaos smoke in miniature: a kill-chaos grid completes
        with byte-identical data and the manifest records the
        healing."""
        clean_json = tmp_path / "clean.json"
        rc = experiments_main(["fig7", "--uops", "3000",
                               "--traces-per-group", "2",
                               "--json", str(clean_json)])
        assert rc == 0
        chaos_json = tmp_path / "chaos.json"
        rc = experiments_main(["fig7", "--uops", "3000",
                               "--traces-per-group", "2",
                               "--workers", "2",
                               "--chaos", "worker-kill=1.0",
                               "--json", str(chaos_json),
                               "--obs-dir", str(tmp_path / "obs")])
        assert rc == 0
        assert clean_json.read_bytes() == chaos_json.read_bytes()
        manifest = json.loads(
            (tmp_path / "obs" / "manifest.json").read_text())
        healing = manifest["extra"]["healing"]
        assert healing["degraded"] is False
        assert healing["pool_rebuilds"] >= 1


class TestTraceCli:
    def test_list(self, capsys):
        assert trace_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SysmarkNT" in out and "cd" in out

    def test_build(self, capsys):
        assert trace_main(["build", "cd", "--uops", "2000"]) == 0
        assert "uops" in capsys.readouterr().out

    def test_dump_and_show(self, tmp_path, capsys):
        path = str(tmp_path / "t.trace")
        assert trace_main(["dump", "gcc", path, "--uops", "1500"]) == 0
        capsys.readouterr()
        assert trace_main(["show", path, "--head", "2"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "SpecInt95" in out

    def test_unknown_trace_suggests_and_exits_2(self, capsys):
        assert trace_main(["build", "gccc"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Did you mean" in err
        assert "gcc" in err

    def test_bad_uops_exits_2(self, capsys):
        assert trace_main(["build", "gcc", "--uops", "0"]) == 2
        assert "--uops" in capsys.readouterr().err
