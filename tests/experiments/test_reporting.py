"""Tests for the text chart renderers."""

import pytest

from repro.experiments.reporting import (
    bar_chart,
    line_plot,
    speedup_chart,
    stacked_bar_chart,
)


class TestBarChart:
    def test_proportional_lengths(self):
        text = bar_chart([("half", 0.5), ("full", 1.0)], width=10)
        half_line, full_line = text.splitlines()
        assert half_line.count("#") == 5
        assert full_line.count("#") == 10

    def test_labels_aligned(self):
        text = bar_chart([("a", 1.0), ("longer", 1.0)])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title(self):
        assert bar_chart([("a", 1.0)], title="T").splitlines()[0] == "T"

    def test_empty(self):
        assert bar_chart([], title="T") == "T"

    def test_values_rendered(self):
        assert "0.500" in bar_chart([("a", 0.5)])

    def test_max_value_override(self):
        text = bar_chart([("a", 0.5)], width=10, max_value=1.0)
        assert text.count("#") == 5

    def test_clamps_above_max(self):
        text = bar_chart([("a", 2.0)], width=10, max_value=1.0)
        assert text.count("#") == 10


class TestStackedBarChart:
    def test_segments_drawn_in_order(self):
        text = stacked_bar_chart(
            [("row", {"x": 0.5, "y": 0.5})],
            segment_chars={"x": "#", "y": "="}, width=10)
        bar = text.splitlines()[0]
        assert "#####=====" in bar

    def test_legend(self):
        text = stacked_bar_chart(
            [("row", {"x": 1.0})], segment_chars={"x": "#"})
        assert "#=x" in text.splitlines()[-1]

    def test_empty(self):
        assert stacked_bar_chart([], {}, title="T") == "T"

    def test_width_respected(self):
        text = stacked_bar_chart(
            [("r", {"x": 0.9, "y": 0.9})],  # over-full: clipped
            segment_chars={"x": "#", "y": "="}, width=10)
        bar = text.splitlines()[0]
        assert bar.count("#") + bar.count("=") <= 10


class TestLinePlot:
    def test_markers_present(self):
        text = line_plot({"s1": [(0, 0), (1, 1)],
                          "s2": [(0, 1), (1, 0)]})
        assert "A" in text and "B" in text

    def test_legend_names(self):
        text = line_plot({"alpha": [(0, 0), (1, 1)]})
        assert "A=alpha" in text

    def test_axis_bounds_shown(self):
        text = line_plot({"s": [(0, 0), (10, 5)]})
        assert "10.00" in text and "0.00" in text

    def test_degenerate_single_point(self):
        text = line_plot({"s": [(1, 1)]})
        assert "A" in text

    def test_empty(self):
        assert line_plot({}, title="T") == "T"

    def test_axis_labels(self):
        text = line_plot({"s": [(0, 0), (1, 1)]}, x_label="penalty",
                         y_label="metric")
        assert "x: penalty" in text and "y: metric" in text


class TestSpeedupChart:
    def test_baseline_subtracted(self):
        text = speedup_chart({"a": 1.10, "b": 1.20}, width=10)
        a_line, b_line = text.splitlines()
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_percent_format(self):
        assert "+10.0%" in speedup_chart({"a": 1.10})

    def test_below_baseline_clamped(self):
        text = speedup_chart({"slow": 0.9, "fast": 1.5})
        slow_line = text.splitlines()[0]
        assert slow_line.count("#") == 0
