"""Tests for the experiment harness plumbing."""

import pytest

from repro.experiments.harness import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    format_table,
    get_trace,
    group_traces,
    percent,
)


class TestGetTrace:
    def test_memoised_equal_but_not_aliased(self):
        # The master trace is memoised (same contents), but callers get
        # a defensive copy: handing out one shared mutable Trace let a
        # mutation in one experiment corrupt every later experiment.
        a = get_trace("cd", 1200)
        b = get_trace("cd", 1200)
        assert a is not b
        assert a.uops is not b.uops
        assert a.uops == b.uops
        assert (a.name, a.group, a.seed) == (b.name, b.group, b.seed)

    def test_mutating_cached_trace_does_not_poison_cache(self):
        # Regression: mutate the list we got back, then re-fetch.
        a = get_trace("cd", 1200)
        pristine = list(a.uops)
        a.uops.clear()
        b = get_trace("cd", 1200)
        assert b.uops == pristine
        assert len(b.uops) > 0

    def test_distinct_budgets_distinct_traces(self):
        a = get_trace("cd", 1200)
        b = get_trace("cd", 1600)
        assert a is not b
        assert len(b) > len(a)

    def test_canonical_seed(self):
        from repro.trace.workloads import trace_seed
        assert get_trace("gcc", 1200).seed == trace_seed("gcc")

    def test_name_attached(self):
        assert get_trace("applu", 1200).name == "applu"


class TestGroupTraces:
    def test_truncation(self):
        settings = ExperimentSettings(n_uops=1000, traces_per_group=2)
        assert group_traces("SysmarkNT", settings) == ["cd", "ex"]

    def test_full_roster(self):
        settings = ExperimentSettings(n_uops=1000, traces_per_group=None)
        assert len(group_traces("SpecFP95", settings)) == 10

    def test_default_settings(self):
        assert len(group_traces("SysmarkNT")) == \
               DEFAULT_SETTINGS.traces_per_group


class TestFormatting:
    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["xx", 1], ["y", 22]])
        lines = text.splitlines()
        # The separator matches the header width.
        assert len(lines[1]) == len(lines[0])

    def test_title_line(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_percent(self):
        assert percent(0.1234) == "12.3%"
