"""Property tests for the consistent-hash ring.

Three claims the fleet's rebalance protocol rests on, pushed through
hypothesis-generated topologies and keysets:

* **stable mapping** — ``node_for`` is a pure function of (node set,
  key): independent of insertion order and of unrelated churn;
* **balance bound** — with the default 128 vnodes, a uniform keyset
  spreads across workers with max/mean below ~1.35 (the bound
  ``ring.py`` documents and sizes its replica count for);
* **minimal movement** — adding a node moves keys only *to* it,
  removing one moves only *its* keys, and the moved fraction stays
  near 1/n instead of the ~(n-1)/n a mod-n scheme would churn.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.ring import HashRing

#: Small fleet sizes, like the real router's.
node_lists = st.lists(
    st.integers(min_value=0, max_value=99).map(lambda i: f"w{i}"),
    min_size=1, max_size=8, unique=True)

keys = st.lists(
    st.integers(min_value=0, max_value=10_000_000).map(
        lambda i: f"sess-{i}"),
    min_size=1, max_size=200, unique=True)


@given(nodes=node_lists, ks=keys, salt=st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_mapping_is_stable_under_insertion_order_and_churn(
        nodes, ks, salt):
    ring_a = HashRing(nodes)
    # Same node set reached by a different history: reversed insertion
    # plus an unrelated node that comes and goes.
    ring_b = HashRing()
    ring_b.add_node(f"transient-{salt}")
    for node in reversed(nodes):
        ring_b.add_node(node)
    ring_b.remove_node(f"transient-{salt}")
    for key in ks:
        assert ring_a.node_for(key) == ring_b.node_for(key)


@given(n_nodes=st.integers(min_value=2, max_value=8),
       seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_uniform_keys_balance_within_the_documented_bound(n_nodes, seed):
    ring = HashRing([f"w{i}" for i in range(n_nodes)])
    uniform = [f"sess-{seed}-{i}" for i in range(3000)]
    counts = ring.distribution(uniform)
    mean = len(uniform) / n_nodes
    assert max(counts.values()) < 1.35 * mean
    assert min(counts.values()) > 0


@given(nodes=node_lists, ks=keys)
@settings(max_examples=60, deadline=None)
def test_adding_a_node_moves_keys_only_to_it(nodes, ks):
    ring = HashRing(nodes)
    before = {k: ring.node_for(k) for k in ks}
    newcomer = "newcomer"
    ring.add_node(newcomer)
    for key in ks:
        after = ring.node_for(key)
        assert after == before[key] or after == newcomer


@given(nodes=st.lists(
    st.integers(min_value=0, max_value=99).map(lambda i: f"w{i}"),
    min_size=2, max_size=8, unique=True), ks=keys)
@settings(max_examples=60, deadline=None)
def test_removing_a_node_strands_only_its_keys(nodes, ks):
    ring = HashRing(nodes)
    victim = nodes[0]
    before = {k: ring.node_for(k) for k in ks}
    ring.remove_node(victim)
    for key in ks:
        if before[key] != victim:
            assert ring.node_for(key) == before[key]


@given(n_nodes=st.integers(min_value=2, max_value=8),
       seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_growth_moves_roughly_one_over_n(n_nodes, seed):
    """The quantitative half of minimal movement: growing n → n+1
    remaps about 1/(n+1) of keys — generously bounded at 3× to stay
    flake-free — never the ~n/(n+1) of a mod-n scheme."""
    ring = HashRing([f"w{i}" for i in range(n_nodes)])
    uniform = [f"sess-{seed}-{i}" for i in range(2000)]
    before = {k: ring.node_for(k) for k in uniform}
    ring.add_node("grown")
    moved = sum(1 for k in uniform if ring.node_for(k) != before[k])
    expected = len(uniform) / (n_nodes + 1)
    assert moved < 3.0 * expected
