"""Property-based tests for CHT saturating-counter transitions.

Round-trip and monotonicity laws of the counter cell, plus the tagless
CHT's counter/distance-sidecar train semantics over random collision
streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cht.tagless import TaglessCHT
from repro.predictors.counters import SaturatingCounter

bits = st.integers(min_value=1, max_value=4)
outcomes = st.lists(st.booleans(), min_size=0, max_size=60)


def counter_at(bit_count, value):
    return SaturatingCounter(bit_count, initial=value)


class TestCounterTransitions:
    @given(bits, st.data())
    @settings(max_examples=100, deadline=None)
    def test_up_down_round_trip(self, bit_count, data):
        """train(True) then train(False) restores the value, except at
        the saturation ceiling where the up-step is absorbed."""
        top = (1 << bit_count) - 1
        value = data.draw(st.integers(min_value=0, max_value=top))
        counter = counter_at(bit_count, value)
        counter.train(True)
        counter.train(False)
        assert counter.value == (value if value < top else top - 1)

    @given(bits, st.data())
    @settings(max_examples=100, deadline=None)
    def test_down_up_round_trip(self, bit_count, data):
        top = (1 << bit_count) - 1
        value = data.draw(st.integers(min_value=0, max_value=top))
        counter = counter_at(bit_count, value)
        counter.train(False)
        counter.train(True)
        assert counter.value == (value if value > 0 else min(1, top))

    @given(bits, outcomes)
    @settings(max_examples=100, deadline=None)
    def test_transitions_move_by_at_most_one(self, bit_count, stream):
        counter = SaturatingCounter(bit_count)
        for outcome in stream:
            before = counter.value
            counter.train(outcome)
            assert abs(counter.value - before) <= 1
            assert 0 <= counter.value <= counter._max

    @given(bits, outcomes, st.data())
    @settings(max_examples=100, deadline=None)
    def test_state_dominance_is_preserved(self, bit_count, stream, data):
        """A counter that starts higher never falls below one that
        starts lower under the same outcome stream — the lattice
        property behind threshold monotonicity."""
        top = (1 << bit_count) - 1
        lo = data.draw(st.integers(min_value=0, max_value=top))
        hi = data.draw(st.integers(min_value=lo, max_value=top))
        low = counter_at(bit_count, lo)
        high = counter_at(bit_count, hi)
        for outcome in stream:
            low.train(outcome)
            high.train(outcome)
            assert high.value >= low.value
            if low.prediction:
                assert high.prediction


collision_stream = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=1, max_value=32)),
    min_size=0, max_size=50)


class TestTaglessTrainSemantics:
    @given(collision_stream, bits)
    @settings(max_examples=80, deadline=None)
    def test_counter_follows_scalar_cell(self, stream, counter_bits):
        """One PC's entry evolves exactly like a lone counter."""
        cht = TaglessCHT(n_entries=64, counter_bits=counter_bits)
        index = cht._index(0x40) if hasattr(cht, "_index") else None
        model = SaturatingCounter(counter_bits)
        for collided, distance in stream:
            cht.train(0x40, collided, distance if collided else None)
            model.train(collided)
        looked_up = cht.lookup(0x40)
        assert looked_up.colliding == model.prediction
        if index is not None:
            assert cht._counters[index].value == model.value

    @given(collision_stream)
    @settings(max_examples=80, deadline=None)
    def test_distance_is_min_since_last_reset(self, stream):
        """The sidecar holds the minimum distance supplied since the
        counter last trained to "not colliding" — the law the fastpath
        segmented reduce relies on."""
        cht = TaglessCHT(n_entries=64, counter_bits=1, track_distance=True)
        model = SaturatingCounter(1)
        expected = None
        for collided, distance in stream:
            cht.train(0x40, collided, distance if collided else None)
            model.train(collided)
            if collided:
                expected = (distance if expected is None
                            else min(expected, distance))
            elif not model.prediction:
                expected = None
        assert cht.lookup(0x40).distance == expected
