"""Property-based tests for predictors and CHTs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cht.combined import CombinedCHT
from repro.cht.full import FullCHT
from repro.cht.tagged import TaggedOnlyCHT
from repro.cht.tagless import TaglessCHT
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.counters import SaturatingCounter
from repro.predictors.gshare import GSharePredictor
from repro.predictors.gskew import GSkewPredictor
from repro.predictors.local import LocalPredictor

pcs = st.integers(min_value=0, max_value=(1 << 24) - 1).map(lambda x: x * 4)
outcomes = st.booleans()
events = st.lists(st.tuples(pcs, outcomes), min_size=1, max_size=300)


class TestCounterProperties:
    @given(st.integers(min_value=1, max_value=6),
           st.lists(outcomes, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_counter_value_stays_in_range(self, bits, stream):
        c = SaturatingCounter(bits)
        for o in stream:
            c.train(o)
            assert 0 <= c.value <= (1 << bits) - 1

    @given(st.lists(outcomes, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_counter_monotone_response(self, stream):
        """Training True never lowers the value; False never raises it."""
        c = SaturatingCounter(2)
        for o in stream:
            before = c.value
            c.train(o)
            if o:
                assert c.value >= before
            else:
                assert c.value <= before


class TestBinaryPredictorProperties:
    @given(events)
    @settings(max_examples=30, deadline=None)
    def test_predict_never_crashes_and_is_binary(self, stream):
        predictors = [BimodalPredictor(64), LocalPredictor(64, 4),
                      GSharePredictor(6), GSkewPredictor(6, 64)]
        for p in predictors:
            for pc, outcome in stream:
                pred = p.predict(pc)
                assert isinstance(pred.outcome, bool)
                assert 0.0 <= pred.confidence <= 1.0
                p.update(pc, outcome)

    @given(st.lists(outcomes, min_size=32, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_bimodal_tracks_majority(self, stream):
        """After a long one-PC stream, bimodal predicts the recent
        majority when the stream is heavily biased."""
        p = BimodalPredictor(64)
        pc = 0x100
        biased = stream + [True] * 8  # force a biased tail
        for o in biased:
            p.update(pc, o)
        assert p.predict(pc).outcome


collision_events = st.lists(
    st.tuples(pcs, outcomes,
              st.integers(min_value=1, max_value=8)),
    min_size=1, max_size=300)


class TestChtProperties:
    @given(collision_events)
    @settings(max_examples=30, deadline=None)
    def test_sticky_dominates_full_on_ac(self, stream):
        """Any load the Full CHT predicts colliding, the sticky table
        (same capacity, trained identically) predicts colliding too —
        stickiness only ever adds collide predictions.

        Holds at large capacity where evictions cannot interfere.
        """
        full = FullCHT(n_entries=4096, ways=4)
        sticky = TaggedOnlyCHT(n_entries=4096, ways=4)
        for pc, collided, distance in stream:
            full_says = full.lookup(pc).colliding
            sticky_says = sticky.lookup(pc).colliding
            if full_says:
                assert sticky_says
            full.train(pc, collided, distance)
            sticky.train(pc, collided, distance)

    @given(collision_events)
    @settings(max_examples=30, deadline=None)
    def test_combined_safe_is_superset_of_tagged(self, stream):
        combined = CombinedCHT(tagged_entries=1024, tagless_entries=1024,
                               mode="safe")
        for pc, collided, distance in stream:
            tagged_says = combined.tagged.lookup(pc).colliding
            if tagged_says:
                assert combined.lookup(pc).colliding
            combined.train(pc, collided, distance)

    @given(collision_events)
    @settings(max_examples=30, deadline=None)
    def test_distance_never_increases(self, stream):
        """The learned distance converges on the minimum seen."""
        cht = FullCHT(n_entries=4096, ways=4, track_distance=True)
        seen = {}
        for pc, collided, distance in stream:
            if collided:
                cht.train(pc, True, distance)
                key = pc
                seen[key] = min(seen.get(key, distance), distance)
                got = cht.lookup(pc)
                if got.colliding and got.distance is not None:
                    assert got.distance <= seen[key]
            else:
                cht.train(pc, False, None)

    @given(collision_events)
    @settings(max_examples=20, deadline=None)
    def test_tagless_prediction_total(self, stream):
        """Tagless CHT never crashes and always answers."""
        cht = TaglessCHT(n_entries=256)
        for pc, collided, distance in stream:
            prediction = cht.lookup(pc)
            assert prediction.colliding in (True, False)
            cht.train(pc, collided, distance if collided else None)
