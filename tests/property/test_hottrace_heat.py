"""Property tests for hot-trace heat/capture bookkeeping.

The replay engine's correctness story is carried by the guard battery
(``tests/serve/test_hottrace_guards.py``); what hypothesis pins here
is the *bookkeeping* that keeps the engine bounded and honest under
arbitrary window streams:

* heat counting saturates at the hot threshold (no unbounded counts);
* the heat table never exceeds its shed bound, and shedding keeps the
  hottest entries;
* captured traces never exceed ``max_traces``, and the
  captures/evictions ledger matches the table;
* counter monotonicity: ``hits <= lookups <= hot_windows <= windows``.

The predictor here is a trivial picklable stub — stepping is not
involved, so the properties are pure bookkeeping, fast enough for
hundreds of generated streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExecutionPolicy, spec_for
from repro.fastpath.hottrace import HotTraceEngine, SessionTraceState

SPEC = spec_for("binary.gshare", history=2)

#: Streams of window identities: small alphabet so repeats (and thus
#: heat/captures) actually happen, long enough to cross thresholds.
streams = st.lists(st.integers(min_value=0, max_value=30),
                   min_size=1, max_size=120)

policies = st.builds(
    ExecutionPolicy,
    backend=st.just("reference"),
    hottrace=st.just(True),
    hot_threshold=st.integers(min_value=1, max_value=4),
    min_trace_len=st.just(2),
    max_traces=st.integers(min_value=1, max_value=6))


class StubSession:
    """Duck-typed session: the engine only touches these attributes."""

    def __init__(self):
        self.session_id = "p"
        self.spec = SPEC
        self.family = SPEC.family
        self.predictor = [0]  # picklable, never stepped
        self.hottrace = None


def lanes_for(window_id, n=4):
    return [window_id] * n, [window_id % 2] * n, [-1] * n


def drive(engine, session, stream):
    """Feed the stream the way the batch executor does: probe, then
    offer the 'executed' window back to the recorder on a miss."""
    for window_id in stream:
        pcs, outcomes, distances = lanes_for(window_id)
        cached = engine.try_replay(session, pcs, outcomes, distances)
        if cached is None:
            st_ = session.hottrace
            pre = st_.state_digest if st_ is not None else None
            engine.record(session, pcs, outcomes, distances,
                          [0] * len(pcs), pre)


@given(stream=streams, policy=policies)
@settings(max_examples=80, deadline=None)
def test_heat_saturates_and_tables_stay_bounded(stream, policy):
    engine = HotTraceEngine(policy)
    session = StubSession()
    drive(engine, session, stream)
    state = session.hottrace
    assert all(count <= policy.hot_threshold
               for count in state.heat.values())
    assert len(state.heat) <= engine.max_heat_entries
    assert len(state.traces) <= policy.max_traces


@given(stream=streams, policy=policies)
@settings(max_examples=80, deadline=None)
def test_capture_eviction_ledger_matches_table(stream, policy):
    engine = HotTraceEngine(policy)
    session = StubSession()
    drive(engine, session, stream)
    c = engine.counters
    # No aborts are possible in this stream (state never drifts), so
    # the LRU is the only way captures leave the table.
    assert c.aborts == 0
    assert c.captures - c.evictions == len(session.hottrace.traces)


@given(stream=streams, policy=policies)
@settings(max_examples=80, deadline=None)
def test_counter_monotonicity(stream, policy):
    engine = HotTraceEngine(policy)
    session = StubSession()
    drive(engine, session, stream)
    c = engine.counters
    assert c.hits <= c.lookups <= c.hot_windows <= c.windows
    assert c.windows == len(stream)
    assert c.steps_saved == 4 * c.hits
    assert c.abort_mismatch == 0


@given(counts=st.dictionaries(
    st.binary(min_size=4, max_size=4),
    st.integers(min_value=0, max_value=10),
    min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_shed_keeps_the_hottest_half(counts):
    engine = HotTraceEngine(ExecutionPolicy(hottrace=True))
    state = SessionTraceState()
    state.heat = dict(counts)
    engine._shed_heat(state)
    assert len(state.heat) <= engine.max_heat_entries // 2
    if state.heat:
        kept_min = min(state.heat.values())
        dropped = [v for k, v in counts.items() if k not in state.heat]
        # Nothing dropped was strictly hotter than anything kept.
        assert all(v <= kept_min for v in dropped)
        assert max(state.heat.values()) == max(counts.values())
