"""Property-based tests for MOB store-forwarding and conflict queries.

Each property rebuilds the answer with a brute-force model over the
generated store population and checks the MOB agrees, across random
store counts, overlap patterns, and STA/STD completion timings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import MemAccess, Uop, UopClass
from repro.engine.inflight import UNKNOWN, InflightUop
from repro.engine.mob import MemoryOrderBuffer

#: Small pools force frequent address overlap and timing coincidence.
addresses = st.integers(min_value=0, max_value=7).map(lambda s: 0x100 + 4 * s)
sizes = st.sampled_from([1, 2, 4, 8])
cycles = st.one_of(st.just(UNKNOWN), st.integers(min_value=0, max_value=12))

store_specs = st.lists(
    st.tuples(addresses, sizes, cycles, cycles), min_size=0, max_size=8)


def build_mob(specs):
    """A MOB holding one store per spec, seqs 0, 2, 4, ... in order."""
    mob = MemoryOrderBuffer()
    records = []
    for i, (address, size, sta_done, std_done) in enumerate(specs):
        seq = 2 * i
        sta = InflightUop(Uop(seq=seq, pc=0x1000 + seq, uclass=UopClass.STA,
                              mem=MemAccess(address, size)), [])
        std = InflightUop(Uop(seq=seq + 1, pc=0x1001 + seq,
                              uclass=UopClass.STD, sta_seq=seq), [])
        sta.data_ready = sta_done
        std.data_ready = std_done
        mob.insert_sta(sta)
        mob.attach_std(std)
        records.append(mob.store_by_seq(seq))
    return mob, records


def known(cycle, now):
    return cycle != UNKNOWN and cycle <= now


class TestCollisionAndForwarding:
    @given(store_specs, addresses, sizes,
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=120, deadline=None)
    def test_colliding_store_is_nearest_incomplete_overlap(
            self, specs, load_address, load_size, now):
        mob, records = build_mob(specs)
        load_seq = 2 * len(specs)  # younger than every store
        mem = MemAccess(load_address, load_size)
        record, distance = mob.colliding_store(load_seq, mem, now)
        expected = None
        expected_distance = None
        for d, r in enumerate(reversed(records), start=1):
            complete = (known(r.sta.data_ready, now)
                        and known(r.std.data_ready, now))
            if r.mem.overlaps(mem) and not complete:
                expected, expected_distance = r, d
                break
        assert record is expected
        assert distance == expected_distance

    @given(store_specs, addresses, sizes,
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=120, deadline=None)
    def test_forwarding_store_is_nearest_complete_overlap(
            self, specs, load_address, load_size, now):
        mob, records = build_mob(specs)
        load_seq = 2 * len(specs)
        mem = MemAccess(load_address, load_size)
        got = mob.forwarding_store(load_seq, mem, now)
        expected = None
        for r in reversed(records):
            complete = (known(r.sta.data_ready, now)
                        and known(r.std.data_ready, now))
            if r.mem.overlaps(mem) and complete:
                expected = r
                break
        assert got is expected
        if got is not None:
            # A forwardable store really has its data.
            assert got.complete(now) and got.mem.overlaps(mem)

    @given(store_specs, addresses, sizes,
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=120, deadline=None)
    def test_forwarding_never_hides_a_nearer_collision(
            self, specs, load_address, load_size, now):
        """When no store collides, the forwarded store (if any) is the
        nearest overlap outright — data can be used safely."""
        mob, _ = build_mob(specs)
        load_seq = 2 * len(specs)
        mem = MemAccess(load_address, load_size)
        colliding, _ = mob.colliding_store(load_seq, mem, now)
        forwarding = mob.forwarding_store(load_seq, mem, now)
        if colliding is None and forwarding is not None:
            nearer = [r for r in mob.older_stores(load_seq)
                      if r.seq > forwarding.seq and r.mem.overlaps(mem)]
            assert nearer == []


class TestConflictQueries:
    @given(store_specs, addresses, sizes,
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=120, deadline=None)
    def test_unknown_sta_queries_agree_with_model(
            self, specs, load_address, load_size, now):
        mob, records = build_mob(specs)
        load_seq = 2 * len(specs)
        mem = MemAccess(load_address, load_size)
        unknown = [r for r in records if not known(r.sta.data_ready, now)]
        assert mob.has_unknown_sta(load_seq, now) == bool(unknown)
        assert mob.matching_unknown_sta(load_seq, mem, now) \
            == any(r.mem.overlaps(mem) for r in unknown)
        # Matching-among-unknown implies conflicting.
        if mob.matching_unknown_sta(load_seq, mem, now):
            assert mob.has_unknown_sta(load_seq, now)

    @given(store_specs, st.integers(min_value=0, max_value=12))
    @settings(max_examples=120, deadline=None)
    def test_distance_one_equals_all_older_complete(self, specs, now):
        mob, _ = build_mob(specs)
        load_seq = 2 * len(specs)
        assert mob.complete_beyond_distance(load_seq, now, 1) \
            == mob.all_older_complete(load_seq, now)

    @given(store_specs, st.integers(min_value=0, max_value=12),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=120, deadline=None)
    def test_complete_beyond_distance_monotone(self, specs, now, distance):
        """Raising the bypass distance only relaxes the wait condition."""
        mob, _ = build_mob(specs)
        load_seq = 2 * len(specs)
        if mob.complete_beyond_distance(load_seq, now, distance):
            assert mob.complete_beyond_distance(load_seq, now, distance + 1)


class TestLifecycle:
    @given(store_specs, st.integers(min_value=0, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_remove_retired_keeps_unretired_stds(self, specs, seq):
        mob, records = build_mob(specs)
        survivors = [r for r in records if r.std.uop.seq >= seq]
        mob.remove_retired(seq)
        assert len(mob) == len(survivors)
        for r in survivors:
            assert mob.store_by_seq(r.seq) is r
