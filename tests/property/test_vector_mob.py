"""ArrayMOB vs MemoryOrderBuffer: the lane MOB is the same machine.

The vectorized kernel's :class:`repro.engine.vector.ArrayMOB` must be
observationally identical to the reference
:class:`repro.engine.mob.MemoryOrderBuffer` — same balance view
(``tracked()``) through arbitrary insert/attach/prune lifecycles (the
prune floors play the role of random squash masks: any retirement
frontier the squash machinery can produce), and same answers to every
scheme query.  On top of that, ``unblock_at`` must be an *exact* flip
time: the scheme predicate is false just before it and true at it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import MemAccess, Uop, UopClass
from repro.engine.inflight import UNKNOWN, InflightUop
from repro.engine.mob import MemoryOrderBuffer
from repro.engine.vector import ArrayMOB

#: Small pools force frequent address overlap and timing coincidence.
addresses = st.integers(min_value=0, max_value=7).map(lambda s: 0x100 + 4 * s)
sizes = st.sampled_from([1, 2, 4, 8])
cycles = st.one_of(st.just(UNKNOWN), st.integers(min_value=0, max_value=12))

#: (address, size, sta_done, std_done, std_attached)
store_specs = st.lists(
    st.tuples(addresses, sizes, cycles, cycles, st.booleans()),
    min_size=0, max_size=8)

nows = st.integers(min_value=0, max_value=12)


def build_pair(specs, load_address=0x100, load_size=4):
    """The same store population in both MOB implementations.

    Store *i* is an STA at seq ``2 i`` (+ an STD at seq ``2 i + 1``
    when attached); the probe load sits at seq ``2 n``, younger than
    every store.  For the ArrayMOB, index == seq, exactly as in the
    kernel's lane layout.
    """
    n = len(specs)
    seq = list(range(2 * n + 1))
    addr = [0] * (2 * n + 1)
    size = [0] * (2 * n + 1)
    dr = [UNKNOWN] * (2 * n + 1)

    ref = MemoryOrderBuffer()
    arr = ArrayMOB(seq, addr, size, dr)
    for i, (address, st_size, sta_done, std_done, attached) in \
            enumerate(specs):
        s = 2 * i
        addr[s], size[s], dr[s] = address, st_size, sta_done
        sta = InflightUop(Uop(seq=s, pc=0x1000 + s, uclass=UopClass.STA,
                              mem=MemAccess(address, st_size)), [])
        sta.data_ready = sta_done
        ref.insert_sta(sta)
        arr.insert_sta(s)
        if attached:
            dr[s + 1] = std_done
            std = InflightUop(Uop(seq=s + 1, pc=0x1001 + s,
                                  uclass=UopClass.STD, sta_seq=s), [])
            std.data_ready = std_done
            ref.attach_std(std)
            arr.attach_std(s + 1, s)
    load = 2 * n
    addr[load], size[load] = load_address, load_size
    return ref, arr, load


class TestBalance:
    @given(store_specs)
    @settings(max_examples=120, deadline=None)
    def test_tracked_identical_after_build(self, specs):
        ref, arr, _ = build_pair(specs)
        assert arr.tracked() == ref.tracked()
        assert len(arr) == len(ref)

    @given(store_specs,
           st.lists(st.integers(min_value=0, max_value=20),
                    min_size=1, max_size=6))
    @settings(max_examples=120, deadline=None)
    def test_tracked_identical_under_random_retire_floors(
            self, specs, floors):
        """Any sequence of retirement frontiers — including the
        non-monotone ones a squash replay revisits — prunes both MOBs
        to the same population."""
        ref, arr, _ = build_pair(specs)
        for floor in floors:
            ref.remove_retired(floor)
            arr.remove_retired(floor)
            assert arr.tracked() == ref.tracked()
            assert len(arr) == len(ref)

    @given(store_specs)
    @settings(max_examples=60, deadline=None)
    def test_attach_to_missing_sta_raises_same_message(self, specs):
        ref, arr, _ = build_pair(specs)
        ghost_seq = 2 * len(specs) + 40
        std = InflightUop(Uop(seq=ghost_seq + 1, pc=0x2000,
                              uclass=UopClass.STD, sta_seq=ghost_seq), [])
        messages = []
        for attach in (lambda: ref.attach_std(std),
                       lambda: arr.attach_std(0, ghost_seq)):
            try:
                attach()
            except KeyError as exc:
                messages.append(str(exc))
            else:  # pragma: no cover - would be the bug itself
                messages.append("<no error>")
        assert messages[0] == messages[1]
        assert f"no STA with seq {ghost_seq}" in messages[0]


class TestQueryEquivalence:
    @given(store_specs, addresses, sizes, nows)
    @settings(max_examples=150, deadline=None)
    def test_scheme_queries_agree(self, specs, load_address, load_size,
                                  now):
        ref, arr, load = build_pair(specs, load_address, load_size)
        load_seq = 2 * len(specs)
        mem = MemAccess(load_address, load_size)
        assert arr.has_unknown_sta(load, now) \
            == ref.has_unknown_sta(load_seq, now)
        assert arr.all_older_complete(load, now) \
            == ref.all_older_complete(load_seq, now)
        assert arr.all_older_stds_done(load, now) \
            == ref.all_older_stds_done(load_seq, now)
        for distance in (1, 2, 3, 5):
            assert arr.complete_beyond_distance(load, now, distance) \
                == ref.complete_beyond_distance(load_seq, now, distance)

    @given(store_specs, addresses, sizes, nows)
    @settings(max_examples=150, deadline=None)
    def test_collision_and_forwarding_agree(self, specs, load_address,
                                            load_size, now):
        ref, arr, load = build_pair(specs, load_address, load_size)
        load_seq = 2 * len(specs)
        mem = MemAccess(load_address, load_size)
        ref_rec, ref_d = ref.colliding_store(load_seq, mem, now)
        arr_s, arr_d = arr.colliding_store(load, now)
        if ref_rec is None:
            assert arr_s == -1 and arr_d is None
        else:
            assert arr.seq[arr_s] == ref_rec.seq and arr_d == ref_d
        ref_fwd = ref.forwarding_store(load_seq, mem, now)
        arr_fwd = arr.forwarding_store(load, now)
        if ref_fwd is None:
            assert arr_fwd == -1
        else:
            assert arr.seq[arr_fwd] == ref_fwd.seq


def _predicate(ref, load_seq, mem, t, kind, predicted_colliding,
               predicted_distance):
    """The scheme-``kind`` dispatch predicate, evaluated at cycle ``t``
    entirely through the *reference* MOB (the model ``unblock_at`` must
    flip exactly against)."""
    if kind in (0, 2):
        ok = not ref.has_unknown_sta(load_seq, t)
        if kind == 2 and predicted_colliding:
            ok = ok and ref.all_older_stds_done(load_seq, t)
        return ok
    if kind == 4 and predicted_distance is not None:
        return ref.complete_beyond_distance(load_seq, t, predicted_distance)
    if kind in (3, 4):
        return ref.all_older_complete(load_seq, t)
    # kind 5 (perfect): no older overlapping store incomplete.
    return ref.colliding_store(load_seq, mem, t)[0] is None


class TestUnblockHints:
    @given(store_specs, addresses, sizes, nows,
           st.sampled_from([0, 2, 3, 4, 5]), st.booleans(),
           st.one_of(st.none(), st.integers(min_value=1, max_value=6)))
    @settings(max_examples=250, deadline=None)
    def test_unblock_at_is_exact_flip_time(self, specs, load_address,
                                           load_size, now, kind,
                                           predicted_colliding,
                                           predicted_distance):
        ref, arr, load = build_pair(specs, load_address, load_size)
        load_seq = 2 * len(specs)
        mem = MemAccess(load_address, load_size)
        hint = arr.unblock_at(load, now, kind, predicted_colliding,
                              predicted_distance)
        if hint is None:
            # Some required store event has not executed yet: the
            # predicate must stay false at every probeable cycle.
            for t in range(now, 14):
                assert not _predicate(ref, load_seq, mem, t, kind,
                                      predicted_colliding,
                                      predicted_distance)
            return
        assert hint > now
        assert _predicate(ref, load_seq, mem, hint, kind,
                          predicted_colliding, predicted_distance)
        if hint > now + 1:
            # Exact, not merely sound: one cycle earlier is too early.
            assert not _predicate(ref, load_seq, mem, hint - 1, kind,
                                  predicted_colliding,
                                  predicted_distance)
