"""Property-based tests (hypothesis) for the cache substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.memory.cache import Cache

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
address_lists = st.lists(addresses, min_size=1, max_size=200)


def make_cache(ways=2, sets=8):
    return Cache(CacheConfig(size_bytes=ways * sets * 64, ways=ways))


class TestCacheProperties:
    @given(address_lists)
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, addrs):
        """Accessing an address twice in a row is always a hit."""
        cache = make_cache()
        for a in addrs:
            cache.access(a)
            assert cache.access(a).hit

    @given(address_lists)
    @settings(max_examples=50, deadline=None)
    def test_probe_agrees_with_next_access(self, addrs):
        """probe() == the hit outcome of the access that follows it."""
        cache = make_cache()
        for a in addrs:
            expected = cache.probe(a)
            assert cache.access(a).hit == expected

    @given(address_lists)
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_ways(self, addrs):
        cache = make_cache(ways=2, sets=8)
        for a in addrs:
            cache.access(a)
        for cache_set in cache._sets:
            assert len(cache_set.tags) <= 2

    @given(address_lists)
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache = make_cache()
        for a in addrs:
            cache.access(a)
        total = cache.stats.get("hits").value + cache.stats.get("misses").value
        assert total == len(addrs)

    @given(address_lists, addresses)
    @settings(max_examples=50, deadline=None)
    def test_invalidate_forces_miss(self, addrs, victim):
        cache = make_cache()
        for a in addrs:
            cache.access(a)
        cache.access(victim)
        cache.invalidate(victim)
        assert not cache.probe(victim)

    @given(st.lists(addresses, min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_same_line_addresses_equivalent(self, addrs):
        """Accesses within one line are indistinguishable to the cache."""
        a = make_cache()
        b = make_cache()
        for addr in addrs:
            ra = a.access(addr)
            rb = b.access((addr // 64) * 64)  # line-aligned twin
            assert ra.hit == rb.hit
