"""Property-based tests for the bank metric and the engine invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bank.metric import (
    gain_per_load,
    load_execution_time,
    metric,
    ratio_from_accuracy,
)

rates = st.floats(min_value=0.0, max_value=1.0)
ratios = st.floats(min_value=0.1, max_value=1000.0)
penalties = st.floats(min_value=0.0, max_value=20.0)


class TestMetricProperties:
    @given(rates, ratios,
           st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=200, deadline=None)
    def test_time_bounded_below_by_paired_ideal(self, p, r, pen):
        """Execution time never beats the dual-port ideal of 0.5.

        Holds whenever the misprediction penalty is at least the paired
        execution time itself (0.5); the paper's formula charges a
        mispredicted load only its penalty, so smaller penalties can
        dip below the ideal — a documented quirk of the approximation.
        """
        assert load_execution_time(p, r, pen) >= 0.5 - 1e-12

    @given(rates, ratios)
    @settings(max_examples=200, deadline=None)
    def test_zero_penalty_gain_nonnegative(self, p, r):
        assert gain_per_load(p, r, 0.0) >= -1e-12

    @given(rates, ratios, penalties, penalties)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_penalty(self, p, r, pen_a, pen_b):
        lo, hi = sorted((pen_a, pen_b))
        assert metric(p, r, lo) >= metric(p, r, hi) - 1e-12

    @given(rates, rates, ratios, penalties)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_prediction_rate_when_profitable(self, p_a, p_b,
                                                         r, pen):
        """When predicting is profitable (metric > 0), more predictions
        help; when it costs, fewer help.  Check via sign consistency."""
        lo, hi = sorted((p_a, p_b))
        per_pred_gain = gain_per_load(1.0, r, pen)
        if per_pred_gain >= 0:
            assert metric(hi, r, pen) >= metric(lo, r, pen) - 1e-12
        else:
            assert metric(hi, r, pen) <= metric(lo, r, pen) + 1e-12

    @given(rates, ratios, penalties)
    @settings(max_examples=200, deadline=None)
    def test_exact_and_approximate_agree_for_large_r(self, p, r, pen):
        if r > 50 and pen < 5:
            exact = metric(p, r, pen)
            approx = metric(p, r, pen, approximate=True)
            assert abs(exact - approx) < 0.05

    @given(st.floats(min_value=0.01, max_value=0.999))
    @settings(max_examples=100, deadline=None)
    def test_ratio_conversion_consistent(self, acc):
        r = ratio_from_accuracy(acc)
        assert r > 0
        assert abs(r / (1 + r) - acc) < 1e-9
