"""Property tests require hypothesis; when the environment does not
provide it, ignore the directory's modules instead of erroring at
import time (module-level importorskip aborts collection in a
conftest)."""

try:
    import hypothesis  # noqa: F401
    _HAS_HYPOTHESIS = True
except ImportError:
    _HAS_HYPOTHESIS = False

collect_ignore_glob = [] if _HAS_HYPOTHESIS else ["test_*.py"]
