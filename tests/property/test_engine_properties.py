"""Property-based tests for the engine on randomly generated micro-traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import BASELINE_MACHINE
from repro.engine.machine import Machine
from repro.engine.ordering import make_scheme
from tests.engine.helpers import MicroTrace


@st.composite
def micro_traces(draw):
    """A random but well-formed short uop sequence."""
    t = MicroTrace()
    n = draw(st.integers(min_value=1, max_value=40))
    for _ in range(n):
        kind = draw(st.sampled_from(["alu", "load", "store", "branch",
                                     "chain"]))
        if kind == "alu":
            t.alu(dst=draw(st.integers(0, 7)))
        elif kind == "chain":
            src = draw(st.integers(0, 7))
            t.alu(dst=draw(st.integers(0, 7)), srcs=(src,))
        elif kind == "load":
            t.load(dst=draw(st.integers(0, 7)),
                   address=draw(st.integers(0, 63)) * 64,
                   addr_src=draw(st.sampled_from([15, 0, 3])))
        elif kind == "store":
            t.store(address=draw(st.integers(0, 63)) * 64,
                    data_src=draw(st.sampled_from([15, 1])))
        else:
            t.branch(mispredicted=draw(st.booleans()))
    return t.build()


SCHEMES = ["traditional", "opportunistic", "inclusive", "exclusive",
           "perfect", "storesets", "barrier"]


class TestEngineTotality:
    @given(micro_traces(), st.sampled_from(SCHEMES))
    @settings(max_examples=60, deadline=None)
    def test_every_trace_terminates_and_retires_all(self, trace, scheme):
        result = Machine(scheme=make_scheme(scheme)).run(trace)
        assert result.retired_uops == len(trace)
        assert result.cycles > 0

    @given(micro_traces())
    @settings(max_examples=40, deadline=None)
    def test_perfect_never_slower_than_opportunistic(self, trace):
        perfect = Machine(scheme=make_scheme("perfect")).run(trace)
        opportunistic = Machine(
            scheme=make_scheme("opportunistic")).run(trace)
        assert perfect.cycles <= opportunistic.cycles

    @given(micro_traces())
    @settings(max_examples=40, deadline=None)
    def test_perfect_has_no_penalties(self, trace):
        result = Machine(scheme=make_scheme("perfect")).run(trace)
        assert result.collision_penalties == 0

    @given(micro_traces())
    @settings(max_examples=40, deadline=None)
    def test_classification_is_total(self, trace):
        result = Machine(scheme=make_scheme("traditional")).run(trace)
        assert result.classified_loads == result.retired_loads

    @given(micro_traces(), st.sampled_from([8, 16, 64]))
    @settings(max_examples=40, deadline=None)
    def test_any_window_size_works(self, trace, window):
        config = BASELINE_MACHINE.with_window(window)
        result = Machine(config=config,
                         scheme=make_scheme("traditional")).run(trace)
        assert result.retired_uops == len(trace)
