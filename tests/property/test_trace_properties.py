"""Property-based tests over trace generation and serialisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import trace_io
from repro.trace.builder import build_trace
from repro.trace.trace import summarize, validate
from repro.trace.workloads import TRACE_GROUPS, profile_for

ALL_TRACES = [n for names in TRACE_GROUPS.values() for n in names]


class TestGeneratedTraces:
    @given(st.sampled_from(ALL_TRACES),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_any_profile_any_seed_is_valid(self, name, seed):
        trace = build_trace(profile_for(name), n_uops=1500, seed=seed)
        validate(trace)

    @given(st.sampled_from(ALL_TRACES),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_mix_bands_hold_for_any_seed(self, name, seed):
        trace = build_trace(profile_for(name), n_uops=3000, seed=seed)
        s = summarize(trace)
        assert 0.05 < s.load_fraction < 0.35
        assert 0.03 < s.store_fraction < 0.25

    @given(st.sampled_from(ALL_TRACES), st.integers(1, 1000))
    @settings(max_examples=10, deadline=None)
    def test_serialisation_roundtrip(self, name, seed):
        trace = build_trace(profile_for(name), n_uops=800, seed=seed)
        restored = trace_io.loads(trace_io.dumps(trace))
        validate(restored)
        assert len(restored) == len(trace)
        assert all(a.pc == b.pc and a.uclass == b.uclass
                   for a, b in zip(trace.uops, restored.uops))

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_code_scale_grows_static_footprint(self, scale):
        base = build_trace(profile_for("cd"), n_uops=3000, seed=1)
        scaled = build_trace(profile_for("cd", code_scale=scale),
                             n_uops=3000, seed=1)
        if scale > 1:
            assert summarize(scaled).n_static_load_pcs >= \
                   summarize(base).n_static_load_pcs
