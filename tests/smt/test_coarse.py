"""Tests for the switch-on-miss multithreading model."""

import pytest

from repro.smt import CoarseGrainedMT, SwitchPolicy, make_policy
from repro.trace.builder import build_trace
from repro.trace.workloads import profile_for, trace_seed


@pytest.fixture(scope="module")
def threads():
    return [build_trace(profile_for(name), n_uops=4000,
                        seed=trace_seed(name), name=name)
            for name in ("tpcc", "jack")]


@pytest.fixture(scope="module")
def results(threads):
    return {policy: CoarseGrainedMT(policy=policy).run(threads)
            for policy in SwitchPolicy}


class TestBasics:
    def test_policy_factory(self):
        assert make_policy("predicted") is SwitchPolicy.PREDICTED
        with pytest.raises(ValueError):
            make_policy("psychic")

    def test_needs_threads(self):
        with pytest.raises(ValueError):
            CoarseGrainedMT().run([])

    def test_all_uops_retire(self, results, threads):
        expected = sum(len(t.uops) for t in threads)
        for policy, result in results.items():
            assert result.retired_uops == expected, policy

    def test_single_thread_runs(self, threads):
        result = CoarseGrainedMT(policy=SwitchPolicy.PREDICTED).run(
            threads[:1])
        assert result.retired_uops == len(threads[0].uops)

    def test_deterministic(self, threads):
        a = CoarseGrainedMT(policy=SwitchPolicy.REACTIVE).run(threads)
        b = CoarseGrainedMT(policy=SwitchPolicy.REACTIVE).run(threads)
        assert a.cycles == b.cycles


class TestPolicyOrdering:
    def test_switching_beats_not_switching(self, results):
        """Any switch-on-miss policy must beat stalling through memory."""
        none = results[SwitchPolicy.NONE].cycles
        for policy in (SwitchPolicy.REACTIVE, SwitchPolicy.PREDICTED,
                       SwitchPolicy.ORACLE):
            assert results[policy].cycles < none, policy

    def test_prediction_beats_reactive(self, results):
        """The paper's claim: switching at schedule time (prediction)
        beats waiting for the L2 lookup to reveal the miss."""
        assert results[SwitchPolicy.PREDICTED].cycles <= \
               results[SwitchPolicy.REACTIVE].cycles

    def test_prediction_near_oracle(self, results):
        predicted = results[SwitchPolicy.PREDICTED].cycles
        oracle = results[SwitchPolicy.ORACLE].cycles
        assert predicted <= oracle * 1.05

    def test_oracle_never_wastes_switches(self, results):
        assert results[SwitchPolicy.ORACLE].wasted_switches == 0
        assert results[SwitchPolicy.REACTIVE].wasted_switches == 0

    def test_none_policy_stalls(self, results):
        assert results[SwitchPolicy.NONE].stall_cycles > 0
        assert results[SwitchPolicy.NONE].switches <= 1


class TestAccounting:
    def test_throughput(self, results):
        for policy, result in results.items():
            assert result.throughput == pytest.approx(
                result.retired_uops / result.cycles)

    def test_speedup_helper(self, results):
        none = results[SwitchPolicy.NONE]
        predicted = results[SwitchPolicy.PREDICTED]
        assert predicted.speedup_over(none) > 1.0

    def test_four_threads(self):
        traces = [build_trace(profile_for(n), n_uops=2000,
                              seed=trace_seed(n), name=n)
                  for n in ("tpcc", "tpcd", "jack", "db")]
        result = CoarseGrainedMT(policy=SwitchPolicy.PREDICTED).run(traces)
        assert result.retired_uops == sum(len(t.uops) for t in traces)


class TestFineGrained:
    def test_all_uops_retire(self, threads):
        from repro.smt import FineGrainedMT
        result = FineGrainedMT().run(threads)
        assert result.retired_uops == sum(len(t.uops) for t in threads)

    def test_beats_coarse_grained(self, threads, results):
        """Free per-cycle rotation (no switch penalty) upper-bounds the
        coarse-grained policies — the [Tull95] motivation."""
        from repro.smt import FineGrainedMT
        fine = FineGrainedMT().run(threads)
        assert fine.cycles <= results[SwitchPolicy.PREDICTED].cycles

    def test_beats_no_switching(self, threads, results):
        from repro.smt import FineGrainedMT
        fine = FineGrainedMT().run(threads)
        assert fine.cycles < results[SwitchPolicy.NONE].cycles

    def test_needs_threads(self):
        from repro.smt import FineGrainedMT
        with pytest.raises(ValueError):
            FineGrainedMT().run([])

    def test_deterministic(self, threads):
        from repro.smt import FineGrainedMT
        a = FineGrainedMT().run(threads)
        b = FineGrainedMT().run(threads)
        assert a.cycles == b.cycles
